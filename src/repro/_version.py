"""Package version (kept separate so pyproject and code stay in sync)."""

__version__ = "1.0.0"
