"""The fault injector: binds a :class:`FaultPlan` to the running stack.

One injector is shared by every layer of a scenario run. The transport asks
it whether a network attempt fails (a deterministic, seed-driven decision
stream), the sim engine arms its timed events (node crashes, DHT-core
failures), and interested components subscribe listeners that the injector
fires *at simulated event time* — so recovery (client re-dispatch, DHT
failover, store cleanup) happens in causal order on the event clock.

Every injected fault and every recovery action appends a :class:`FaultEvent`
to the injector's trace; two runs of the same seeded plan over the same
scenario produce identical traces, which is what the replayability tests
pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import FaultError
from repro.faults.plan import (
    DHTCoreFailure,
    FaultPlan,
    MemoryPressure,
    NetworkPartition,
    NodeCrash,
)
from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import NULL_TRACER

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injector's fault/recovery trace."""

    time: float
    kind: str      # "node_crash" | "dht_failure" | "transfer_retry" | ...
    detail: str = ""
    #: per-injector emission sequence number; ``(time, seq)`` totally orders
    #: the trace even when several faults share one simulated instant.
    seq: int = 0

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"[t={self.time:10.6f}] {self.kind}{extra}"


class FaultInjector:
    """Deterministic runtime realization of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: the plan's retry knobs as one policy surface (satellite of the
        #: partition work: transport retries, heartbeat deadlines, and
        #: partition wait-outs all read the same dataclass shape)
        self.retry_policy = plan.retry_policy
        self._rng = random.Random(plan.seed)
        # Gray-failure decisions draw from their own seeded streams so that
        # adding slow/corrupt/duplicate faults to a plan never perturbs the
        # retry decision stream of an existing scenario (replay stability).
        self._corrupt_rng = random.Random(f"{plan.seed}/corrupt")
        self._dup_rng = random.Random(f"{plan.seed}/duplicate")
        self._events: list[FaultEvent] = []
        self._seq = 0
        self._crashed_nodes: set[int] = set()
        self._failed_dht_cores: set[int] = set()
        self._clock: Callable[[], float] = lambda: 0.0
        self._armed = False
        self._node_crash_listeners: list[Callable[[int], None]] = []
        self._dht_failure_listeners: list[Callable[[int], None]] = []
        self._partition_start_listeners: list[
            Callable[[NetworkPartition], None]
        ] = []
        self._partition_heal_listeners: list[
            Callable[[NetworkPartition], None]
        ] = []
        self._memory_pressure_start_listeners: list[
            Callable[[MemoryPressure], None]
        ] = []
        self._memory_pressure_end_listeners: list[
            Callable[[MemoryPressure], None]
        ] = []
        #: torus topology for resolving link-group cuts (set lazily by the
        #: experiment driver; group cuts never need it)
        self._topology = None
        self._route_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}
        #: total retries issued by the transport (diagnostics)
        self.retries_issued = 0
        #: span tracer mirrored by :meth:`record` (set by the transport or
        #: the experiment driver); faults become ``fault.*`` instant events,
        #: so transfer retries appear as sub-spans of their transfer.
        self.tracer = NULL_TRACER
        #: provenance ledger mirrored by :meth:`record` (set by the
        #: experiment driver); every injected fault and recovery action
        #: becomes a ``fault.*`` decision record.
        self.provenance = NULL_LEDGER

    # -- event trace ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock()

    def record(self, kind: str, detail: str = "") -> FaultEvent:
        ev = FaultEvent(time=self.now, kind=kind, detail=detail, seq=self._seq)
        self._seq += 1
        self._events.append(ev)
        if self.tracer.enabled:
            self.tracer.instant("fault." + kind, detail=detail)
        if self.provenance.enabled:
            self.provenance.record("fault." + kind, detail=detail)
        return ev

    def trace(self) -> tuple[FaultEvent, ...]:
        """The full fault/recovery trace, ordered by ``(time, seq)``.

        Emission already happens in event-clock order, but sorting pins the
        contract: equal-time faults appear in their canonical arming order,
        never in dict/listener iteration order.
        """
        return tuple(sorted(self._events, key=lambda e: (e.time, e.seq)))

    def format_trace(self) -> str:
        return "\n".join(str(ev) for ev in self._events)

    # -- subscription -----------------------------------------------------------

    def add_node_crash_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(node)`` runs at each crash's simulated time, in add order."""
        self._node_crash_listeners.append(fn)

    def add_dht_failure_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(core)`` runs at each DHT failure's simulated time."""
        self._dht_failure_listeners.append(fn)

    def add_partition_start_listener(
        self, fn: Callable[[NetworkPartition], None]
    ) -> None:
        """``fn(partition)`` runs when a cut window opens (each flap)."""
        self._partition_start_listeners.append(fn)

    def add_partition_heal_listener(
        self, fn: Callable[[NetworkPartition], None]
    ) -> None:
        """``fn(partition)`` runs when a cut window heals (each flap)."""
        self._partition_heal_listeners.append(fn)

    def add_memory_pressure_start_listener(
        self, fn: Callable[[MemoryPressure], None]
    ) -> None:
        """``fn(window)`` runs when a capacity-shrink window opens."""
        self._memory_pressure_start_listeners.append(fn)

    def add_memory_pressure_end_listener(
        self, fn: Callable[[MemoryPressure], None]
    ) -> None:
        """``fn(window)`` runs when a capacity-shrink window releases."""
        self._memory_pressure_end_listeners.append(fn)

    # -- arming on the event clock ---------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def timed_faults(self) -> list[tuple[float, int, int, object]]:
        """The plan's timed faults in canonical ``(time, kind, id)`` order.

        Node crashes order before DHT failures at the same instant (a dead
        node takes its DHT core with it, so the containing fault comes
        first); ties inside a kind break on the node/core id. Arming in this
        order makes equal-time traces deterministic regardless of how the
        plan listed its faults.
        """
        faults: list[tuple[float, int, int, object]] = []
        for crash in self.plan.node_crashes:
            faults.append((crash.time, 0, crash.node, crash))
        for failure in self.plan.dht_failures:
            faults.append((failure.time, 1, failure.core, failure))
        faults.sort(key=lambda f: f[:3])
        return faults

    def arm(self, sim) -> None:
        """Schedule the plan's timed faults on a :class:`SimEngine`.

        Safe to call once per injector; the injector's clock follows the
        engine it was armed on. Faults whose time already passed (a sim
        restored from a checkpoint starts mid-run) are applied silently as
        pre-existing state instead of being re-fired.
        """
        if self._armed:
            raise FaultError("injector is already armed on a sim engine")
        self._armed = True
        self._clock = lambda: sim.now
        for time, fkind, _ident, fault in self.timed_faults():
            if time < sim.now:
                # Pre-checkpoint fault: the restored state already reflects
                # it — record the truth, fire no listeners.
                if fkind == 0:
                    self._crashed_nodes.add(fault.node)
                else:
                    self._failed_dht_cores.add(fault.core)
                continue
            if fkind == 0:
                sim.schedule_at(time, self._fire_node_crash, fault)
            else:
                sim.schedule_at(time, self._fire_dht_failure, fault)
        # Partition edges ride the same event clock: one start/heal pair per
        # cut window (flapping partitions fire once per flap). Reachability
        # itself is computed from the plan's time windows, so edges that
        # already passed (checkpoint restore) need no silent state.
        for part in self.plan.partitions:
            for down, up in part.cut_windows():
                if down >= sim.now:
                    sim.schedule_at(
                        down, self._fire_partition_start, part, down, up
                    )
                if up >= sim.now:
                    sim.schedule_at(
                        up, self._fire_partition_heal, part, down, up
                    )
        # Memory-pressure windows follow the same edge discipline: one
        # start/end pair per window, fired as real sim events so the space's
        # capacity shrink (and proactive reclaim) lands in causal order.
        for window in self.plan.memory_pressure:
            if window.start >= sim.now:
                sim.schedule_at(
                    window.start, self._fire_memory_pressure_start, window
                )
            if window.end >= sim.now:
                sim.schedule_at(
                    window.end, self._fire_memory_pressure_end, window
                )

    def _fire_memory_pressure_start(self, window: MemoryPressure) -> None:
        self.record(
            "memory_pressure_start",
            f"node={window.node} factor={window.factor:g} "
            f"window=[{window.start:g},{window.end:g})",
        )
        for fn in self._memory_pressure_start_listeners:
            fn(window)

    def _fire_memory_pressure_end(self, window: MemoryPressure) -> None:
        self.record(
            "memory_pressure_end",
            f"node={window.node} factor={window.factor:g} "
            f"window=[{window.start:g},{window.end:g})",
        )
        for fn in self._memory_pressure_end_listeners:
            fn(window)

    def _fire_partition_start(self, part: NetworkPartition,
                              down: float, up: float) -> None:
        self.record("partition_start", self._partition_detail(part, down, up))
        for fn in self._partition_start_listeners:
            fn(part)

    def _fire_partition_heal(self, part: NetworkPartition,
                             down: float, up: float) -> None:
        self.record("partition_heal", self._partition_detail(part, down, up))
        for fn in self._partition_heal_listeners:
            fn(part)

    @staticmethod
    def _partition_detail(part: NetworkPartition,
                          down: float, up: float) -> str:
        shape = (
            f"groups={'|'.join(','.join(map(str, g)) for g in part.groups)}"
            if part.groups else f"links={len(part.links)}"
        )
        sym = "" if part.symmetric else " asymmetric"
        return f"{shape} window=[{down:g},{up:g}){sym}"

    def _fire_node_crash(self, crash: NodeCrash) -> None:
        if crash.node in self._crashed_nodes:
            return
        self._crashed_nodes.add(crash.node)
        self.record("node_crash", f"node={crash.node}")
        for fn in self._node_crash_listeners:
            fn(crash.node)

    def _fire_dht_failure(self, failure: DHTCoreFailure) -> None:
        if failure.core in self._failed_dht_cores:
            return
        self._failed_dht_cores.add(failure.core)
        self.record("dht_failure", f"core={failure.core}")
        for fn in self._dht_failure_listeners:
            fn(failure.core)

    # -- queries the layers make --------------------------------------------------

    def node_alive(self, node: int) -> bool:
        return node not in self._crashed_nodes

    def crashed_nodes(self) -> frozenset[int]:
        return frozenset(self._crashed_nodes)

    def dht_core_failed(self, core: int) -> bool:
        return core in self._failed_dht_cores

    def failed_dht_cores(self) -> frozenset[int]:
        return frozenset(self._failed_dht_cores)

    # -- network partitions -----------------------------------------------------

    def set_topology(self, topology) -> None:
        """Bind the torus used to resolve link-group cuts (route-based)."""
        self._topology = topology
        self._route_cache.clear()

    def reachable(self, src_node: int, dst_node: int,
                  time: "float | None" = None) -> bool:
        """Can ``src_node`` send to ``dst_node`` at ``time`` (default now)?

        Always true with no declared partitions, so partition-free runs
        never pay for (or observe) this check. Group cuts resolve from the
        plan alone; link-group cuts test every link of the deterministic
        dimension-ordered route.
        """
        plan = self.plan
        if not plan.partitions or src_node == dst_node:
            return True
        t = self.now if time is None else time
        if plan.node_pair_severed(src_node, dst_node, t):
            return False
        if plan.has_link_partitions:
            if self._topology is None:
                raise FaultError(
                    "link-group partitions need a torus topology: "
                    "call set_topology() before querying reachability"
                )
            route = self._route_cache.get((src_node, dst_node))
            if route is None:
                route = self._topology.route(src_node, dst_node)
                self._route_cache[(src_node, dst_node)] = route
            for a, b in route:
                if plan.link_cut(a, b, t):
                    return False
        return True

    def partition_active(self, time: "float | None" = None) -> bool:
        """True while any declared cut window is down at ``time``."""
        if not self.plan.partitions:
            return False
        t = self.now if time is None else time
        return any(p.active_at(t) for p in self.plan.partitions)

    def attempt_fails(self, src_node: int, dst_node: int) -> bool:
        """Decide (deterministically) whether one network attempt fails.

        Consumes one value of the seeded decision stream *only* when the
        plan gives the pair a non-zero failure probability, so clean pairs
        do not perturb the stream of degraded ones.
        """
        p = self.plan.attempt_failure_probability(src_node, dst_node)
        if p <= 0.0:
            return False
        return self._rng.random() < p

    def backoff_delay(self, attempt: int) -> float:
        """Exponential-backoff wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise FaultError(f"retry attempt must be >= 1, got {attempt}")
        return self.retry_policy.delay(attempt)

    def bandwidth_factor(self, src_node: int, dst_node: int) -> float:
        return self.plan.bandwidth_factor(src_node, dst_node)

    def expected_attempts(self, src_node: int, dst_node: int) -> float:
        """Expected sends per delivered transfer (geometric retransmission)."""
        p = self.plan.attempt_failure_probability(src_node, dst_node)
        return 1.0 / (1.0 - p)

    # -- gray failures ----------------------------------------------------------

    def slowdown_factor(self, node: int, time: "float | None" = None) -> float:
        """Multiplicative slowdown of ``node`` at ``time`` (defaults to now)."""
        if not self.plan.slow_nodes:
            return 1.0
        return self.plan.slowdown(node, self.now if time is None else time)

    def memory_capacity_factor(
        self, node: int, time: "float | None" = None
    ) -> float:
        """Usable store-capacity fraction of ``node`` at ``time`` (1.0 clean)."""
        if not self.plan.memory_pressure:
            return 1.0
        return self.plan.capacity_factor(
            node, self.now if time is None else time
        )

    def slowed_finish(self, nodes, start: float, work: float) -> float:
        """Finish time of ``work`` nominal seconds started at ``start``.

        The work runs on every node in ``nodes`` (a bundle spans cores of
        possibly several nodes); progress advances at the inverse of the
        *worst* active slowdown, walking the piecewise-constant factor
        profile window edge by window edge. With no matching windows the
        result is exactly ``start + work``.
        """
        node_list = list(nodes)
        windows = [w for n in set(node_list) for w in self.plan.slow_windows(n)]
        if work <= 0.0 or not windows:
            return start + work
        edges = sorted(
            {e for w in windows for e in (w.start, w.end) if e > start}
        )
        t = start
        remaining = work
        for edge in edges:
            factor = max(
                self.plan.slowdown(n, t) for n in set(node_list)
            )
            span = edge - t
            if remaining <= span / factor:
                return t + remaining * factor
            remaining -= span / factor
            t = edge
        # Past the last window edge every factor is 1.0 again.
        factor = max(self.plan.slowdown(n, t) for n in set(node_list))
        return t + remaining * factor

    def delivery_corrupted(self, src_node: int, dst_node: int) -> bool:
        """Decide whether one delivered payload arrives bit-flipped.

        Draws from the dedicated corruption stream only when the pair has a
        declared probability, so clean links never consume decisions.
        """
        p = self.plan.corruption_probability(src_node, dst_node)
        if p <= 0.0:
            return False
        hit = self._corrupt_rng.random() < p
        if hit:
            self.record("data_corruption", f"link={src_node}->{dst_node}")
        return hit

    def delivery_duplicated(self, src_node: int, dst_node: int) -> bool:
        """Decide whether one delivered payload is replayed (arrives twice)."""
        p = self.plan.duplication_probability(src_node, dst_node)
        if p <= 0.0:
            return False
        hit = self._dup_rng.random() < p
        if hit:
            self.record("duplicate_delivery", f"link={src_node}->{dst_node}")
        return hit
