"""The fault injector: binds a :class:`FaultPlan` to the running stack.

One injector is shared by every layer of a scenario run. The transport asks
it whether a network attempt fails (a deterministic, seed-driven decision
stream), the sim engine arms its timed events (node crashes, DHT-core
failures), and interested components subscribe listeners that the injector
fires *at simulated event time* — so recovery (client re-dispatch, DHT
failover, store cleanup) happens in causal order on the event clock.

Every injected fault and every recovery action appends a :class:`FaultEvent`
to the injector's trace; two runs of the same seeded plan over the same
scenario produce identical traces, which is what the replayability tests
pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import FaultError
from repro.faults.plan import DHTCoreFailure, FaultPlan, NodeCrash
from repro.obs.tracer import NULL_TRACER

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injector's fault/recovery trace."""

    time: float
    kind: str      # "node_crash" | "dht_failure" | "transfer_retry" | ...
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"[t={self.time:10.6f}] {self.kind}{extra}"


class FaultInjector:
    """Deterministic runtime realization of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._events: list[FaultEvent] = []
        self._crashed_nodes: set[int] = set()
        self._clock: Callable[[], float] = lambda: 0.0
        self._armed = False
        self._node_crash_listeners: list[Callable[[int], None]] = []
        self._dht_failure_listeners: list[Callable[[int], None]] = []
        #: total retries issued by the transport (diagnostics)
        self.retries_issued = 0
        #: span tracer mirrored by :meth:`record` (set by the transport or
        #: the experiment driver); faults become ``fault.*`` instant events,
        #: so transfer retries appear as sub-spans of their transfer.
        self.tracer = NULL_TRACER

    # -- event trace ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock()

    def record(self, kind: str, detail: str = "") -> FaultEvent:
        ev = FaultEvent(time=self.now, kind=kind, detail=detail)
        self._events.append(ev)
        if self.tracer.enabled:
            self.tracer.instant("fault." + kind, detail=detail)
        return ev

    def trace(self) -> tuple[FaultEvent, ...]:
        """The full fault/recovery trace, in firing order."""
        return tuple(self._events)

    def format_trace(self) -> str:
        return "\n".join(str(ev) for ev in self._events)

    # -- subscription -----------------------------------------------------------

    def add_node_crash_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(node)`` runs at each crash's simulated time, in add order."""
        self._node_crash_listeners.append(fn)

    def add_dht_failure_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(core)`` runs at each DHT failure's simulated time."""
        self._dht_failure_listeners.append(fn)

    # -- arming on the event clock ---------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self, sim) -> None:
        """Schedule the plan's timed faults on a :class:`SimEngine`.

        Safe to call once per injector; the injector's clock follows the
        engine it was armed on.
        """
        if self._armed:
            raise FaultError("injector is already armed on a sim engine")
        self._armed = True
        self._clock = lambda: sim.now
        for crash in self.plan.node_crashes:
            sim.schedule_at(crash.time, self._fire_node_crash, crash)
        for failure in self.plan.dht_failures:
            sim.schedule_at(failure.time, self._fire_dht_failure, failure)

    def _fire_node_crash(self, crash: NodeCrash) -> None:
        if crash.node in self._crashed_nodes:
            return
        self._crashed_nodes.add(crash.node)
        self.record("node_crash", f"node={crash.node}")
        for fn in self._node_crash_listeners:
            fn(crash.node)

    def _fire_dht_failure(self, failure: DHTCoreFailure) -> None:
        self.record("dht_failure", f"core={failure.core}")
        for fn in self._dht_failure_listeners:
            fn(failure.core)

    # -- queries the layers make --------------------------------------------------

    def node_alive(self, node: int) -> bool:
        return node not in self._crashed_nodes

    def crashed_nodes(self) -> frozenset[int]:
        return frozenset(self._crashed_nodes)

    def attempt_fails(self, src_node: int, dst_node: int) -> bool:
        """Decide (deterministically) whether one network attempt fails.

        Consumes one value of the seeded decision stream *only* when the
        plan gives the pair a non-zero failure probability, so clean pairs
        do not perturb the stream of degraded ones.
        """
        p = self.plan.attempt_failure_probability(src_node, dst_node)
        if p <= 0.0:
            return False
        return self._rng.random() < p

    def backoff_delay(self, attempt: int) -> float:
        """Exponential-backoff wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise FaultError(f"retry attempt must be >= 1, got {attempt}")
        return self.plan.retry_timeout * self.plan.retry_backoff ** (attempt - 1)

    def bandwidth_factor(self, src_node: int, dst_node: int) -> float:
        return self.plan.bandwidth_factor(src_node, dst_node)

    def expected_attempts(self, src_node: int, dst_node: int) -> float:
        """Expected sends per delivered transfer (geometric retransmission)."""
        p = self.plan.attempt_failure_probability(src_node, dst_node)
        return 1.0 / (1.0 - p)
