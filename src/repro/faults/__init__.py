"""Deterministic fault injection for the in-situ framework.

See :mod:`repro.faults.plan` for the fault-schedule model and
:mod:`repro.faults.injector` for the runtime that realizes it.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import (
    DataCorruption,
    DHTCoreFailure,
    DuplicateDelivery,
    FaultPlan,
    LinkDegradation,
    NodeCrash,
    SlowNode,
)

__all__ = [
    "DataCorruption",
    "DHTCoreFailure",
    "DuplicateDelivery",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "NodeCrash",
    "SlowNode",
]
