"""Deterministic fault schedules (the production-resilience layer).

The paper's evaluation assumes a failure-free Jaguar XT5 run; a production
deployment must keep answering ``get_seq``/``get_cont`` queries and
re-enacting bundles when nodes, links, or DHT cores misbehave. A
:class:`FaultPlan` describes *what goes wrong and when* as plain data:

* :class:`NodeCrash` — a compute node dies at simulated time ``t``; its
  execution clients and object stores are lost.
* :class:`DHTCoreFailure` — the DHT service on one core fails at time ``t``
  (the core's Hilbert interval is reassigned to its successor and the
  location tables are rebuilt from surviving stores).
* :class:`LinkDegradation` — a node pair's network path drops a fraction of
  transfer attempts (``loss_factor``) and/or delivers a fraction of its
  nominal bandwidth (``bandwidth_factor``).
* ``drop_probability`` / ``corrupt_probability`` — global per-attempt
  failure probabilities for network transfers (dropped and corrupted
  attempts are both retransmitted).

Gray failures — degradation instead of clean failure (SIM-SITU argues a
faithful in-situ model must include degraded resources):

* :class:`SlowNode` — a node computes and serves at a fraction of nominal
  speed over a time window (work inside the window takes ``factor`` times
  longer).
* :class:`DataCorruption` — deliveries over a link (or any link, when the
  endpoints are left as wildcards) arrive with flipped payload bits at some
  probability; the transport's checksum verification catches them.
* :class:`DuplicateDelivery` — a link replays messages: the same payload
  arrives twice and the receiver must deduplicate idempotently.
* :class:`NetworkPartition` — the interconnect splits into mutually
  unreachable islands (node groups or torus link groups) over a start/heal
  window, optionally flapping; every node stays alive, only reachability
  is cut.
* :class:`MemoryPressure` — a node's usable object-store memory shrinks to
  ``factor`` of nominal over a time window (a co-located tenant or OS
  balloon grabbing pages), forcing the space's reclaim ladder (GC, replica
  eviction, spill to the deep-memory tier) and ``mem.wait`` backpressure.

Everything is deterministic from ``seed``: replaying the same plan against
the same scenario yields byte-identical metrics and identical event traces.
Plans round-trip through JSON for the CLI's ``--fault-plan`` flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import FaultPlanError, RetryPolicy

__all__ = [
    "NodeCrash",
    "DHTCoreFailure",
    "LinkDegradation",
    "SlowNode",
    "DataCorruption",
    "DuplicateDelivery",
    "NetworkPartition",
    "MemoryPressure",
    "FaultPlan",
]


@dataclass(frozen=True)
class NodeCrash:
    """Compute node ``node`` crashes at simulated time ``time``."""

    node: int
    time: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"node must be non-negative, got {self.node}")
        if self.time < 0:
            raise FaultPlanError(f"crash time must be non-negative, got {self.time}")


@dataclass(frozen=True)
class DHTCoreFailure:
    """The DHT service on ``core`` fails at simulated time ``time``."""

    core: int
    time: float

    def __post_init__(self) -> None:
        if self.core < 0:
            raise FaultPlanError(f"core must be non-negative, got {self.core}")
        if self.time < 0:
            raise FaultPlanError(f"failure time must be non-negative, got {self.time}")


@dataclass(frozen=True)
class LinkDegradation:
    """Degraded connectivity between two nodes (symmetric).

    ``loss_factor`` is the probability one transfer attempt between the pair
    is lost and must be retransmitted; ``bandwidth_factor`` scales the
    effective bandwidth of the pair's path (1.0 = nominal).
    """

    src_node: int
    dst_node: int
    loss_factor: float = 0.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_factor < 1.0:
            raise FaultPlanError(
                f"loss_factor must be in [0, 1), got {self.loss_factor}"
            )
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise FaultPlanError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )

    def matches(self, node_a: int, node_b: int) -> bool:
        return {node_a, node_b} == {self.src_node, self.dst_node}


@dataclass(frozen=True)
class SlowNode:
    """Node ``node`` runs ``factor`` times slower during a time window.

    The slowdown is multiplicative on compute *and* service: work executed
    inside ``[start, start + duration)`` consumes wall-clock time at
    ``factor`` times its nominal rate, and pulls served by the node take
    ``factor`` times their modelled transfer time (which is what arms the
    hedging and speculation machinery).
    """

    node: int
    start: float
    duration: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"node must be non-negative, got {self.node}")
        if self.start < 0:
            raise FaultPlanError(
                f"slowdown start must be non-negative, got {self.start}"
            )
        if self.duration <= 0:
            raise FaultPlanError(
                f"slowdown duration must be positive, got {self.duration}"
            )
        if self.factor <= 1.0:
            raise FaultPlanError(
                f"slowdown factor must be > 1, got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class _LinkFault:
    """Shared shape of per-link probabilistic gray faults.

    ``src_node``/``dst_node`` may be ``None`` as wildcards ("any link"),
    which is how the CLI's global ``--corruption``/``--duplication`` knobs
    are encoded. Matching is symmetric, like :class:`LinkDegradation`.
    """

    src_node: "int | None" = None
    dst_node: "int | None" = None
    probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("src_node", "dst_node"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise FaultPlanError(f"{name} must be non-negative, got {v}")
        if not 0.0 <= self.probability < 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1), got {self.probability}"
            )

    def matches(self, node_a: int, node_b: int) -> bool:
        if self.src_node is None and self.dst_node is None:
            return True
        declared = {self.src_node, self.dst_node} - {None}
        return declared <= {node_a, node_b}


@dataclass(frozen=True)
class DataCorruption(_LinkFault):
    """Deliveries over a matching link arrive bit-flipped with ``probability``."""


@dataclass(frozen=True)
class DuplicateDelivery(_LinkFault):
    """Deliveries over a matching link are replayed with ``probability``."""


@dataclass(frozen=True)
class NetworkPartition:
    """The interconnect is cut into islands over ``[start, start+duration)``.

    Exactly one of two cut shapes must be declared:

    * ``groups`` — node-set cut: each group is an island. While the cut is
      active, nodes in different declared groups cannot reach each other,
      and (symmetric cuts only) declared groups cannot reach undeclared
      nodes either. Nodes sharing a group — or both undeclared — stay
      connected.
    * ``links`` — torus link-group cut: the listed directed torus links
      ``(node_a, node_b)`` go down; a node pair is unreachable while its
      dimension-ordered route crosses a cut link (routes are deterministic,
      so this is a fixed set of severed pairs per topology).

    ``symmetric=False`` makes the cut one-way: with groups it requires
    exactly two groups and severs only ``groups[0] -> groups[1]``; with
    links only the listed directions go down (a symmetric link cut severs
    both directions of each listed link).

    ``flap_period`` makes the partition flap: within the window the cut
    alternates ``flap_period`` seconds down, ``flap_period`` seconds up,
    starting down at ``start``.
    """

    start: float
    duration: float
    groups: tuple[tuple[int, ...], ...] = ()
    links: tuple[tuple[int, int], ...] = ()
    symmetric: bool = True
    flap_period: "float | None" = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultPlanError(
                f"partition start must be non-negative, got {self.start}"
            )
        if self.duration <= 0:
            raise FaultPlanError(
                f"partition duration must be positive, got {self.duration}"
            )
        groups = tuple(tuple(int(n) for n in g) for g in self.groups)
        links = tuple((int(a), int(b)) for a, b in self.links)
        object.__setattr__(self, "groups", groups)
        object.__setattr__(self, "links", links)
        if bool(groups) == bool(links):
            raise FaultPlanError(
                "a partition must declare exactly one of groups or links"
            )
        seen: set[int] = set()
        for g in groups:
            if not g:
                raise FaultPlanError("partition groups must be non-empty")
            for n in g:
                if n < 0:
                    raise FaultPlanError(
                        f"group node must be non-negative, got {n}"
                    )
                if n in seen:
                    raise FaultPlanError(
                        f"node {n} appears in more than one partition group"
                    )
                seen.add(n)
        for a, b in links:
            if a < 0 or b < 0:
                raise FaultPlanError(
                    f"link endpoints must be non-negative, got ({a}, {b})"
                )
            if a == b:
                raise FaultPlanError(f"link ({a}, {b}) is a self-loop")
        if not self.symmetric and groups and len(groups) != 2:
            raise FaultPlanError(
                "an asymmetric group cut requires exactly two groups, "
                f"got {len(groups)}"
            )
        if self.flap_period is not None and self.flap_period <= 0:
            raise FaultPlanError(
                f"flap_period must be positive, got {self.flap_period}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, time: float) -> bool:
        """True while the cut is down at ``time`` (flap-aware)."""
        if not self.start <= time < self.end:
            return False
        if self.flap_period is None:
            return True
        # Flapping alternates down/up sub-windows, starting down.
        return int((time - self.start) // self.flap_period) % 2 == 0

    def cut_windows(self) -> tuple[tuple[float, float], ...]:
        """The ``[down, up)`` sub-windows in which the cut is active."""
        if self.flap_period is None:
            return ((self.start, self.end),)
        windows = []
        t = self.start
        while t < self.end:
            windows.append((t, min(t + self.flap_period, self.end)))
            t += 2 * self.flap_period
        return tuple(windows)

    def _group_of(self, node: int) -> "int | None":
        for i, g in enumerate(self.groups):
            if node in g:
                return i
        return None

    def severs(self, src_node: int, dst_node: int, time: float) -> bool:
        """True when this cut severs ``src -> dst`` at ``time``.

        Group cuts are fully resolved here; link cuts report only whether
        the *direct* link is down — callers holding a topology must test
        every link of the route (see ``FaultInjector.reachable``).
        """
        if src_node == dst_node or not self.active_at(time):
            return False
        if self.groups:
            gs, gd = self._group_of(src_node), self._group_of(dst_node)
            if gs == gd:
                return False
            if not self.symmetric:
                return gs == 0 and gd == 1
            # Symmetric: any crossing between distinct islands (one side
            # being the undeclared remainder counts as its own island).
            return True
        return self.link_down(src_node, dst_node, time)

    def link_down(self, node_a: int, node_b: int, time: float) -> bool:
        """True when the directed torus link ``a -> b`` is cut at ``time``."""
        if not self.links or not self.active_at(time):
            return False
        if (node_a, node_b) in self.links:
            return True
        return self.symmetric and (node_b, node_a) in self.links


@dataclass(frozen=True)
class MemoryPressure:
    """Node ``node``'s usable store memory shrinks during a time window.

    While ``[start, start + duration)`` is active, the per-core object
    stores of the node admit puts against ``factor`` times their nominal
    capacity (a co-located tenant, OS balloon, or burst of kernel pages
    eating into the in-situ budget). Shrinking below current residency
    triggers the space's reclaim ladder proactively; producers that still
    cannot fit block on the sim clock (``mem.wait`` backpressure) instead
    of crashing.
    """

    node: int
    start: float
    duration: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"node must be non-negative, got {self.node}")
        if self.start < 0:
            raise FaultPlanError(
                f"pressure start must be non-negative, got {self.start}"
            )
        if self.duration <= 0:
            raise FaultPlanError(
                f"pressure duration must be positive, got {self.duration}"
            )
        if not 0.0 < self.factor < 1.0:
            raise FaultPlanError(
                f"pressure factor must be in (0, 1), got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seed-deterministic failure scenario."""

    seed: int = 0
    node_crashes: tuple[NodeCrash, ...] = ()
    dht_failures: tuple[DHTCoreFailure, ...] = ()
    link_degradations: tuple[LinkDegradation, ...] = ()
    slow_nodes: tuple[SlowNode, ...] = ()
    corruptions: tuple[DataCorruption, ...] = ()
    duplications: tuple[DuplicateDelivery, ...] = ()
    partitions: tuple[NetworkPartition, ...] = ()
    memory_pressure: tuple[MemoryPressure, ...] = ()
    #: per-attempt probability any network transfer is dropped outright
    drop_probability: float = 0.0
    #: per-attempt probability a delivered transfer arrives corrupted
    corrupt_probability: float = 0.0
    #: failed transfers are re-issued up to this many times before giving up
    max_retries: int = 3
    #: first retry waits this long (seconds) ...
    retry_timeout: float = 1e-4
    #: ... and each further retry multiplies the wait by this factor
    retry_backoff: float = 2.0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "corrupt_probability"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1), got {p}")
        if self.max_retries < 0:
            raise FaultPlanError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.retry_timeout < 0:
            raise FaultPlanError(
                f"retry_timeout must be non-negative, got {self.retry_timeout}"
            )
        if self.retry_backoff < 1.0:
            raise FaultPlanError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )
        # Normalize list inputs to tuples so plans stay hashable/immutable.
        for name in ("node_crashes", "dht_failures", "link_degradations",
                     "slow_nodes", "corruptions", "duplications",
                     "partitions", "memory_pressure"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (framework runs untouched)."""
        return (
            not self.node_crashes
            and not self.dht_failures
            and not self.link_degradations
            and not self.slow_nodes
            and not self.corruptions
            and not self.duplications
            and not self.partitions
            and not self.memory_pressure
            and self.drop_probability == 0.0
            and self.corrupt_probability == 0.0
        )

    @property
    def has_gray_faults(self) -> bool:
        """True when any degraded-mode (non-crash-stop) fault is declared."""
        return bool(self.slow_nodes or self.corruptions or self.duplications)

    @property
    def retry_policy(self) -> RetryPolicy:
        """The plan's transfer-retry knobs as one :class:`RetryPolicy`."""
        return RetryPolicy(
            max_retries=self.max_retries,
            timeout=self.retry_timeout,
            backoff=self.retry_backoff,
        )

    @property
    def has_partitions(self) -> bool:
        """True when any network partition is declared (gates every
        partition code path, keeping partition-free runs byte-identical)."""
        return bool(self.partitions)

    @property
    def has_memory_pressure(self) -> bool:
        """True when any memory-pressure window is declared (gates every
        capacity-shrink code path, keeping pressure-free runs untouched)."""
        return bool(self.memory_pressure)

    def capacity_factor(self, node: int, time: float) -> float:
        """Usable-capacity fraction of ``node`` at ``time`` (1.0 clean)."""
        return min(
            (m.factor for m in self.memory_pressure
             if m.node == node and m.active_at(time)),
            default=1.0,
        )

    def memory_windows(self, node: int) -> "tuple[MemoryPressure, ...]":
        """The declared pressure windows of one node, in start order."""
        return tuple(sorted(
            (m for m in self.memory_pressure if m.node == node),
            key=lambda m: (m.start, m.end, m.factor),
        ))

    def node_pair_severed(self, src_node: int, dst_node: int,
                          time: float) -> bool:
        """True when any declared *group* cut severs ``src -> dst``.

        Link-group cuts need the torus routes and are resolved by
        ``FaultInjector.reachable``; this plan-level check covers the
        topology-free part.
        """
        return any(
            p.severs(src_node, dst_node, time)
            for p in self.partitions if p.groups
        )

    def link_cut(self, node_a: int, node_b: int, time: float) -> bool:
        """True when any declared link cut downs torus link ``a -> b``."""
        return any(
            p.link_down(node_a, node_b, time)
            for p in self.partitions if p.links
        )

    @property
    def has_link_partitions(self) -> bool:
        return any(p.links for p in self.partitions)

    def loss_factor(self, node_a: int, node_b: int) -> float:
        """Worst loss factor declared for a node pair (0.0 when clean)."""
        return max(
            (d.loss_factor for d in self.link_degradations if d.matches(node_a, node_b)),
            default=0.0,
        )

    def bandwidth_factor(self, node_a: int, node_b: int) -> float:
        """Worst bandwidth factor declared for a node pair (1.0 when clean)."""
        return min(
            (
                d.bandwidth_factor
                for d in self.link_degradations
                if d.matches(node_a, node_b)
            ),
            default=1.0,
        )

    def slowdown(self, node: int, time: float) -> float:
        """Multiplicative slowdown active on ``node`` at ``time`` (1.0 clean)."""
        return max(
            (s.factor for s in self.slow_nodes
             if s.node == node and s.active_at(time)),
            default=1.0,
        )

    def slow_windows(self, node: int) -> "tuple[SlowNode, ...]":
        """The declared slowdown windows of one node, in start order."""
        return tuple(sorted(
            (s for s in self.slow_nodes if s.node == node),
            key=lambda s: (s.start, s.end, s.factor),
        ))

    def corruption_probability(self, node_a: int, node_b: int) -> float:
        """Worst payload-corruption probability declared for a node pair."""
        return max(
            (c.probability for c in self.corruptions if c.matches(node_a, node_b)),
            default=0.0,
        )

    def duplication_probability(self, node_a: int, node_b: int) -> float:
        """Worst message-replay probability declared for a node pair."""
        return max(
            (d.probability for d in self.duplications if d.matches(node_a, node_b)),
            default=0.0,
        )

    def attempt_failure_probability(self, node_a: int, node_b: int) -> float:
        """Probability one network attempt between the pair must be re-sent.

        Drops, corruption, and link loss are independent failure modes:
        ``p = 1 - (1-drop)(1-corrupt)(1-loss)``.
        """
        return 1.0 - (
            (1.0 - self.drop_probability)
            * (1.0 - self.corrupt_probability)
            * (1.0 - self.loss_factor(node_a, node_b))
        )

    # -- (de)serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "seed": self.seed,
            "node_crashes": [
                {"node": c.node, "time": c.time} for c in self.node_crashes
            ],
            "dht_failures": [
                {"core": f.core, "time": f.time} for f in self.dht_failures
            ],
            "link_degradations": [
                {
                    "src_node": d.src_node,
                    "dst_node": d.dst_node,
                    "loss_factor": d.loss_factor,
                    "bandwidth_factor": d.bandwidth_factor,
                }
                for d in self.link_degradations
            ],
            "drop_probability": self.drop_probability,
            "corrupt_probability": self.corrupt_probability,
            "max_retries": self.max_retries,
            "retry_timeout": self.retry_timeout,
            "retry_backoff": self.retry_backoff,
        }
        # Gray-failure keys appear only when declared so pre-existing plan
        # files keep serializing byte-identically.
        if self.slow_nodes:
            data["slow_nodes"] = [
                {
                    "node": s.node,
                    "start": s.start,
                    "duration": s.duration,
                    "factor": s.factor,
                }
                for s in self.slow_nodes
            ]
        if self.corruptions:
            data["corruptions"] = [
                {
                    "src_node": c.src_node,
                    "dst_node": c.dst_node,
                    "probability": c.probability,
                }
                for c in self.corruptions
            ]
        if self.duplications:
            data["duplications"] = [
                {
                    "src_node": d.src_node,
                    "dst_node": d.dst_node,
                    "probability": d.probability,
                }
                for d in self.duplications
            ]
        if self.partitions:
            data["partitions"] = [
                {
                    "start": p.start,
                    "duration": p.duration,
                    "groups": [list(g) for g in p.groups],
                    "links": [list(link) for link in p.links],
                    "symmetric": p.symmetric,
                    "flap_period": p.flap_period,
                }
                for p in self.partitions
            ]
        if self.memory_pressure:
            data["memory_pressure"] = [
                {
                    "node": m.node,
                    "start": m.start,
                    "duration": m.duration,
                    "factor": m.factor,
                }
                for m in self.memory_pressure
            ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data)}")
        known = {
            "seed",
            "node_crashes",
            "dht_failures",
            "link_degradations",
            "slow_nodes",
            "corruptions",
            "duplications",
            "partitions",
            "memory_pressure",
            "drop_probability",
            "corrupt_probability",
            "max_retries",
            "retry_timeout",
            "retry_backoff",
        }
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys: {sorted(unknown)}")
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                node_crashes=tuple(
                    NodeCrash(node=int(c["node"]), time=float(c["time"]))
                    for c in data.get("node_crashes", ())
                ),
                dht_failures=tuple(
                    DHTCoreFailure(core=int(f["core"]), time=float(f["time"]))
                    for f in data.get("dht_failures", ())
                ),
                link_degradations=tuple(
                    LinkDegradation(
                        src_node=int(d["src_node"]),
                        dst_node=int(d["dst_node"]),
                        loss_factor=float(d.get("loss_factor", 0.0)),
                        bandwidth_factor=float(d.get("bandwidth_factor", 1.0)),
                    )
                    for d in data.get("link_degradations", ())
                ),
                slow_nodes=tuple(
                    SlowNode(
                        node=int(s["node"]),
                        start=float(s["start"]),
                        duration=float(s["duration"]),
                        factor=float(s.get("factor", 2.0)),
                    )
                    for s in data.get("slow_nodes", ())
                ),
                corruptions=tuple(
                    DataCorruption(
                        src_node=None if c.get("src_node") is None else int(c["src_node"]),
                        dst_node=None if c.get("dst_node") is None else int(c["dst_node"]),
                        probability=float(c.get("probability", 0.0)),
                    )
                    for c in data.get("corruptions", ())
                ),
                duplications=tuple(
                    DuplicateDelivery(
                        src_node=None if d.get("src_node") is None else int(d["src_node"]),
                        dst_node=None if d.get("dst_node") is None else int(d["dst_node"]),
                        probability=float(d.get("probability", 0.0)),
                    )
                    for d in data.get("duplications", ())
                ),
                partitions=tuple(
                    NetworkPartition(
                        start=float(p["start"]),
                        duration=float(p["duration"]),
                        groups=tuple(
                            tuple(int(n) for n in g)
                            for g in p.get("groups", ())
                        ),
                        links=tuple(
                            (int(a), int(b))
                            for a, b in p.get("links", ())
                        ),
                        symmetric=bool(p.get("symmetric", True)),
                        flap_period=(
                            None if p.get("flap_period") is None
                            else float(p["flap_period"])
                        ),
                    )
                    for p in data.get("partitions", ())
                ),
                memory_pressure=tuple(
                    MemoryPressure(
                        node=int(m["node"]),
                        start=float(m["start"]),
                        duration=float(m["duration"]),
                        factor=float(m.get("factor", 0.5)),
                    )
                    for m in data.get("memory_pressure", ())
                ),
                drop_probability=float(data.get("drop_probability", 0.0)),
                corrupt_probability=float(data.get("corrupt_probability", 0.0)),
                max_retries=int(data.get("max_retries", 3)),
                retry_timeout=float(data.get("retry_timeout", 1e-4)),
                retry_backoff=float(data.get("retry_backoff", 2.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from exc
