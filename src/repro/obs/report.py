"""Profiling reports: turn a trace into the paper's vocabulary.

The evaluation sections of the paper talk about per-phase timelines
(enactment waves), lookup cost (DHT hops), schedule reuse (cache hit
rate), and transfer breakdowns (network vs. shared memory). This module
derives all of those from a Chrome ``trace_event`` JSON file written by
:meth:`repro.obs.tracer.Tracer.write_chrome` (optionally joined with a
``--metrics-out`` snapshot), and renders them as the ``trace-report`` CLI
subcommand's output.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import AnalysisError


def _fmt():
    """Late import of the table helpers: ``repro.analysis`` pulls in the
    whole experiment stack, which itself imports ``repro.obs`` (a cycle at
    module-import time)."""
    from repro.analysis.report import format_table, mib, ms

    return format_table, mib, ms

__all__ = ["SpanStat", "TraceReport", "load_trace", "load_metrics"]


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a Chrome ``trace_event`` JSON file and return its event list."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, list):  # the bare-array flavour of the format
        return data
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise AnalysisError(f"{path}: not a Chrome trace_event file")
    return events


def load_metrics(path: str) -> dict[str, Any]:
    """Read a ``--metrics-out`` snapshot."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "counters" not in data:
        raise AnalysisError(f"{path}: not a metrics snapshot")
    return data


@dataclass
class SpanStat:
    """Aggregate of every completed span sharing one name."""

    name: str
    count: int = 0
    total_us: float = 0.0  # inclusive simulated time
    max_us: float = 0.0

    @property
    def total_s(self) -> float:
        return self.total_us / 1e6


@dataclass
class TraceReport:
    """Everything the profiler derives from one trace (+ metrics) pair."""

    #: completed sync-span aggregates by name
    span_stats: dict[str, SpanStat] = field(default_factory=dict)
    #: async (workflow) intervals: (name, attrs, start_us, end_us)
    phases: list[tuple[str, dict[str, Any], float, float]] = field(
        default_factory=list
    )
    #: instant events tally by name
    instants: TallyCounter = field(default_factory=TallyCounter)
    #: DHT-cores-touched distribution over queries: hops -> #queries
    dht_hops: dict[int, int] = field(default_factory=dict)
    #: schedule-cache outcomes observed on get_{seq,cont} spans
    cache_hits: int = 0
    cache_misses: int = 0
    #: (kind, transport) -> [bytes, transfers] from dart.transfer spans
    transfers: dict[tuple[str, str], list[int]] = field(default_factory=dict)
    #: metrics snapshot, when one was supplied
    metrics: dict[str, Any] | None = None

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        events: Sequence[dict[str, Any]],
        metrics: dict[str, Any] | None = None,
    ) -> "TraceReport":
        report = cls(metrics=metrics)
        # B/E events nest by emission order per (pid, tid).
        stacks: dict[tuple, list[dict[str, Any]]] = {}
        open_async: dict[Any, dict[str, Any]] = {}
        for ev in events:
            ph = ev.get("ph")
            if ph == "B":
                stacks.setdefault((ev.get("pid"), ev.get("tid")), []).append(ev)
            elif ph == "E":
                stack = stacks.get((ev.get("pid"), ev.get("tid")), [])
                if not stack:
                    raise AnalysisError(
                        f"unbalanced trace: E {ev.get('name')!r} with no open span"
                    )
                begin = stack.pop()
                report._complete(begin, ev)
            elif ph == "i":
                report.instants[ev.get("name", "?")] += 1
            elif ph == "b":
                open_async[ev.get("id")] = ev
            elif ph == "e":
                begin = open_async.pop(ev.get("id"), None)
                if begin is not None:
                    report.phases.append((
                        begin.get("name", "?"),
                        dict(ev.get("args", {})),
                        begin["ts"],
                        ev["ts"],
                    ))
        report.phases.sort(key=lambda p: (p[2], p[1].get("seq", 0)))
        return report

    @classmethod
    def from_files(
        cls, trace_path: str, metrics_path: str | None = None
    ) -> "TraceReport":
        metrics = load_metrics(metrics_path) if metrics_path else None
        return cls.from_events(load_trace(trace_path), metrics)

    def _complete(self, begin: dict[str, Any], end: dict[str, Any]) -> None:
        name = begin.get("name", "?")
        dur = end["ts"] - begin["ts"]
        stat = self.span_stats.setdefault(name, SpanStat(name))
        stat.count += 1
        stat.total_us += dur
        stat.max_us = max(stat.max_us, dur)
        args = end.get("args", {})
        if name == "dht.query":
            hops = int(args.get("hops", 0))
            self.dht_hops[hops] = self.dht_hops.get(hops, 0) + 1
        elif name in ("cods.get_seq", "cods.get_cont"):
            if "cache_hit" in args:
                if args["cache_hit"]:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
        elif name == "dart.transfer":
            key = (str(args.get("kind", "?")), str(args.get("transport", "?")))
            cell = self.transfers.setdefault(key, [0, 0])
            cell[0] += int(args.get("nbytes", 0))
            cell[1] += 1

    # -- derived quantities -------------------------------------------------------------

    def top_spans(self, n: int = 10) -> list[SpanStat]:
        """The ``n`` span names with the most inclusive simulated time,
        ties broken deterministically by name order."""
        return sorted(
            self.span_stats.values(),
            key=lambda s: (-s.total_us, s.name),
        )[:n]

    @property
    def cache_hit_rate(self) -> float:
        """Schedule-cache hit rate; prefers the metrics snapshot when given."""
        hits, misses = self.cache_hits, self.cache_misses
        if self.metrics is not None:
            counters = self.metrics.get("counters", {})
            if "schedule.cache.hit" in counters or "schedule.cache.miss" in counters:
                hits = counters.get("schedule.cache.hit", 0)
                misses = counters.get("schedule.cache.miss", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def total_events(self) -> int:
        return (
            sum(s.count for s in self.span_stats.values())
            + sum(self.instants.values())
            + len(self.phases)
        )

    # -- rendering ----------------------------------------------------------------------

    def format_timeline(self) -> str:
        format_table, _, ms = _fmt()
        rows = []
        for name, attrs, t0, t1 in self.phases:
            what = [name]
            for key in ("bundle", "app", "gen"):
                if key in attrs:
                    what.append(f"{key}={attrs[key]}")
            rows.append([
                " ".join(what), ms(t0 / 1e6), ms(t1 / 1e6), ms((t1 - t0) / 1e6),
            ])
        if not rows:
            return "per-phase timeline: no workflow phases in trace"
        return format_table(
            ["phase", "start ms", "end ms", "duration ms"], rows,
            title="per-phase timeline (simulated time)",
        )

    def format_top_spans(self, n: int = 10) -> str:
        format_table, _, ms = _fmt()
        rows = [
            [s.name, s.count, ms(s.total_s), ms(s.max_us / 1e6)]
            for s in self.top_spans(n)
        ]
        if not rows:
            return "top spans: trace contains no completed spans"
        return format_table(
            ["span", "count", "incl ms", "max ms"], rows,
            title=f"top {len(rows)} spans by inclusive simulated time",
        )

    def format_dht_hops(self) -> str:
        format_table, _, _ = _fmt()
        if not self.dht_hops:
            return "DHT hop distribution: no dht.query spans in trace"
        total = sum(self.dht_hops.values())
        rows = [
            [hops, count, f"{count / total:.0%}"]
            for hops, count in sorted(self.dht_hops.items())
        ]
        return format_table(
            ["DHT cores touched", "queries", "share"], rows,
            title=f"DHT hop distribution ({total} queries)",
        )

    def format_transfers(self) -> str:
        format_table, mib, _ = _fmt()
        if not self.transfers:
            return "transfer breakdown: no dart.transfer spans in trace"
        rows = [
            [kind, transport, mib(cell[0]), cell[1]]
            for (kind, transport), cell in sorted(self.transfers.items())
        ]
        return format_table(
            ["kind", "transport", "MiB", "transfers"], rows,
            title="transfer breakdown by transport",
        )

    def format(self, top: int = 10) -> str:
        """The full ``trace-report`` output."""
        cache_total = self.cache_hits + self.cache_misses
        if self.metrics is not None:
            counters = self.metrics.get("counters", {})
            cache_total = max(
                cache_total,
                counters.get("schedule.cache.hit", 0)
                + counters.get("schedule.cache.miss", 0),
            )
        sections = [
            self.format_timeline(),
            self.format_top_spans(top),
            self.format_dht_hops(),
            (
                f"schedule-cache hit rate: {self.cache_hit_rate:.1%} "
                f"over {cache_total} lookups"
                if cache_total
                else "schedule-cache hit rate: no schedule lookups in trace"
            ),
            self.format_transfers(),
        ]
        if self.instants:
            lines = [
                f"  {name}: {count}"
                for name, count in sorted(self.instants.items())
            ]
            sections.append("instant events:\n" + "\n".join(lines))
        return "\n\n".join(sections)
