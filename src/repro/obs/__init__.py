"""Observability: tracing, metrics, and profiling for the framework.

The paper's whole evaluation is a question of *where time and bytes go* —
network vs. shared-memory transfer, DHT lookup cost, schedule-cache reuse.
This package makes those questions answerable without ad-hoc
instrumentation:

* :mod:`repro.obs.tracer` — hierarchical spans stamped with simulated time,
  exported as a structured tree or Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  fixed-bucket histograms with label support, snapshot to JSON.
* :mod:`repro.obs.report` — turns a trace + metrics snapshot into the
  paper's vocabulary: per-phase timeline, top-N spans, DHT hop
  distribution, schedule-cache hit rate, transfer breakdown.

Tracing is off by default: every instrumented hot path holds a reference to
the shared :data:`~repro.obs.tracer.NULL_TRACER`, whose ``enabled`` flag is
``False``, so the disabled cost is one attribute check per site.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import TraceReport
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceReport",
    "Tracer",
]
