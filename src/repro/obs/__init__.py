"""Observability: tracing, metrics, profiling, and regression analysis.

The paper's whole evaluation is a question of *where time and bytes go* —
network vs. shared-memory transfer, DHT lookup cost, schedule-cache reuse.
This package makes those questions answerable without ad-hoc
instrumentation:

* :mod:`repro.obs.tracer` — hierarchical spans stamped with simulated time
  plus causal *flow links* between them, exported as a structured tree or
  Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  fixed-bucket histograms (with quantile estimates) with label support,
  snapshot to JSON.
* :mod:`repro.obs.report` — turns a trace + metrics snapshot into the
  paper's vocabulary: per-phase timeline, top-N spans, DHT hop
  distribution, schedule-cache hit rate, transfer breakdown.
* :mod:`repro.obs.critpath` — rebuilds the span DAG from spans + flow
  links, extracts the critical path, attributes it per category
  (compute/network/dht/wait/recovery), and ranks stragglers by slack.
* :mod:`repro.obs.baseline` / :mod:`repro.obs.anomaly` — schema-versioned
  performance baselines with tolerance bands, and the pass/fail
  regression verdict of comparing a fresh run against one.
* :mod:`repro.obs.timeline` — streaming utilization time series: a
  sim-clock-driven collector samples per-node core occupancy, link-class
  bandwidth occupancy, event-queue depth, and resident bytes into pluggable
  bounded-memory sinks (ring buffer, JSONL stream, Chrome counter events),
  with a live progress reporter and self-accounting of its own overhead.
* :mod:`repro.obs.provenance` — a causal decision ledger: every dispatch,
  placement, replica selection, quorum degrade, retry, speculation,
  detector verdict, and recovery rung as a schema-versioned, cause-linked
  record stamped with simulated time (JSONL + bounded ring).
* :mod:`repro.obs.explain` — the query engine over a ledger behind
  ``repro-insitu explain``: bundle why-chains with per-hop sim-time
  deltas, object placement history, slowest-bundle ranking.

Tracing is off by default: every instrumented hot path holds a reference to
the shared :data:`~repro.obs.tracer.NULL_TRACER`, whose ``enabled`` flag is
``False``, so the disabled cost is one attribute check per site. The
provenance ledger follows the same discipline via
:data:`~repro.obs.provenance.NULL_LEDGER`.
"""

from repro.obs.anomaly import Deviation, Verdict, compare
from repro.obs.baseline import Baseline, Tolerance
from repro.obs.critpath import CriticalPath, SpanGraph, critical_path, stragglers
from repro.obs.explain import (
    Ledger,
    explain_bundle,
    explain_object,
    explain_slowest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.provenance import (
    NULL_LEDGER,
    NullLedger,
    PROVENANCE_VERSION,
    ProvenanceLedger,
    read_ledger,
)
from repro.obs.report import TraceReport
from repro.obs.timeline import (
    ChromeCounterSink,
    CoreUsage,
    JsonlStreamSink,
    ProgressReporter,
    ProgressSnapshot,
    RingBufferSink,
    TimelineCollector,
    read_timeline,
)
from repro.obs.tracer import (
    NULL_TRACER,
    FlowLink,
    NullTracer,
    Span,
    StreamingTracer,
    Tracer,
)

__all__ = [
    "Baseline",
    "ChromeCounterSink",
    "CoreUsage",
    "Counter",
    "CriticalPath",
    "Deviation",
    "FlowLink",
    "Gauge",
    "Histogram",
    "JsonlStreamSink",
    "Ledger",
    "MetricsRegistry",
    "NULL_LEDGER",
    "NULL_TRACER",
    "NullLedger",
    "NullTracer",
    "PROVENANCE_VERSION",
    "ProgressReporter",
    "ProgressSnapshot",
    "ProvenanceLedger",
    "RingBufferSink",
    "Span",
    "SpanGraph",
    "StreamingTracer",
    "TimelineCollector",
    "Tolerance",
    "TraceReport",
    "Tracer",
    "Verdict",
    "compare",
    "critical_path",
    "explain_bundle",
    "explain_object",
    "explain_slowest",
    "read_ledger",
    "read_timeline",
    "stragglers",
]
