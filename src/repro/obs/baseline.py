"""Performance baselines: frozen snapshots of a run's headline numbers.

A :class:`Baseline` captures, per scenario, the metrics that the continuous
perf-history harness tracks run-over-run — makespan, critical-path
category attribution, bytes moved — together with per-metric *tolerance
bands*. :mod:`repro.obs.anomaly` compares a fresh run against a stored
baseline and produces a pass/fail regression verdict.

Snapshots serialise to schema-versioned JSON so old baselines stay
readable as the format grows; loading a snapshot with a newer major
schema than this module understands is an error rather than a silent
misread.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "Tolerance",
    "Baseline",
    "DEFAULT_TOLERANCES",
]

#: snapshot schema, bumped on incompatible layout changes
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Tolerance:
    """Acceptable drift for one metric: relative and/or absolute slack.

    A candidate value ``v`` is within tolerance of a baseline value ``b``
    when ``|v - b| <= max(rel * |b|, abs)``. Metrics where only *growth*
    is a regression (time, bytes) set ``one_sided=True``: a candidate
    *below* the band never fails. Metrics where only *shrinkage* is a
    regression (throughput such as ``events_per_sec``) set
    ``one_sided_low=True``: a candidate *above* the band never fails.
    """

    rel: float = 0.10
    abs: float = 0.0
    one_sided: bool = False
    one_sided_low: bool = False

    def __post_init__(self) -> None:
        if self.one_sided and self.one_sided_low:
            raise ReproError(
                "a tolerance cannot be one-sided in both directions"
            )

    def allows(self, baseline: float, candidate: float) -> bool:
        slack = max(self.rel * abs(baseline), self.abs)
        if self.one_sided:
            return candidate <= baseline + slack
        if self.one_sided_low:
            return candidate >= baseline - slack
        return abs(candidate - baseline) <= slack

    def band(self, baseline: float) -> tuple[float, float]:
        """The (lo, hi) interval a candidate must fall in."""
        slack = max(self.rel * abs(baseline), self.abs)
        lo = float("-inf") if self.one_sided else baseline - slack
        hi = float("inf") if self.one_sided_low else baseline + slack
        return (lo, hi)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rel": self.rel,
            "abs": self.abs,
            "one_sided": self.one_sided,
            "one_sided_low": self.one_sided_low,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Tolerance":
        return cls(
            rel=float(d.get("rel", 0.10)),
            abs=float(d.get("abs", 0.0)),
            one_sided=bool(d.get("one_sided", False)),
            one_sided_low=bool(d.get("one_sided_low", False)),
        )


#: default tolerance per metric name; ``*`` is the fallback. Times and
#: byte counts are one-sided (getting faster/leaner is never a
#: regression); attribution fractions are two-sided with absolute slack
#: because a shift in *either* direction means the profile changed.
DEFAULT_TOLERANCES: dict[str, Tolerance] = {
    "makespan": Tolerance(rel=0.10, abs=1e-9, one_sided=True),
    "critical_path_length": Tolerance(rel=0.10, abs=1e-9, one_sided=True),
    # Host-dependent throughput numbers: generous bands, shrink-is-bad for
    # events/sec, growth-is-bad for wall-clock. CI hardware varies a lot.
    "events_per_sec": Tolerance(rel=0.60, abs=0.0, one_sided_low=True),
    "wall_clock": Tolerance(rel=1.50, abs=2.0, one_sided=True),
    "bytes_total": Tolerance(rel=0.05, abs=0.0, one_sided=True),
    "bytes_network": Tolerance(rel=0.05, abs=0.0, one_sided=True),
    "attribution.compute": Tolerance(rel=0.0, abs=0.10),
    "attribution.network": Tolerance(rel=0.0, abs=0.10),
    "attribution.dht": Tolerance(rel=0.0, abs=0.10),
    "attribution.wait": Tolerance(rel=0.0, abs=0.10),
    "attribution.recovery": Tolerance(rel=0.0, abs=0.10),
    "*": Tolerance(rel=0.10, abs=1e-9),
}


@dataclass
class Baseline:
    """A named set of scenario profiles with tolerance bands.

    ``profiles`` maps scenario name -> flat ``{metric: value}`` dict
    (nested attribution dicts flatten to dotted keys). ``tolerances``
    overrides :data:`DEFAULT_TOLERANCES` per metric name.
    """

    label: str = ""
    profiles: dict[str, dict[str, float]] = field(default_factory=dict)
    tolerances: dict[str, Tolerance] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def record(self, scenario: str, metrics: dict[str, Any]) -> None:
        """Store (flattened) metrics for ``scenario``, replacing any prior."""
        self.profiles[scenario] = flatten_metrics(metrics)

    def tolerance_for(self, metric: str) -> Tolerance:
        """Most specific tolerance: exact name, then defaults, then ``*``."""
        for table in (self.tolerances, DEFAULT_TOLERANCES):
            if metric in table:
                return table[metric]
        if "*" in self.tolerances:
            return self.tolerances["*"]
        return DEFAULT_TOLERANCES["*"]

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "profiles": {
                name: dict(sorted(prof.items()))
                for name, prof in sorted(self.profiles.items())
            },
            "tolerances": {
                name: tol.to_dict()
                for name, tol in sorted(self.tolerances.items())
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Baseline":
        schema = int(d.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ReproError(
                f"baseline schema {schema} is newer than supported "
                f"{SCHEMA_VERSION}; upgrade the tooling"
            )
        return cls(
            label=str(d.get("label", "")),
            profiles={
                name: {k: float(v) for k, v in prof.items()}
                for name, prof in d.get("profiles", {}).items()
            },
            tolerances={
                name: Tolerance.from_dict(td)
                for name, td in d.get("tolerances", {}).items()
            },
            meta=dict(d.get("meta", {})),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=False)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def flatten_metrics(metrics: dict[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to dotted keys, keeping only numeric leaves."""
    out: dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, f"{name}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out
