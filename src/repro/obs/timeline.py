"""Streaming telemetry timeline: bounded-memory utilization time series.

The span :class:`~repro.obs.tracer.Tracer` answers *what happened*; this
module answers *how busy the machine was while it happened*. A
:class:`TimelineCollector` rides the simulated clock as a daemon event and,
every ``sample_period`` simulated seconds, snapshots

* per-node busy-core counts (aggregated into at most ``node_groups``
  contiguous node groups so a 10,000-node sample stays a short list),
* event-queue depth and events dispatched so far,
* data-space resident bytes and cumulative transfer counts,
* the in-flight transfer count (always 0 for the instantaneous HybridDART
  transport; the hook exists for future asynchronous transports).

During a fluid-simulated coupling phase the collector additionally receives
``links`` records from :class:`~repro.sim.fluid.FluidSimulation`: per-link
bandwidth occupancy derived from the solver's current max-min rates,
aggregated by link class (``net`` = NIC/torus links, ``mem`` = per-node
memory channels).

Records flow through pluggable *sinks* — a bounded ring buffer
(:class:`RingBufferSink`), a streaming JSONL file (:class:`JsonlStreamSink`),
and a streaming Chrome ``counter``-event file (:class:`ChromeCounterSink`) —
so collector memory is O(ring size), never O(events): the million-event
``jaguar_scale`` run can be observed end to end.

The collector accounts for itself: when bound to a
:class:`~repro.obs.metrics.MetricsRegistry` it registers
``obs.overhead.samples`` (per record kind) and ``obs.overhead.wall_seconds``
(host wall-clock spent sampling — the one deliberately nondeterministic
metric). Nothing is registered, scheduled, or touched when no collector is
attached; the disabled path stays byte-identical to the uninstrumented run.
"""

from __future__ import annotations

import json
import math
import sys
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.hardware.cluster import Cluster
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import SimEngine

__all__ = [
    "TIMELINE_VERSION",
    "CoreUsage",
    "TimelineCollector",
    "RingBufferSink",
    "JsonlStreamSink",
    "ChromeCounterSink",
    "ProgressSnapshot",
    "ProgressReporter",
    "read_timeline",
]

#: schema version stamped into every timeline header record
TIMELINE_VERSION = 1

#: record kinds a collector emits (headers first, then the two series)
RECORD_KINDS = ("header", "sample", "links")


class CoreUsage:
    """O(1)-per-update busy-core accounting, one counter per node.

    Instrumented call sites (the workflow management server, the jaguar
    hot loop) bump a node's counter when a core starts work and drop it on
    release; the sampler reads the whole array once per period. Keeping the
    counters per *node* (not per core) is what lets a 100,000-rank run pay
    one integer add per event.
    """

    __slots__ = ("num_nodes", "cores_per_node", "busy")

    def __init__(self, num_nodes: int, cores_per_node: int = 1) -> None:
        if num_nodes <= 0 or cores_per_node <= 0:
            raise ReproError("CoreUsage needs positive node and core counts")
        self.num_nodes = int(num_nodes)
        self.cores_per_node = int(cores_per_node)
        self.busy = [0] * self.num_nodes

    def acquire(self, node: int, n: int = 1) -> None:
        self.busy[node] += n

    def release(self, node: int, n: int = 1) -> None:
        new = self.busy[node] - n
        if new < 0:
            raise ReproError(
                f"node {node} released below zero busy cores"
            )
        self.busy[node] = new

    def busy_cores(self) -> int:
        return sum(self.busy)

    def busy_fraction(self) -> float:
        return self.busy_cores() / (self.num_nodes * self.cores_per_node)

    def reset(self) -> None:
        self.busy = [0] * self.num_nodes


# -- sinks ----------------------------------------------------------------------------


class RingBufferSink:
    """Keeps the last ``maxlen`` records in memory (oldest evicted first)."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen <= 0:
            raise ReproError("ring buffer needs a positive maxlen")
        self.maxlen = int(maxlen)
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.maxlen)
        #: total records ever written (so eviction volume is visible)
        self.written = 0

    def write(self, record: dict[str, Any]) -> None:
        self._ring.append(record)
        self.written += 1

    @property
    def records(self) -> list[dict[str, Any]]:
        return list(self._ring)

    @property
    def evicted(self) -> int:
        return self.written - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def close(self) -> None:
        return None


class JsonlStreamSink:
    """Streams each record as one compact JSON line (the ``--timeline-out``
    format). Memory stays O(1); the file is the store."""

    def __init__(self, path_or_file: Any) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self.written = 0

    def write(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()


class ChromeCounterSink:
    """Streams ``ph: "C"`` counter events in Chrome ``trace_event`` form.

    Loadable next to a span trace in Perfetto: busy cores, queue depth, and
    resident bytes become stacked counter tracks under the same simulated
    timebase (ts in µs). Events are written as they happen; only the
    enclosing JSON array brackets are buffered, so memory stays O(1).
    """

    def __init__(self, path_or_file: Any) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self._fh.write('{"traceEvents": [\n')
        self._first = True
        self.written = 0

    def _emit(self, name: str, ts: float, args: dict[str, Any]) -> None:
        ev = {"name": name, "ph": "C", "ts": ts * 1e6, "pid": 0, "tid": 0,
              "args": args}
        if not self._first:
            self._fh.write(",\n")
        self._first = False
        self._fh.write(json.dumps(ev, separators=(",", ":")))
        self.written += 1

    def write(self, record: dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "sample":
            t = record["t"]
            self._emit("timeline.cores", t, {"busy": sum(record["busy"])})
            self._emit("timeline.queue", t, {"pending": record["queue"]})
            self._emit("timeline.resident", t, {"bytes": record["resident"]})
        elif kind == "links":
            self._emit("timeline.links", record["t"], {
                "net_util": record["net_util"],
                "mem_util": record["mem_util"],
                "active": record["active"],
            })
        # header records carry no time series; they stay JSONL-only

    def close(self) -> None:
        self._fh.write("\n]}\n")
        if self._owns:
            self._fh.close()


# -- the collector --------------------------------------------------------------------


class TimelineCollector:
    """Sim-clock-driven sampler writing through pluggable sinks.

    Construct with either a :class:`~repro.hardware.cluster.Cluster` (the
    usual case) or explicit ``num_nodes``/``cores_per_node``; attach to a
    :class:`~repro.sim.engine.SimEngine` and the collector reschedules
    itself as a *daemon* event every ``sample_period`` simulated seconds —
    sampling can never keep a run alive or change its makespan.
    """

    def __init__(
        self,
        cluster: "Cluster | None" = None,
        *,
        sample_period: float = 0.25,
        sinks: Iterable[Any] = (),
        num_nodes: "int | None" = None,
        cores_per_node: "int | None" = None,
        node_groups: int = 64,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if not (isinstance(sample_period, (int, float))
                and math.isfinite(sample_period) and sample_period > 0):
            raise ReproError(
                f"sample_period must be a positive number of simulated "
                f"seconds, got {sample_period!r}"
            )
        if cluster is not None:
            num_nodes = cluster.num_nodes
            cores_per_node = cluster.cores_per_node
        self.num_nodes = int(num_nodes) if num_nodes else 1
        self.cores_per_node = int(cores_per_node) if cores_per_node else 1
        if node_groups <= 0:
            raise ReproError("node_groups must be positive")
        self.node_groups = min(int(node_groups), self.num_nodes)
        self.sample_period = float(sample_period)
        self.cores = CoreUsage(self.num_nodes, self.cores_per_node)
        self._sinks: list[Any] = list(sinks)
        # node -> group index (contiguous, near-equal slices)
        self._group_of = [
            n * self.node_groups // self.num_nodes
            for n in range(self.num_nodes)
        ]
        self._group_sizes = [0] * self.node_groups
        for g in self._group_of:
            self._group_sizes[g] += 1
        #: optional zero-arg probe for data-space resident bytes
        self.resident_probe: "Callable[[], int] | None" = None
        #: optional hook called with the sample time right before each
        #: tick reads the busy counters — lets a driver that precomputes
        #: its completion schedule refresh ``cores.busy`` lazily instead
        #: of paying per-event bookkeeping on its hot path
        self.pre_sample: "Callable[[float], None] | None" = None
        #: asynchronous transfers currently in flight (see module docstring)
        self.inflight = 0
        #: cumulative completed transfers / bytes (transport-fed)
        self.transfers_completed = 0
        self.transferred_bytes = 0
        #: records emitted, per kind
        self.samples = 0
        self.link_samples = 0
        #: host wall-clock seconds spent inside the sampler (overhead
        #: self-accounting; deliberately nondeterministic)
        self.overhead_wall = 0.0
        self._engine: "SimEngine | None" = None
        self._m_samples = None
        self._m_wall = None
        if registry is not None:
            self.bind_registry(registry)

    # -- wiring ----------------------------------------------------------------

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Register the ``obs.overhead.*`` instruments on ``registry``.

        Called only when a collector actually exists, so timeline-off runs
        register no ``obs.`` metrics at all (the perf guard pins this).
        """
        self._m_samples = registry.counter(
            "obs.overhead.samples", labelnames=("kind",)
        )
        self._m_wall = registry.gauge("obs.overhead.wall_seconds")

    def attach(self, engine: "SimEngine") -> None:
        """Bind to ``engine`` and start the periodic sampling daemon."""
        if self._engine is not None:
            raise ReproError("timeline collector is already attached")
        self._engine = engine
        self.emit({
            "kind": "header",
            "version": TIMELINE_VERSION,
            "t": engine.now,
            "sample_period": self.sample_period,
            "num_nodes": self.num_nodes,
            "cores_per_node": self.cores_per_node,
            "groups": self.node_groups,
        })
        engine.schedule_daemon(0.0, self._tick)

    # -- transport hooks -------------------------------------------------------

    def transfer_started(self) -> None:
        self.inflight += 1

    def transfer_finished(self) -> None:
        self.inflight -= 1

    def note_transfer(self, nbytes: int = 0) -> None:
        """Record one completed (instantaneous) transfer."""
        self.transfers_completed += 1
        self.transferred_bytes += nbytes

    # -- sampling --------------------------------------------------------------

    def group_counts(self) -> list[int]:
        """Per-group busy-core counts (the ``busy`` field of a sample)."""
        counts = [0] * self.node_groups
        group_of = self._group_of
        for node, busy in enumerate(self.cores.busy):
            if busy:
                counts[group_of[node]] += busy
        return counts

    def _tick(self) -> None:
        wall0 = time.perf_counter()
        engine = self._engine
        if self.pre_sample is not None:
            self.pre_sample(engine.now)
        resident = self.resident_probe() if self.resident_probe is not None else 0
        self.emit({
            "kind": "sample",
            "t": engine.now,
            "events": engine.dispatched(),
            "queue": engine.pending(),
            "busy": self.group_counts(),
            "busy_frac": self.cores.busy_fraction(),
            "inflight": self.inflight,
            "resident": int(resident),
            "transfers": self.transfers_completed,
        })
        self.overhead_wall += time.perf_counter() - wall0
        if self._m_wall is not None:
            self._m_wall.set(self.overhead_wall)
        engine.schedule_daemon(self.sample_period, self._tick)

    def emit(self, record: dict[str, Any]) -> None:
        """Push one record through every sink (fluid phases call this too)."""
        kind = record.get("kind")
        if kind == "sample":
            self.samples += 1
        elif kind == "links":
            self.link_samples += 1
        if self._m_samples is not None and kind != "header":
            self._m_samples.inc(kind=kind)
        for sink in self._sinks:
            sink.write(record)

    def add_overhead(self, seconds: float) -> None:
        """Fold externally measured sampling cost (fluid link sampling)
        into the wall-clock overhead account."""
        self.overhead_wall += seconds
        if self._m_wall is not None:
            self._m_wall.set(self.overhead_wall)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


# -- live progress ---------------------------------------------------------------------


class ProgressSnapshot:
    """One progress observation: simulated time vs host throughput."""

    __slots__ = ("sim_time", "events", "wall_seconds", "events_per_sec", "eta")

    def __init__(self, sim_time: float, events: int, wall_seconds: float,
                 events_per_sec: float, eta: "float | None") -> None:
        self.sim_time = sim_time
        self.events = events
        self.wall_seconds = wall_seconds
        self.events_per_sec = events_per_sec
        #: estimated host seconds to completion (None without a total hint)
        self.eta = eta

    def format(self) -> str:
        line = (f"sim t={self.sim_time:.3f}s  events={self.events}  "
                f"{self.events_per_sec:,.0f} ev/s")
        if self.eta is not None:
            line += f"  eta {self.eta:.1f}s"
        return line


class ProgressReporter:
    """Live progress on the simulated clock: events/sec, sim-time, ETA.

    Reports every ``period`` simulated seconds through ``callback`` (the
    hook a streaming front-end would subscribe to) or, by default, as a
    single self-overwriting stderr line. Rides a daemon event, so it never
    extends the run.
    """

    def __init__(
        self,
        period: float = 1.0,
        callback: "Callable[[ProgressSnapshot], None] | None" = None,
        stream: Any = None,
        total_events: "int | None" = None,
    ) -> None:
        if not (isinstance(period, (int, float))
                and math.isfinite(period) and period > 0):
            raise ReproError(
                f"progress period must be positive, got {period!r}"
            )
        self.period = float(period)
        self.callback = callback
        self.stream = stream if stream is not None else (
            None if callback is not None else sys.stderr
        )
        self.total_events = total_events
        self.snapshots = 0
        self._engine: "SimEngine | None" = None
        self._wall0 = 0.0

    def attach(self, engine: "SimEngine") -> None:
        if self._engine is not None:
            raise ReproError("progress reporter is already attached")
        self._engine = engine
        self._wall0 = time.perf_counter()
        engine.schedule_daemon(0.0, self._tick)

    def _tick(self) -> None:
        engine = self._engine
        wall = time.perf_counter() - self._wall0
        events = engine.dispatched()
        eps = events / wall if wall > 0 else 0.0
        eta = None
        if self.total_events is not None and eps > 0:
            eta = max(0, self.total_events - events) / eps
        snap = ProgressSnapshot(engine.now, events, wall, eps, eta)
        self.snapshots += 1
        if self.callback is not None:
            self.callback(snap)
        if self.stream is not None:
            self.stream.write("\r" + snap.format())
            self.stream.flush()
        engine.schedule_daemon(self.period, self._tick)

    def close(self) -> None:
        if self.stream is not None and self.snapshots:
            self.stream.write("\n")
            self.stream.flush()


# -- reading timelines back ------------------------------------------------------------


def read_timeline(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a ``--timeline-out`` JSONL file -> (header, records).

    Raises :class:`~repro.errors.ReproError` on structural problems (the
    CLI ``timeline`` subcommand maps that to exit code 1); full semantic
    validation lives in ``benchmarks/check_trace.py``.
    """
    header: "dict[str, Any] | None" = None
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for n, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{n + 1}: not JSON: {exc}") from None
            if not isinstance(rec, dict) or "kind" not in rec:
                raise ReproError(f"{path}:{n + 1}: record needs a 'kind'")
            if rec["kind"] == "header":
                if header is not None:
                    raise ReproError(f"{path}:{n + 1}: duplicate header")
                if records:
                    raise ReproError(f"{path}:{n + 1}: header must come first")
                header = rec
            else:
                records.append(rec)
    if header is None:
        raise ReproError(f"{path}: missing header record")
    if int(header.get("version", 0)) > TIMELINE_VERSION:
        raise ReproError(
            f"{path}: timeline version {header.get('version')} is newer "
            f"than supported {TIMELINE_VERSION}"
        )
    return header, records
