"""Critical-path analysis over a traced run's span DAG.

A traced run leaves two artefacts in the :class:`~repro.obs.tracer.Tracer`:
the span tree (what nested under what) and the flow links (what *caused*
what across call frames — puts feeding transfers, bundle completions
unblocking children, event dispatches firing the events they scheduled).
Together they form a DAG over intervals of simulated time. This module

* rebuilds that DAG either from a live tracer or from an exported Chrome
  ``trace_event`` JSON file (:class:`SpanGraph`),
* walks it backward from the latest-finishing span to produce the run's
  **critical path** — a sequence of segments that tiles ``[t0, makespan]``
  exactly, so per-category attribution sums to the makespan by
  construction (:func:`critical_path`),
* attributes each segment to one of five categories — ``compute``,
  ``network``, ``dht``, ``wait``, ``recovery`` — from the span name or,
  for gaps, from the flow-link kind that explains the delay,
* ranks **stragglers**: per workflow bundle and generation, which
  application finished last and how much *slack* its siblings had
  (:func:`stragglers`).

The walk is deterministic: ties break on span sequence number, which the
tracer assigns in emission order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ReproError

__all__ = [
    "CATEGORIES",
    "GRAY_CATEGORIES",
    "PARTITION_CATEGORIES",
    "MEMORY_CATEGORIES",
    "PathSegment",
    "SpanNode",
    "SpanGraph",
    "CriticalPath",
    "Straggler",
    "categorize",
    "critical_path",
    "stragglers",
    "analyze",
]

#: attribution categories, in reporting order
CATEGORIES = ("compute", "network", "dht", "wait", "recovery")

#: gray-failure categories — reported only when their spans actually occur,
#: so clean-run attributions keep exactly the five classic keys (and the
#: committed BENCH snapshots stay byte-identical)
GRAY_CATEGORIES = ("hedge", "speculation", "scrub")

#: network-partition categories — opt-in like the gray ones: they appear in
#: an attribution only when partition spans/gaps actually sat on the path,
#: so partitions-off runs keep exactly the five classic keys
PARTITION_CATEGORIES = ("partition.wait", "partition.heal", "quorum.degraded")

#: memory-pressure categories — opt-in like the others: they appear only
#: when backpressure stalls or spill traffic actually sat on the path, so
#: enforcement-off runs keep exactly the five classic keys
MEMORY_CATEGORIES = ("mem.wait", "spill.write", "spill.read")

#: span-name prefix -> category. First match (longest prefix) wins.
_PREFIX_CATEGORIES: tuple[tuple[str, str], ...] = (
    ("dart.transfer", "network"),
    ("dart.rpc", "dht"),
    ("dht.", "dht"),
    ("lookup.", "dht"),
    ("hedge.", "hedge"),
    ("speculation.", "speculation"),
    ("integrity.scrub", "scrub"),
    ("integrity.", "recovery"),
    ("partition.heal", "partition.heal"),
    ("partition.", "partition.wait"),
    ("quorum.", "quorum.degraded"),
    ("spill.write", "spill.write"),
    ("spill.read", "spill.read"),
    ("mem.", "mem.wait"),
    ("cods.", "dht"),
    ("schedule.compute", "compute"),
    ("resilience.", "recovery"),
    ("fault.", "recovery"),
    ("checkpoint.", "recovery"),
    ("workflow.", "compute"),
    ("sim.", "compute"),
)


def categorize(name: str) -> str:
    """Attribution category for a span name (default ``compute``)."""
    for prefix, cat in _PREFIX_CATEGORIES:
        if name.startswith(prefix):
            return cat
    return "compute"


def _gap_category(link_kind: "str | None") -> str:
    """Category of a wait gap explained by a flow link of ``link_kind``.

    A plain gap is ``wait``; a gap crossed via a ``sched.compute`` link is
    an application's execution window (``compute``); ``sched.recovery``
    covers back-off delays before re-enactment.
    """
    if link_kind is not None and link_kind.startswith("sched."):
        cat = link_kind.split(".", 1)[1]
        if (
            cat in CATEGORIES
            or cat in GRAY_CATEGORIES
            or cat in PARTITION_CATEGORIES
            or cat in MEMORY_CATEGORIES
        ):
            return cat
    return "wait"


@dataclass
class SpanNode:
    """One span as a DAG node: an interval plus its causal neighbourhood."""

    seq: int
    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)
    parent: "SpanNode | None" = None
    children: list["SpanNode"] = field(default_factory=list)
    #: (kind, source node) pairs for links whose target is this span
    preds: list[tuple[str, "SpanNode"]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}#{self.seq} [{self.start},{self.end}])"


class SpanGraph:
    """The span DAG of one run: intervals, nesting, and flow edges."""

    def __init__(self) -> None:
        self.nodes: dict[int, SpanNode] = {}
        #: (kind, source, target) in creation order
        self.links: list[tuple[str, SpanNode, SpanNode]] = []

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: Any) -> "SpanGraph":
        """Build from a live :class:`~repro.obs.tracer.Tracer`."""
        g = cls()

        def add(span: Any, parent: "SpanNode | None") -> None:
            end = span.end if span.end is not None else span.start
            node = SpanNode(
                seq=span.seq, name=span.name, start=span.start, end=end,
                attrs=dict(span.attrs), parent=parent,
            )
            g.nodes[node.seq] = node
            if parent is not None:
                parent.children.append(node)
            for child in span.children:
                add(child, node)

        for root in tracer.roots:
            add(root, None)
        for fl in getattr(tracer, "links", ()):
            src = g.nodes.get(fl.source.seq)
            dst = g.nodes.get(fl.target.seq)
            if src is None or dst is None:  # pragma: no cover - defensive
                continue
            g._add_link(fl.kind, src, dst)
        return g

    @classmethod
    def from_chrome(cls, events: Iterable[dict[str, Any]]) -> "SpanGraph":
        """Build from Chrome ``trace_event`` dicts (the export round-trip).

        Reconstructs sync spans from B/E nesting per ``tid``, instants from
        ``i``, async spans from ``b``/``e`` pairs keyed by ``id``, and flow
        links from ``s``/``f`` pairs carrying source/target span sequence
        numbers in ``args``.
        """
        g = cls()
        stack: list[SpanNode] = []
        open_async: dict[int, SpanNode] = {}
        pending_links: list[tuple[str, int, int]] = []

        def attach(node: SpanNode) -> None:
            if stack:
                node.parent = stack[-1]
                stack[-1].children.append(node)

        for ev in events:
            ph = ev.get("ph")
            ts = ev.get("ts", 0.0) / 1e6
            if ph == "B":
                node = SpanNode(seq=-1, name=ev["name"], start=ts, end=ts)
                attach(node)
                stack.append(node)
            elif ph == "E":
                if not stack:
                    raise ReproError("trace has E event with no open span")
                node = stack.pop()
                node.end = ts
                args = dict(ev.get("args", {}))
                node.seq = args.pop("seq", -1)
                node.attrs = args
                g.nodes[node.seq] = node
            elif ph == "i":
                args = dict(ev.get("args", {}))
                seq = args.pop("seq", -1)
                node = SpanNode(
                    seq=seq, name=ev["name"], start=ts, end=ts, attrs=args,
                )
                attach(node)
                g.nodes[seq] = node
            elif ph == "b":
                node = SpanNode(seq=-1, name=ev["name"], start=ts, end=ts)
                attach(node)
                open_async[ev["id"]] = node
            elif ph == "e":
                node = open_async.pop(ev["id"], None)
                if node is None:
                    raise ReproError(
                        f"trace has e event for unknown async id {ev['id']}"
                    )
                node.end = ts
                args = dict(ev.get("args", {}))
                node.seq = args.pop("seq", -1)
                node.attrs = args
                g.nodes[node.seq] = node
            elif ph == "s":
                args = ev.get("args", {})
                pending_links.append(
                    (ev["name"], args["source"], args["target"])
                )
            # "f" events repeat the s payload; one side is enough.
        for node in stack:  # spans still open at export time
            g.nodes.setdefault(node.seq, node)
        for node in open_async.values():
            g.nodes.setdefault(node.seq, node)
        for kind, src_seq, dst_seq in pending_links:
            src = g.nodes.get(src_seq)
            dst = g.nodes.get(dst_seq)
            if src is None or dst is None:
                raise ReproError(
                    f"flow link {kind!r} references unknown span "
                    f"({src_seq} -> {dst_seq})"
                )
            g._add_link(kind, src, dst)
        return g

    @classmethod
    def from_chrome_file(cls, path: str) -> "SpanGraph":
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        return cls.from_chrome(events)

    def _add_link(self, kind: str, src: SpanNode, dst: SpanNode) -> None:
        self.links.append((kind, src, dst))
        dst.preds.append((kind, src))

    # -- queries --------------------------------------------------------------------

    @property
    def makespan(self) -> float:
        return max((n.end for n in self.nodes.values()), default=0.0)

    @property
    def t0(self) -> float:
        return min((n.start for n in self.nodes.values()), default=0.0)

    def sink(self) -> "SpanNode | None":
        """The latest-finishing span (ties: highest seq, i.e. emitted last)."""
        if not self.nodes:
            return None
        return max(self.nodes.values(), key=lambda n: (n.end, n.seq))


@dataclass
class PathSegment:
    """One tile of the critical path: an interval owned by one span/gap."""

    start: float
    end: float
    category: str
    name: str  # owning span name, or "(wait)" / "(wait:<link kind>)"
    seq: int  # owning span seq, or -1 for gaps

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "category": self.category,
            "name": self.name,
            "seq": self.seq,
        }


@dataclass
class CriticalPath:
    """The walk's result: segments tiling ``[t0, makespan]``."""

    t0: float
    makespan: float
    segments: list[PathSegment]

    @property
    def length(self) -> float:
        return self.makespan - self.t0

    def attribution(self) -> dict[str, float]:
        """Seconds on the path per category.

        Keys always cover the five classic CATEGORIES; gray-failure
        categories (hedge, speculation, scrub) and partition categories
        (partition.wait, partition.heal, quorum.degraded) appear only when
        segments of that kind sit on the path — clean runs report exactly
        the classic shape, so historical snapshots stay comparable byte
        for byte.
        """
        out = {cat: 0.0 for cat in CATEGORIES}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.duration
        return out

    def attribution_fractions(self) -> dict[str, float]:
        total = self.length
        if total <= 0:
            return {cat: 0.0 for cat in CATEGORIES}
        return {
            cat: secs / total for cat, secs in self.attribution().items()
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "t0": self.t0,
            "makespan": self.makespan,
            "length": self.length,
            "attribution": self.attribution(),
            "segments": [s.to_dict() for s in self.segments],
        }


def critical_path(graph: SpanGraph) -> CriticalPath:
    """Walk the span DAG backward from the sink and tile ``[t0, makespan]``.

    At each step the walk owns an interval ending at ``t`` inside the
    current span. It hands the earlier part of the interval to, in order
    of preference:

    1. the latest-ending **child** that finishes inside the interval (the
       nested work that was the bottleneck),
    2. at the span's head, the latest-ending **flow predecessor** (the
       cross-frame cause: the put behind a transfer, the dispatch behind
       an event), emitting a gap segment when the predecessor finished
       before this span started,
    3. the **nesting parent** (the caller continues to own the time),
    4. a **wait gap** back to the previous activity when nothing explains
       the time — attributed via the flow-link kind when one crossed it.

    Segments are emitted right-to-left and reversed at the end; by
    construction consecutive segments share endpoints, so the per-category
    attribution sums to ``makespan - t0`` exactly.
    """
    sink = graph.sink()
    if sink is None:
        return CriticalPath(0.0, 0.0, [])
    t0 = graph.t0
    segments: list[PathSegment] = []
    node: SpanNode = sink
    t = sink.end
    # Guard against zero-duration cycles: a (node, t) pair must not repeat.
    seen_at_t: set[tuple[int, float]] = set()

    def emit(start: float, end: float, cat: str, name: str, seq: int) -> None:
        if end > start:
            segments.append(PathSegment(start, end, cat, name, seq))

    while t > t0:
        key = (id(node), t)
        if key in seen_at_t:
            # Zero-duration chain looped; force progress via a wait gap.
            # The jump target must end strictly before t — clearing the
            # guard is only safe once t actually decreases, else two
            # zero-width spans ending at the same instant bounce forever.
            prev = _latest_end_before(graph, t, exclude=node, strict=True)
            if prev is None:
                emit(t0, t, "wait", "(wait)", -1)
                t = t0
                break
            emit(prev.end, t, "wait", "(wait)", -1)
            node, t = prev, prev.end
            seen_at_t.clear()
            continue
        seen_at_t.add(key)

        lo = max(node.start, t0)
        # 1. bottleneck child inside (lo, t]
        child = _bottleneck_child(node, lo, t)
        if child is not None:
            emit(child.end, t, categorize(node.name), node.name, node.seq)
            node, t = child, child.end
            continue
        # Own the remainder of this span down to its start.
        emit(lo, t, categorize(node.name), node.name, node.seq)
        t = lo
        if t <= t0:
            break
        # 2. flow predecessor at the span head
        pred = _latest_pred(node)
        if pred is not None:
            kind, src = pred
            if src.end < t:
                emit(src.end, t, _gap_category(kind),
                     f"(wait:{kind})", -1)
            node, t = src, min(src.end, t)
            continue
        # 3. nesting parent
        if node.parent is not None:
            node = node.parent
            continue
        # 4. wait gap back to the previous activity
        prev = _latest_end_before(graph, t, exclude=node)
        if prev is None:
            emit(t0, t, "wait", "(wait)", -1)
            t = t0
            break
        emit(prev.end, t, "wait", "(wait)", -1)
        node, t = prev, prev.end
    segments.reverse()
    return CriticalPath(t0, graph.makespan, segments)


def _bottleneck_child(node: SpanNode, lo: float, t: float) -> "SpanNode | None":
    """Latest-ending child with ``lo < end <= t`` (ties: highest seq)."""
    best: SpanNode | None = None
    for child in node.children:
        if lo < child.end <= t:
            if best is None or (child.end, child.seq) > (best.end, best.seq):
                best = child
    return best


def _latest_pred(node: SpanNode) -> "tuple[str, SpanNode] | None":
    """The flow predecessor with the latest end (ties: highest seq)."""
    best: tuple[str, SpanNode] | None = None
    for kind, src in node.preds:
        if best is None or (src.end, src.seq) > (best[1].end, best[1].seq):
            best = (kind, src)
    return best


def _latest_end_before(
    graph: SpanGraph, t: float, exclude: SpanNode, strict: bool = False
) -> "SpanNode | None":
    """Latest span ending at (or, with ``strict``, before) ``t``, not ``exclude``."""
    best: SpanNode | None = None
    for n in graph.nodes.values():
        if n is exclude or n.end > t or (strict and n.end >= t):
            continue
        if best is None or (n.end, n.seq) > (best.end, best.seq):
            best = n
    return best


@dataclass
class Straggler:
    """Per-(bundle, generation) completion-order record."""

    bundle: int
    gen: int
    app_id: int
    end: float
    #: seconds between this app's finish and the bundle's close
    slack: float
    #: True for the app that closed the bundle (slack == min of group)
    is_straggler: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "bundle": self.bundle,
            "gen": self.gen,
            "app_id": self.app_id,
            "end": self.end,
            "slack": self.slack,
            "is_straggler": self.is_straggler,
        }


def stragglers(graph: SpanGraph) -> list[Straggler]:
    """Slack analysis over ``workflow.app`` spans, grouped per bundle+gen.

    Within each group the app that finished last (the *straggler*) gated
    the bundle; every sibling's slack is how much later it could have
    finished without delaying the bundle. Sorted by (bundle, gen, -slack,
    app_id) so the most slack-rich apps lead each group and the straggler
    closes it.
    """
    groups: dict[tuple[int, int], list[SpanNode]] = {}
    for node in graph.nodes.values():
        if node.name != "workflow.app":
            continue
        key = (int(node.attrs.get("bundle", -1)),
               int(node.attrs.get("gen", 0)))
        groups.setdefault(key, []).append(node)
    out: list[Straggler] = []
    for (bundle, gen), nodes in sorted(groups.items()):
        close = max(n.end for n in nodes)
        last = max(nodes, key=lambda n: (n.end, n.seq))
        for n in nodes:
            out.append(Straggler(
                bundle=bundle, gen=gen,
                app_id=int(n.attrs.get("app", n.attrs.get("app_id", -1))),
                end=n.end, slack=close - n.end,
                is_straggler=n is last,
            ))
    out.sort(key=lambda s: (s.bundle, s.gen, -s.slack, s.app_id))
    return out


def analyze(graph: SpanGraph) -> dict[str, Any]:
    """One-call bundle: critical path + attribution + stragglers."""
    path = critical_path(graph)
    strag = stragglers(graph)
    worst = [s.to_dict() for s in strag if s.is_straggler]
    return {
        "makespan": path.makespan,
        "critical_path_length": path.length,
        "attribution": path.attribution(),
        "attribution_fractions": path.attribution_fractions(),
        "segments": len(path.segments),
        "stragglers": worst,
        "max_slack": max((s.slack for s in strag), default=0.0),
    }
