"""Causal provenance ledger: *why* a run did what it did.

The tracer (``repro.obs.tracer``) records *what happened* as timed spans
and the timeline (``repro.obs.timeline``) records *how loaded* the
platform was; neither records *decisions*.  The :class:`ProvenanceLedger`
fills that gap: every choice the stack makes — which cores a bundle was
placed on and what the alternatives were, which replica served a get and
why the primary did not, why a write was fenced or a quorum degraded,
which recovery-ladder rung fired — is appended as a structured,
schema-versioned record stamped with the *simulated* clock.

Each record carries a ``cause`` field holding the id of the record that
caused it, so a completed bundle has a walkable why-chain from its
terminal ``bundle.complete`` record back through every retry, wait, and
re-dispatch to the ``workflow.submit`` root.  ``repro.obs.explain``
renders those chains; ``benchmarks/check_trace.py --provenance``
validates the invariants (header first, strictly increasing ids,
per-kind monotone sim-time, causes resolve to earlier records, exactly
one terminal record per completed bundle).

Ledger schema (version |PROVENANCE_VERSION|, JSONL, one object per
line)::

    {"kind": "header", "version": 1, "t": 0.0, ...metadata}
    {"id": 1, "t": 0.0, "kind": "workflow.submit", "cause": null, ...}
    {"id": 2, "t": 0.0, "kind": "bundle.dispatch", "cause": 1,
     "bundle": 0, "gen": 0, ...}

Like the tracer and the timeline, the ledger is **off by default** and
byte-identical to an unledgered run when disabled: layers hold the
shared :data:`NULL_LEDGER` whose class-level ``enabled = False`` makes
every hook a single attribute check, and the ``prov.records`` counter is
created lazily only when a registry is bound.  The ledger schedules no
simulation events of its own — attaching it never changes
``sim_events``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable

from repro.errors import ReproError
from repro.obs.timeline import JsonlStreamSink, RingBufferSink

__all__ = [
    "NULL_LEDGER",
    "NullLedger",
    "PROVENANCE_VERSION",
    "ProvenanceLedger",
    "read_ledger",
]

#: Ledger schema version, written into the header record.  Readers must
#: reject files from a *newer* schema than they understand.
PROVENANCE_VERSION = 1

#: Record kinds with a terminal meaning: exactly one per completed
#: bundle.  A bundle re-enacted *after* completing (crash of a node that
#: held its output) completes again as ``bundle.regenerated`` so the
#: one-terminal invariant survives recovery.
TERMINAL_KIND = "bundle.complete"


class ProvenanceLedger:
    """Append-only decision log on the simulated clock.

    Parameters
    ----------
    sinks:
        Extra sinks (e.g. a :class:`~repro.obs.timeline.JsonlStreamSink`)
        that receive every record including the header.  A bounded
        in-memory :class:`~repro.obs.timeline.RingBufferSink` of
        ``ring`` records is always kept so ``records`` / ``summary()``
        work without a file.
    ring:
        Capacity of the built-in ring buffer (most recent records win).
    clock:
        Zero-argument callable returning the current *simulated* time.
        Usually bound by the scenario driver once the engine exists;
        records stamped before binding carry ``t=0.0``.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when bound
        (see :meth:`bind_registry`) a lazy ``prov.records{kind=...}``
        counter tracks ledger volume.  Never bound on off runs, so a
        disabled ledger registers nothing.
    """

    #: Class-level fast-path flag; hook sites check ``ledger.enabled``
    #: exactly once before building a record (mirrors ``Tracer``).
    enabled = True

    def __init__(
        self,
        sinks: Iterable[Any] = (),
        ring: int = 4096,
        clock: "Callable[[], float] | None" = None,
        registry: Any = None,
    ) -> None:
        self.ring = RingBufferSink(ring)
        self._sinks: tuple[Any, ...] = (self.ring, *sinks)
        self.clock = clock
        self._next_id = 1
        self._started = False
        self._counts: dict[str, int] = {}
        #: total non-header records appended (never evicted).
        self.records_written = 0
        self._m_records: Any = None
        if registry is not None:
            self.bind_registry(registry)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_registry(self, registry: Any) -> None:
        """Create the lazy ``prov.records`` counter in ``registry``.

        Called only when a ledger is actually attached to a run, so
        ledger-off runs register zero ``prov.*`` metrics.
        """
        self._m_records = registry.counter(
            "prov.records", labelnames=("kind",)
        )

    def start(self, **meta: Any) -> None:
        """Emit the schema header (idempotent; auto-called on first record)."""
        if self._started:
            return
        self._started = True
        header = {
            "kind": "header",
            "version": PROVENANCE_VERSION,
            "t": self._now(),
        }
        header.update(meta)
        self._emit(header)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, kind: str, cause: "int | None" = None,
               **fields: Any) -> int:
        """Append one decision record; returns its id for cause-linking."""
        if not self._started:
            self.start()
        rid = self._next_id
        self._next_id += 1
        rec: dict[str, Any] = {
            "id": rid,
            "t": self._now(),
            "kind": kind,
            "cause": cause,
        }
        rec.update(fields)
        self._emit(rec)
        self.records_written += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if self._m_records is not None:
            self._m_records.inc(kind=kind)
        return rid

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _emit(self, rec: dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.write(rec)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[dict[str, Any]]:
        """Records still held by the built-in ring (header excluded)."""
        return [r for r in self.ring.records if r.get("kind") != "header"]

    def summary(self) -> dict[str, int]:
        """Record counts by kind over the whole run (not just the ring)."""
        return dict(sorted(self._counts.items()))

    def close(self) -> None:
        """Flush and close every sink that owns a file."""
        for sink in self._sinks:
            sink.close()


class NullLedger:
    """Shared no-op ledger carried by every layer when provenance is off.

    ``enabled`` is a class attribute, so the disabled cost at a hook
    site is a single attribute check — the same guard pattern as
    ``NULL_TRACER``.
    """

    enabled = False
    clock = None

    def record(self, kind: str, cause: "int | None" = None,
               **fields: Any) -> int:
        return 0

    def start(self, **meta: Any) -> None:
        pass

    def bind_registry(self, registry: Any) -> None:
        pass

    def summary(self) -> dict[str, int]:
        return {}

    def close(self) -> None:
        pass


#: The shared no-op instance (identity-comparable, like ``NULL_TRACER``).
NULL_LEDGER = NullLedger()


def read_ledger(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load and validate a ``--provenance-out`` JSONL ledger.

    Returns ``(header, records)``.  Raises :class:`ReproError` with a
    ``path:line`` prefix on the first malformed line: missing or
    duplicated header, unsupported schema version, non-object lines,
    missing ``id``/``kind``/``t`` fields, non-increasing ids, or a
    ``cause`` that does not resolve to an earlier record.
    """
    header: "dict[str, Any] | None" = None
    records: list[dict[str, Any]] = []
    seen: set[int] = set()
    last_id = 0
    with open(path, "r", encoding="utf-8") as fh:
        for n, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{n + 1}"
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{where}: invalid JSON: {exc}") from exc
            if not isinstance(rec, dict):
                raise ReproError(f"{where}: expected an object, got "
                                 f"{type(rec).__name__}")
            kind = rec.get("kind")
            if not isinstance(kind, str):
                raise ReproError(f"{where}: missing or non-string 'kind'")
            if kind == "header":
                if header is not None:
                    raise ReproError(f"{where}: duplicate header record")
                if records:
                    raise ReproError(f"{where}: header must come first")
                version = rec.get("version")
                if not isinstance(version, int) or version < 1:
                    raise ReproError(
                        f"{where}: header version must be a positive "
                        f"integer, got {version!r}"
                    )
                if version > PROVENANCE_VERSION:
                    raise ReproError(
                        f"{where}: ledger schema v{version} is newer than "
                        f"supported v{PROVENANCE_VERSION}"
                    )
                header = rec
                continue
            if header is None:
                raise ReproError(f"{where}: first record must be the header")
            rid = rec.get("id")
            if not isinstance(rid, int) or rid <= last_id:
                raise ReproError(
                    f"{where}: record ids must be strictly increasing "
                    f"positive integers, got {rid!r} after {last_id}"
                )
            if not isinstance(rec.get("t"), (int, float)):
                raise ReproError(f"{where}: missing or non-numeric 't'")
            cause = rec.get("cause")
            if cause is not None and (
                not isinstance(cause, int) or cause not in seen
            ):
                raise ReproError(
                    f"{where}: cause {cause!r} does not resolve to an "
                    f"earlier record"
                )
            seen.add(rid)
            last_id = rid
            records.append(rec)
    if header is None:
        raise ReproError(f"{path}: missing header record")
    return header, records
