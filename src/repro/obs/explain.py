"""Query engine over a provenance ledger: answer *why* questions.

Loads a ``--provenance-out`` JSONL ledger (see
:mod:`repro.obs.provenance`) and renders three kinds of answers for the
``repro-insitu explain`` subcommand:

``explain bundle <id>``
    The completed bundle's why-chain — every decision record from the
    ``workflow.submit`` root through dispatches, partition waits,
    recovery re-dispatches, and retries to the terminal
    ``bundle.complete`` — as an ASCII tree with per-hop sim-time deltas.
    The deltas of the bundle's own hops telescope exactly to its
    end-to-end latency, and each hop is aligned with the critical-path
    category (:mod:`repro.obs.critpath`) its stall would be billed to.

``explain object <name>``
    The object's placement history: every put (copies, degraded
    quorums), replica-selection failover, and generation fence that
    concerned it, in sim-time order.

``explain slowest [-n N]``
    Completed bundles ranked by end-to-end latency (first dispatch to
    terminal record), with hop counts and the dominant stall category.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError
from repro.obs.provenance import read_ledger


def _bar_chart(labels, values, unit=""):
    # Deferred: repro.analysis pulls in the experiment drivers (and
    # through them repro.cods), which import repro.obs — a module-level
    # import here would be circular.
    from repro.analysis.ascii import bar_chart

    return bar_chart(labels, values, unit=unit)

__all__ = [
    "KIND_CATEGORY",
    "Ledger",
    "category_of",
    "explain_bundle",
    "explain_object",
    "explain_slowest",
]

#: Provenance record kind -> the critical-path category its time would be
#: attributed to (:data:`repro.obs.critpath.CATEGORIES` plus the gray and
#: partition extensions). The alignment lets a why-chain hop be read next
#: to a ``repro-insitu trace-report`` attribution line.
KIND_CATEGORY = {
    "workflow.submit": "wait",
    "bundle.dispatch": "wait",
    "bundle.place": "dht",
    "bundle.partition_wait": "partition.wait",
    "bundle.partition_escalate": "partition.wait",
    "bundle.stale_abandon": "partition.wait",
    "bundle.data_loss_retry": "recovery",
    "bundle.reenact": "recovery",
    "bundle.speculate": "speculation",
    "bundle.speculation_won": "speculation",
    "bundle.complete": "compute",
    "bundle.regenerated": "compute",
    "object.put": "dht",
    "object.expose": "dht",
    "object.replica_select": "recovery",
    "object.fence": "partition.wait",
    "object.quorum_fail": "quorum.degraded",
    "detector.verdict": "recovery",
    "recovery.ladder": "recovery",
    "recovery.heal": "partition.heal",
}


def category_of(kind: str) -> str:
    """Critical-path category a record kind aligns with."""
    if kind in KIND_CATEGORY:
        return KIND_CATEGORY[kind]
    if kind.startswith("fault."):
        return "recovery"
    return "wait"


#: structural keys never echoed in a rendered hop
_STRUCTURAL = ("id", "t", "kind", "cause", "bundle")


def _fields_of(rec: dict[str, Any]) -> str:
    """A record's payload as compact ``k=v`` pairs."""
    parts = []
    for key, value in rec.items():
        if key in _STRUCTURAL:
            continue
        parts.append(f"{key}={value}")
    return " ".join(parts)


class Ledger:
    """A loaded provenance ledger with id-indexed causal navigation."""

    def __init__(
        self, header: dict[str, Any], records: list[dict[str, Any]]
    ) -> None:
        self.header = header
        self.records = records
        self.by_id = {r["id"]: r for r in records}

    @classmethod
    def load(cls, path: str) -> "Ledger":
        return cls(*read_ledger(path))

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def why_chain(self, rid: int) -> list[dict[str, Any]]:
        """The causal chain ending at record ``rid``, root first.

        Follows ``cause`` links back until a record with no cause (the
        ``workflow.submit`` root). Raises :class:`ReproError` on a
        dangling cause or a cycle (both impossible in a ledger that
        passed :func:`repro.obs.provenance.read_ledger`).
        """
        rec = self.by_id.get(rid)
        if rec is None:
            raise ReproError(f"no record with id {rid} in ledger")
        chain: list[dict[str, Any]] = []
        seen: set[int] = set()
        while rec is not None:
            if rec["id"] in seen:
                raise ReproError(f"cause cycle at record {rec['id']}")
            seen.add(rec["id"])
            chain.append(rec)
            cause = rec.get("cause")
            if cause is None:
                break
            rec = self.by_id.get(cause)
            if rec is None:
                raise ReproError(f"dangling cause {cause} in ledger")
        chain.reverse()
        return chain

    def terminal_of(self, bundle: int) -> "dict[str, Any] | None":
        """The bundle's single terminal ``bundle.complete`` record."""
        for rec in self.records:
            if rec["kind"] == "bundle.complete" and rec.get("bundle") == bundle:
                return rec
        return None

    def completed_bundles(self) -> list[int]:
        return sorted(
            rec["bundle"] for rec in self.records
            if rec["kind"] == "bundle.complete"
        )

    def span_of(self, bundle: int) -> "tuple[float, float] | None":
        """(first dispatch t, terminal t) of a completed bundle."""
        term = self.terminal_of(bundle)
        if term is None:
            return None
        first = next(
            rec for rec in self.records
            if rec["kind"] == "bundle.dispatch" and rec.get("bundle") == bundle
        )
        return first["t"], term["t"]


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------

def explain_bundle(ledger: Ledger, bundle: int) -> str:
    """Render the why-chain of a completed bundle as an ASCII tree."""
    term = ledger.terminal_of(bundle)
    if term is None:
        done = ledger.completed_bundles()
        raise ReproError(
            f"bundle {bundle} has no terminal record in this ledger"
            + (f" (completed bundles: {done})" if done else "")
        )
    chain = ledger.why_chain(term["id"])
    own = [rec for rec in chain if rec.get("bundle") == bundle]
    t0, t1 = own[0]["t"], term["t"]
    lines = [
        f"why bundle {bundle} completed at t={t1:.6f}s "
        f"({len(chain)} hops, {t1 - t0:.6f}s end to end)"
    ]
    per_category: dict[str, float] = {}
    prev_t: "float | None" = None
    for depth, rec in enumerate(chain):
        cat = category_of(rec["kind"])
        delta = 0.0 if prev_t is None else rec["t"] - prev_t
        prev_t = rec["t"]
        if rec.get("bundle") == bundle and rec is not own[0]:
            per_category[cat] = per_category.get(cat, 0.0) + delta
        indent = "   " * depth
        fields = _fields_of(rec)
        lines.append(
            f"{indent}└─ t={rec['t']:.6f}  +{delta:.6f}s "
            f"[{cat:<15}] {rec['kind']}"
            + (f"  {fields}" if fields else "")
        )
    own_span = sum(
        own[i + 1]["t"] - own[i]["t"] for i in range(len(own) - 1)
    )
    lines.append(
        f"in-bundle hop deltas sum to {own_span:.6f}s "
        f"= bundle {bundle}'s end-to-end latency"
    )
    if per_category:
        cats = sorted(per_category)
        lines.append("")
        lines.append("stall attribution along the chain:")
        lines.append(_bar_chart(
            cats, [per_category[c] for c in cats], unit="s",
        ))
    return "\n".join(lines)


def explain_object(ledger: Ledger, name: str) -> str:
    """Render an object's placement / replica / fencing history."""
    hits = [rec for rec in ledger.records if rec.get("var") == name]
    if not hits:
        objects = sorted({
            rec["var"] for rec in ledger.records if "var" in rec
        })
        raise ReproError(
            f"no records for object {name!r} in this ledger"
            + (f" (objects seen: {objects})" if objects else "")
        )
    lines = [f"object {name!r}: {len(hits)} provenance records"]
    for rec in hits:
        fields = _fields_of(rec)
        lines.append(
            f"  t={rec['t']:.6f}  {rec['kind']:<22}"
            + (f" {fields}" if fields else "")
        )
    puts = sum(1 for rec in hits if rec["kind"] == "object.put")
    failovers = sum(
        1 for rec in hits if rec["kind"] == "object.replica_select"
    )
    fences = sum(1 for rec in hits if rec["kind"] == "object.fence")
    lines.append(
        f"  {puts} puts, {failovers} replica failovers, {fences} fenced writes"
    )
    return "\n".join(lines)


def explain_slowest(ledger: Ledger, n: int = 3) -> str:
    """Rank completed bundles by end-to-end latency."""
    if n < 1:
        raise ReproError(f"-n must be >= 1, got {n}")
    rows = []
    for bundle in ledger.completed_bundles():
        t0, t1 = ledger.span_of(bundle)
        term = ledger.terminal_of(bundle)
        chain = ledger.why_chain(term["id"])
        own = [rec for rec in chain if rec.get("bundle") == bundle]
        per_category: dict[str, float] = {}
        for prev, rec in zip(own, own[1:]):
            cat = category_of(rec["kind"])
            per_category[cat] = (
                per_category.get(cat, 0.0) + rec["t"] - prev["t"]
            )
        dominant = (
            max(sorted(per_category), key=lambda c: per_category[c])
            if per_category else "-"
        )
        rows.append((t1 - t0, bundle, len(chain), dominant))
    if not rows:
        raise ReproError("no completed bundles in this ledger")
    rows.sort(key=lambda r: (-r[0], r[1]))
    rows = rows[:n]
    lines = [f"slowest {len(rows)} of {len(ledger.completed_bundles())} "
             f"completed bundles (end-to-end latency):"]
    lines.append(_bar_chart(
        [f"bundle {b}" for _, b, _, _ in rows],
        [lat for lat, _, _, _ in rows],
        unit="s",
    ))
    for lat, bundle, hops, dominant in rows:
        lines.append(
            f"  bundle {bundle}: {lat:.6f}s end to end, {hops} hops, "
            f"dominant stall: {dominant}"
        )
    lines.append(
        "drill down with: repro-insitu explain bundle <id> --ledger <path>"
    )
    return "\n".join(lines)
