"""Hierarchical span tracing on the simulated clock.

A :class:`Tracer` records *spans* — named, attributed intervals of simulated
time — as both a structured in-memory tree and a flat event stream that
exports to Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` or
Perfetto). Three span flavours cover the framework's shapes of work:

* ``with tracer.span("dht.query", var=v):`` — synchronous work nested via a
  stack (transfers, RPCs, lookups, schedule computation);
* ``tracer.instant("fault.transfer_retry", ...)`` — point events (retries,
  crashes);
* ``tracer.begin_async(...)`` / ``tracer.end_async(...)`` — intervals that
  outlive the current call frame (workflow bundles and applications, which
  start at launch and finish at a later completion *event*).

Spans can additionally be connected by *flow links* —
``tracer.link(source, target, kind)`` — recording causality that the span
stack cannot express: a producer's put feeding a later consumer pull, a
bundle completion unblocking its children, an event dispatch firing the
event it scheduled, a failure detection triggering recovery. Links export
as Chrome ``s``/``f`` flow events and are the edges
:mod:`repro.obs.critpath` walks to reconstruct the run's causal DAG.

Timestamps come from ``tracer.clock`` — a zero-argument callable, normally
bound to ``SimEngine.now`` when the tracer is handed to an engine — so two
runs of the same scenario produce identical traces.

The default tracer everywhere is :data:`NULL_TRACER`: its ``enabled`` flag
is ``False`` and instrumented hot paths check that one attribute before
doing any tracing work, so the disabled overhead is a single branch.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Callable, Iterator

from repro.errors import ReproError

__all__ = [
    "FlowLink",
    "Span",
    "Tracer",
    "StreamingTracer",
    "NullTracer",
    "NULL_TRACER",
]


class Span:
    """One traced interval: a name, attributes, children, and sim-times."""

    __slots__ = ("name", "start", "end", "seq", "attrs", "children", "kind", "_tracer")

    def __init__(
        self,
        name: str,
        start: float,
        seq: int,
        attrs: dict[str, Any],
        kind: str = "span",
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.seq = seq
        self.attrs = attrs
        self.children: list[Span] = []
        self.kind = kind  # "span" | "instant" | "async"
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Inclusive simulated duration (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. a cache-hit flag)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        """Nested plain-dict form of this span and its children."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    # -- context-manager protocol (synchronous spans) -------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._tracer is not None:
            self._tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, start={self.start}, end={self.end})"


class FlowLink:
    """A causal edge between two spans (``source`` happened-before ``target``)."""

    __slots__ = ("link_id", "kind", "source", "target")

    def __init__(self, link_id: int, kind: str, source: Span, target: Span) -> None:
        self.link_id = link_id
        self.kind = kind
        self.source = source
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowLink({self.kind!r}, "
                f"{self.source.name}#{self.source.seq} -> "
                f"{self.target.name}#{self.target.seq})")


class Tracer:
    """Collects spans into a tree and a Chrome-exportable event stream."""

    enabled = True

    def __init__(self, clock: "Callable[[], float] | None" = None) -> None:
        #: zero-arg callable returning the current (simulated) time; a
        #: SimEngine binds this to its own clock if still unset.
        self.clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._seq = itertools.count()
        # Flat stream in emission order: (phase, time, span). Phases follow
        # trace_event: B/E for sync spans, i for instants, b/e for async.
        self._events: list[tuple[str, float, Span]] = []
        #: causal flow links, in creation order
        self.links: list[FlowLink] = []

    # -- time ------------------------------------------------------------------------

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    # -- recording -------------------------------------------------------------------

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def span(self, name: str, /, **attrs: Any) -> Span:
        """Open a synchronous span; use as a context manager."""
        sp = Span(name, self.now(), next(self._seq), attrs, "span", self)
        self._attach(sp)
        self._stack.append(sp)
        self._events.append(("B", sp.start, sp))
        return sp

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ReproError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.end = self.now()
        self._events.append(("E", span.end, span))

    def instant(self, name: str, /, **attrs: Any) -> Span:
        """Record a point event under the current span."""
        sp = Span(name, self.now(), next(self._seq), attrs, "instant", self)
        sp.end = sp.start
        self._attach(sp)
        self._events.append(("i", sp.start, sp))
        return sp

    def begin_async(self, name: str, /, **attrs: Any) -> Span:
        """Open a span that will be finished from a later event callback.

        Async spans attach where they begin but do not join the stack, so
        work traced while they are open does not nest under them.
        """
        sp = Span(name, self.now(), next(self._seq), attrs, "async", self)
        self._attach(sp)
        self._events.append(("b", sp.start, sp))
        return sp

    def end_async(self, span: Span, **attrs: Any) -> None:
        if span.kind != "async":
            raise ReproError(f"span {span.name!r} is not an async span")
        if span.end is not None:
            raise ReproError(f"async span {span.name!r} already finished")
        span.attrs.update(attrs)
        span.end = self.now()
        self._events.append(("e", span.end, span))

    def link(self, source: Span, target: Span, kind: str = "flow") -> FlowLink:
        """Record a causal edge: ``source`` happened-before ``target``.

        ``kind`` names the causality (``data``, ``dep``, ``dispatch``,
        ``sched``, ``recovery``, ...). Links are the cross-tree edges of the
        span DAG; spans from either end may still be open when linked.
        """
        if source is target:
            raise ReproError(f"span {source.name!r} cannot link to itself")
        fl = FlowLink(next(self._seq), kind, source, target)
        self.links.append(fl)
        return fl

    def current(self) -> "Span | None":
        """The innermost open synchronous span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    # -- introspection ----------------------------------------------------------------

    def open_spans(self) -> int:
        """Depth of the synchronous span stack (0 when balanced)."""
        return len(self._stack)

    def all_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first."""
        todo = list(self.roots)
        while todo:
            sp = todo.pop()
            yield sp
            todo.extend(sp.children)

    def find(self, name: str) -> list[Span]:
        return [sp for sp in self.all_spans() if sp.name == name]

    def tree(self) -> list[dict[str, Any]]:
        return [sp.to_dict() for sp in self.roots]

    # -- Chrome trace_event export ------------------------------------------------------

    def chrome_events(self) -> list[dict[str, Any]]:
        """The trace as a list of ``trace_event`` dicts (ts/dur in µs).

        Synchronous spans become B/E duration events (nesting follows
        emission order, which keeps zero-sim-duration spans readable),
        instants become ``i`` events, and async workflow spans become
        ``b``/``e`` events keyed by the span's sequence number.

        Flow links follow the span stream as ``s``/``f`` event pairs keyed
        by the link id; both carry the source and target span sequence
        numbers in ``args``, which is how :mod:`repro.obs.critpath`
        re-attaches them to spans when reading a trace back.
        """
        out: list[dict[str, Any]] = []
        for ph, t, sp in self._events:
            ev: dict[str, Any] = {
                "name": sp.name,
                "ph": ph,
                "ts": t * 1e6,
                "pid": 0,
                "tid": 0,
            }
            if ph in ("b", "e"):
                ev["cat"] = "workflow"
                ev["id"] = sp.seq
            else:
                ev["cat"] = sp.name.split(".", 1)[0]
            if ph == "i":
                ev["s"] = "t"
            if ph != "B":  # args once per span, with the final attribute set
                ev["args"] = dict(sp.attrs, seq=sp.seq)
            out.append(ev)
        for fl in self.links:
            src_ts = (fl.source.end if fl.source.end is not None
                      else fl.source.start) * 1e6
            args = {"source": fl.source.seq, "target": fl.target.seq}
            common = {"name": fl.kind, "cat": "flow", "pid": 0, "tid": 0}
            out.append(dict(
                common, ph="s", id=fl.link_id, ts=src_ts, args=dict(args),
            ))
            out.append(dict(
                common, ph="f", bp="e", id=fl.link_id,
                ts=fl.target.start * 1e6, args=dict(args),
            ))
        return out

    def to_chrome(self) -> dict[str, Any]:
        return {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        """Write the trace as Chrome ``trace_event`` JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
            fh.write("\n")


class StreamingTracer:
    """Bounded-memory tracer: spans stream to a file as they happen.

    API-compatible with :class:`Tracer` for recording (``span`` /
    ``instant`` / ``begin_async`` / ``end_async`` / ``link`` / ``current``
    / ``open_spans``), but instead of buffering every event it writes each
    Chrome ``trace_event`` record the moment it is emitted and retains only
    the *open* synchronous span stack — memory is O(open spans), not
    O(events), which is what lets a million-event jaguar-scale run keep a
    trace on.

    The trade-offs relative to the buffered tracer, both deliberate:

    * no in-memory span tree — ``roots``/``all_spans``/``to_chrome`` do not
      exist; read the written file back instead;
    * flow links are emitted as their ``s``/``f`` event pair immediately,
      which may precede the ``E`` event of either endpoint in the stream.
      ``benchmarks/check_trace.py`` resolves flow references at end of
      file, so the emitted files stay valid.

    Call :meth:`close` when the run ends — it balances the JSON array and
    raises if synchronous spans are still open (a malformed trace should
    fail loudly, not parse accidentally).
    """

    enabled = True

    def __init__(
        self, path_or_file: Any, clock: "Callable[[], float] | None" = None
    ) -> None:
        self.clock = clock
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self._fh.write('{"traceEvents": [\n')
        self._first = True
        self._closed = False
        self._stack: list[Span] = []
        self._seq = itertools.count()
        self._open_async = 0
        #: events written so far (diagnostics; memory stays flat regardless)
        self.events_written = 0

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _write(self, ev: dict[str, Any]) -> None:
        if self._closed:
            raise ReproError("streaming tracer is closed")
        if not self._first:
            self._fh.write(",\n")
        self._first = False
        self._fh.write(json.dumps(ev, separators=(",", ":")))
        self.events_written += 1

    def _event(self, ph: str, t: float, sp: Span) -> dict[str, Any]:
        ev: dict[str, Any] = {
            "name": sp.name, "ph": ph, "ts": t * 1e6, "pid": 0, "tid": 0,
        }
        if ph in ("b", "e"):
            ev["cat"] = "workflow"
            ev["id"] = sp.seq
        else:
            ev["cat"] = sp.name.split(".", 1)[0]
        if ph == "i":
            ev["s"] = "t"
        if ph != "B":
            ev["args"] = dict(sp.attrs, seq=sp.seq)
        return ev

    # -- recording (Tracer-compatible surface) ----------------------------------

    def span(self, name: str, /, **attrs: Any) -> Span:
        sp = Span(name, self.now(), next(self._seq), attrs, "span", self)
        self._stack.append(sp)
        self._write(self._event("B", sp.start, sp))
        return sp

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ReproError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.end = self.now()
        self._write(self._event("E", span.end, span))

    def instant(self, name: str, /, **attrs: Any) -> Span:
        sp = Span(name, self.now(), next(self._seq), attrs, "instant", self)
        sp.end = sp.start
        self._write(self._event("i", sp.start, sp))
        return sp

    def begin_async(self, name: str, /, **attrs: Any) -> Span:
        sp = Span(name, self.now(), next(self._seq), attrs, "async", self)
        self._open_async += 1
        self._write(self._event("b", sp.start, sp))
        return sp

    def end_async(self, span: Span, **attrs: Any) -> None:
        if span.kind != "async":
            raise ReproError(f"span {span.name!r} is not an async span")
        if span.end is not None:
            raise ReproError(f"async span {span.name!r} already finished")
        span.attrs.update(attrs)
        span.end = self.now()
        self._open_async -= 1
        self._write(self._event("e", span.end, span))

    def link(self, source: Span, target: Span, kind: str = "flow") -> None:
        """Emit the causal edge immediately as an ``s``/``f`` event pair."""
        if source is target:
            raise ReproError(f"span {source.name!r} cannot link to itself")
        link_id = next(self._seq)
        src_ts = (source.end if source.end is not None else source.start) * 1e6
        args = {"source": source.seq, "target": target.seq}
        common = {"name": kind, "cat": "flow", "pid": 0, "tid": 0}
        self._write(dict(common, ph="s", id=link_id, ts=src_ts,
                         args=dict(args)))
        self._write(dict(common, ph="f", bp="e", id=link_id,
                         ts=target.start * 1e6, args=dict(args)))

    def current(self) -> "Span | None":
        return self._stack[-1] if self._stack else None

    def open_spans(self) -> int:
        return len(self._stack)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Balance the JSON document and release the file."""
        if self._closed:
            return
        if self._stack:
            raise ReproError(
                f"streaming tracer closed with open spans: "
                f"{[sp.name for sp in self._stack]}"
            )
        self._fh.write('\n], "displayTimeUnit": "ms"}\n')
        self._closed = True
        if self._owns:
            self._fh.close()


class _NullSpan(Span):
    """A single reusable span that absorbs every operation."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        return None


class NullTracer:
    """Disabled tracer: one shared instance, every operation is a no-op.

    Instrumented code keeps a reference to this by default and guards the
    expensive path with ``if tracer.enabled:`` — so tracing costs one
    attribute check when off.
    """

    enabled = False
    clock: "Callable[[], float] | None" = None

    _NULL_SPAN = _NullSpan("null", 0.0, -1, {}, "span")

    def span(self, name: str, /, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def instant(self, name: str, /, **attrs: Any) -> None:
        return None

    def begin_async(self, name: str, /, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def end_async(self, span: Any, **attrs: Any) -> None:
        return None

    def link(self, source: Any, target: Any, kind: str = "flow") -> None:
        return None

    def current(self) -> None:
        return None


#: the process-wide disabled tracer (default everywhere)
NULL_TRACER = NullTracer()
