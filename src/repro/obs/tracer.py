"""Hierarchical span tracing on the simulated clock.

A :class:`Tracer` records *spans* — named, attributed intervals of simulated
time — as both a structured in-memory tree and a flat event stream that
exports to Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` or
Perfetto). Three span flavours cover the framework's shapes of work:

* ``with tracer.span("dht.query", var=v):`` — synchronous work nested via a
  stack (transfers, RPCs, lookups, schedule computation);
* ``tracer.instant("fault.transfer_retry", ...)`` — point events (retries,
  crashes);
* ``tracer.begin_async(...)`` / ``tracer.end_async(...)`` — intervals that
  outlive the current call frame (workflow bundles and applications, which
  start at launch and finish at a later completion *event*).

Spans can additionally be connected by *flow links* —
``tracer.link(source, target, kind)`` — recording causality that the span
stack cannot express: a producer's put feeding a later consumer pull, a
bundle completion unblocking its children, an event dispatch firing the
event it scheduled, a failure detection triggering recovery. Links export
as Chrome ``s``/``f`` flow events and are the edges
:mod:`repro.obs.critpath` walks to reconstruct the run's causal DAG.

Timestamps come from ``tracer.clock`` — a zero-argument callable, normally
bound to ``SimEngine.now`` when the tracer is handed to an engine — so two
runs of the same scenario produce identical traces.

The default tracer everywhere is :data:`NULL_TRACER`: its ``enabled`` flag
is ``False`` and instrumented hot paths check that one attribute before
doing any tracing work, so the disabled overhead is a single branch.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Callable, Iterator

from repro.errors import ReproError

__all__ = ["FlowLink", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One traced interval: a name, attributes, children, and sim-times."""

    __slots__ = ("name", "start", "end", "seq", "attrs", "children", "kind", "_tracer")

    def __init__(
        self,
        name: str,
        start: float,
        seq: int,
        attrs: dict[str, Any],
        kind: str = "span",
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.seq = seq
        self.attrs = attrs
        self.children: list[Span] = []
        self.kind = kind  # "span" | "instant" | "async"
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Inclusive simulated duration (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. a cache-hit flag)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        """Nested plain-dict form of this span and its children."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    # -- context-manager protocol (synchronous spans) -------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._tracer is not None:
            self._tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, start={self.start}, end={self.end})"


class FlowLink:
    """A causal edge between two spans (``source`` happened-before ``target``)."""

    __slots__ = ("link_id", "kind", "source", "target")

    def __init__(self, link_id: int, kind: str, source: Span, target: Span) -> None:
        self.link_id = link_id
        self.kind = kind
        self.source = source
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowLink({self.kind!r}, "
                f"{self.source.name}#{self.source.seq} -> "
                f"{self.target.name}#{self.target.seq})")


class Tracer:
    """Collects spans into a tree and a Chrome-exportable event stream."""

    enabled = True

    def __init__(self, clock: "Callable[[], float] | None" = None) -> None:
        #: zero-arg callable returning the current (simulated) time; a
        #: SimEngine binds this to its own clock if still unset.
        self.clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._seq = itertools.count()
        # Flat stream in emission order: (phase, time, span). Phases follow
        # trace_event: B/E for sync spans, i for instants, b/e for async.
        self._events: list[tuple[str, float, Span]] = []
        #: causal flow links, in creation order
        self.links: list[FlowLink] = []

    # -- time ------------------------------------------------------------------------

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    # -- recording -------------------------------------------------------------------

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def span(self, name: str, /, **attrs: Any) -> Span:
        """Open a synchronous span; use as a context manager."""
        sp = Span(name, self.now(), next(self._seq), attrs, "span", self)
        self._attach(sp)
        self._stack.append(sp)
        self._events.append(("B", sp.start, sp))
        return sp

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ReproError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.end = self.now()
        self._events.append(("E", span.end, span))

    def instant(self, name: str, /, **attrs: Any) -> Span:
        """Record a point event under the current span."""
        sp = Span(name, self.now(), next(self._seq), attrs, "instant", self)
        sp.end = sp.start
        self._attach(sp)
        self._events.append(("i", sp.start, sp))
        return sp

    def begin_async(self, name: str, /, **attrs: Any) -> Span:
        """Open a span that will be finished from a later event callback.

        Async spans attach where they begin but do not join the stack, so
        work traced while they are open does not nest under them.
        """
        sp = Span(name, self.now(), next(self._seq), attrs, "async", self)
        self._attach(sp)
        self._events.append(("b", sp.start, sp))
        return sp

    def end_async(self, span: Span, **attrs: Any) -> None:
        if span.kind != "async":
            raise ReproError(f"span {span.name!r} is not an async span")
        if span.end is not None:
            raise ReproError(f"async span {span.name!r} already finished")
        span.attrs.update(attrs)
        span.end = self.now()
        self._events.append(("e", span.end, span))

    def link(self, source: Span, target: Span, kind: str = "flow") -> FlowLink:
        """Record a causal edge: ``source`` happened-before ``target``.

        ``kind`` names the causality (``data``, ``dep``, ``dispatch``,
        ``sched``, ``recovery``, ...). Links are the cross-tree edges of the
        span DAG; spans from either end may still be open when linked.
        """
        if source is target:
            raise ReproError(f"span {source.name!r} cannot link to itself")
        fl = FlowLink(next(self._seq), kind, source, target)
        self.links.append(fl)
        return fl

    def current(self) -> "Span | None":
        """The innermost open synchronous span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    # -- introspection ----------------------------------------------------------------

    def open_spans(self) -> int:
        """Depth of the synchronous span stack (0 when balanced)."""
        return len(self._stack)

    def all_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first."""
        todo = list(self.roots)
        while todo:
            sp = todo.pop()
            yield sp
            todo.extend(sp.children)

    def find(self, name: str) -> list[Span]:
        return [sp for sp in self.all_spans() if sp.name == name]

    def tree(self) -> list[dict[str, Any]]:
        return [sp.to_dict() for sp in self.roots]

    # -- Chrome trace_event export ------------------------------------------------------

    def chrome_events(self) -> list[dict[str, Any]]:
        """The trace as a list of ``trace_event`` dicts (ts/dur in µs).

        Synchronous spans become B/E duration events (nesting follows
        emission order, which keeps zero-sim-duration spans readable),
        instants become ``i`` events, and async workflow spans become
        ``b``/``e`` events keyed by the span's sequence number.

        Flow links follow the span stream as ``s``/``f`` event pairs keyed
        by the link id; both carry the source and target span sequence
        numbers in ``args``, which is how :mod:`repro.obs.critpath`
        re-attaches them to spans when reading a trace back.
        """
        out: list[dict[str, Any]] = []
        for ph, t, sp in self._events:
            ev: dict[str, Any] = {
                "name": sp.name,
                "ph": ph,
                "ts": t * 1e6,
                "pid": 0,
                "tid": 0,
            }
            if ph in ("b", "e"):
                ev["cat"] = "workflow"
                ev["id"] = sp.seq
            else:
                ev["cat"] = sp.name.split(".", 1)[0]
            if ph == "i":
                ev["s"] = "t"
            if ph != "B":  # args once per span, with the final attribute set
                ev["args"] = dict(sp.attrs, seq=sp.seq)
            out.append(ev)
        for fl in self.links:
            src_ts = (fl.source.end if fl.source.end is not None
                      else fl.source.start) * 1e6
            args = {"source": fl.source.seq, "target": fl.target.seq}
            common = {"name": fl.kind, "cat": "flow", "pid": 0, "tid": 0}
            out.append(dict(
                common, ph="s", id=fl.link_id, ts=src_ts, args=dict(args),
            ))
            out.append(dict(
                common, ph="f", bp="e", id=fl.link_id,
                ts=fl.target.start * 1e6, args=dict(args),
            ))
        return out

    def to_chrome(self) -> dict[str, Any]:
        return {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        """Write the trace as Chrome ``trace_event`` JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
            fh.write("\n")


class _NullSpan(Span):
    """A single reusable span that absorbs every operation."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        return None


class NullTracer:
    """Disabled tracer: one shared instance, every operation is a no-op.

    Instrumented code keeps a reference to this by default and guards the
    expensive path with ``if tracer.enabled:`` — so tracing costs one
    attribute check when off.
    """

    enabled = False
    clock: "Callable[[], float] | None" = None

    _NULL_SPAN = _NullSpan("null", 0.0, -1, {}, "span")

    def span(self, name: str, /, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def instant(self, name: str, /, **attrs: Any) -> None:
        return None

    def begin_async(self, name: str, /, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def end_async(self, span: Any, **attrs: Any) -> None:
        return None

    def link(self, source: Any, target: Any, kind: str = "flow") -> None:
        return None

    def current(self) -> None:
        return None


#: the process-wide disabled tracer (default everywhere)
NULL_TRACER = NullTracer()
