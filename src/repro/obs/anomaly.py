"""Regression detection: a run's profile vs a stored baseline.

:func:`compare` takes a :class:`~repro.obs.baseline.Baseline` and the
fresh metrics of one or more scenarios and yields a :class:`Verdict`: the
list of per-metric :class:`Deviation` records (value, band, severity) and
an overall pass/fail. A metric outside its tolerance band is a
**regression** when it moved in the harmful direction (slower, more
bytes, profile shift) and an **improvement** otherwise; only regressions
fail the verdict. Metrics present on one side only are reported as
``missing``/``new`` and do not fail — a new metric is not a regression,
and a retired one is the baseline's business to forget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.baseline import Baseline, flatten_metrics

__all__ = ["Deviation", "Verdict", "compare", "compare_profiles"]


@dataclass(frozen=True)
class Deviation:
    """One metric's position relative to its tolerance band."""

    scenario: str
    metric: str
    baseline: float
    candidate: float
    lo: float
    hi: float
    #: "ok" | "regression" | "improvement" | "missing" | "new"
    status: str

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float:
        """candidate / baseline (inf when the baseline is zero and moved)."""
        if self.baseline == 0.0:
            return 1.0 if self.candidate == 0.0 else float("inf")
        return self.candidate / self.baseline

    def describe(self) -> str:
        if self.status in ("missing", "new"):
            return f"{self.scenario}/{self.metric}: {self.status}"
        arrow = {"regression": "REGRESSION", "improvement": "improved",
                 "ok": "ok"}[self.status]
        return (
            f"{self.scenario}/{self.metric}: {self.baseline:.6g} -> "
            f"{self.candidate:.6g} ({arrow}; band [{self.lo:.6g}, "
            f"{self.hi:.6g}])"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "lo": self.lo,
            "hi": self.hi,
            "status": self.status,
        }


@dataclass
class Verdict:
    """The outcome of one baseline comparison."""

    deviations: list[Deviation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def regressions(self) -> list[Deviation]:
        return [d for d in self.deviations if d.status == "regression"]

    @property
    def improvements(self) -> list[Deviation]:
        return [d for d in self.deviations if d.status == "improvement"]

    def summary(self) -> str:
        n = len(self.deviations)
        if self.passed:
            extra = (
                f", {len(self.improvements)} improved"
                if self.improvements else ""
            )
            return f"PASS ({n} metrics checked{extra})"
        lines = [f"FAIL ({len(self.regressions)}/{n} metrics regressed)"]
        lines.extend("  " + d.describe() for d in self.regressions)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "checked": len(self.deviations),
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
        }


def _status(
    tol, base: float, cand: float, lo: float, hi: float
) -> str:
    # Escaping the band on a closed side is a regression. On the *open*
    # side of a one-sided band, slack mirrored from the closed side marks
    # where a move becomes a reportable improvement rather than noise.
    if cand > hi or cand < lo:
        # Two-sided bands treat any escape as a profile shift (harmful in
        # either direction); for one-sided bands only the closed side is
        # reachable here.
        return "regression"
    if tol.one_sided:
        slack = hi - base
        if cand < base - slack:
            return "improvement"
    elif tol.one_sided_low:
        slack = base - lo
        if cand > base + slack:
            return "improvement"
    return "ok"


def compare_profiles(
    baseline: Baseline,
    scenario: str,
    candidate: dict[str, Any],
) -> list[Deviation]:
    """Deviations of one scenario's fresh metrics vs the stored profile."""
    stored = baseline.profiles.get(scenario)
    flat = flatten_metrics(candidate)
    out: list[Deviation] = []
    if stored is None:
        for metric in sorted(flat):
            out.append(Deviation(
                scenario, metric, 0.0, flat[metric],
                float("-inf"), float("inf"), "new",
            ))
        return out
    for metric in sorted(set(stored) | set(flat)):
        if metric not in flat:
            out.append(Deviation(
                scenario, metric, stored[metric], 0.0,
                float("-inf"), float("inf"), "missing",
            ))
            continue
        if metric not in stored:
            out.append(Deviation(
                scenario, metric, 0.0, flat[metric],
                float("-inf"), float("inf"), "new",
            ))
            continue
        tol = baseline.tolerance_for(metric)
        base, cand = stored[metric], flat[metric]
        lo, hi = tol.band(base)
        out.append(Deviation(
            scenario, metric, base, cand, lo, hi,
            _status(tol, base, cand, lo, hi),
        ))
    return out


def compare(
    baseline: Baseline, candidates: dict[str, dict[str, Any]]
) -> Verdict:
    """Compare every scenario's fresh metrics against the baseline.

    ``candidates`` maps scenario name -> (possibly nested) metrics dict.
    Scenarios in the baseline but absent from ``candidates`` are ignored —
    a partial re-run checks only what it ran.
    """
    verdict = Verdict()
    for scenario in sorted(candidates):
        verdict.deviations.extend(
            compare_profiles(baseline, scenario, candidates[scenario])
        )
    return verdict
