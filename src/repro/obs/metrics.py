"""A zero-dependency metrics registry: counters, gauges, histograms.

Metrics are named instruments with declared label names; each distinct
label-value combination is a *cell*. Cells keep raw Python values (ints,
floats, enums) as label values for cheap hot-path updates; values are only
stringified when a snapshot is exported.

::

    registry = MetricsRegistry()
    lookups = registry.counter("dht.lookups")
    lookups.inc()
    hops = registry.histogram("dht.hops", buckets=(1, 2, 4, 8, 16))
    hops.observe(3)
    bytes_ = registry.counter("transfer.bytes", labelnames=("transport",))
    bytes_.inc(4096, transport="shm")
    registry.snapshot()          # plain dict, JSON-serializable
    registry.write_json(path)    # the --metrics-out format

The registry is the storage backend of
:class:`repro.transport.metrics.TransferMetrics`, so every byte the
transport accounts is also visible here.
"""

from __future__ import annotations

import enum
import json
from bisect import bisect_left
from typing import Any, Iterable, Sequence

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_registries"]

#: default histogram buckets: powers of four up to 16 MiB, covering the
#: full byte scale of one transfer (control messages through coupled
#: regions) as well as small counts (hops, retries)
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
    262144, 1048576, 4194304, 16777216,
)


def _label_key(labelnames: tuple[str, ...], labels: dict[str, Any]) -> tuple:
    if len(labels) != len(labelnames):
        raise ReproError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    try:
        return tuple(labels[n] for n in labelnames)
    except KeyError as exc:
        raise ReproError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        ) from exc


def _label_str(value: Any) -> str:
    if isinstance(value, enum.Enum):
        return str(value.value)
    return str(value)


class _Metric:
    """Shared plumbing: name, label names, cell storage."""

    kind = "metric"

    def __init__(self, name: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.labelnames = tuple(labelnames)
        #: label-value tuple -> cell (type depends on the instrument)
        self.cells: dict[tuple, Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple:
        if not self.labelnames and not labels:
            return ()
        return _label_key(self.labelnames, labels)

    def labels_of(self, key: tuple) -> dict[str, Any]:
        return dict(zip(self.labelnames, key))

    def _cell_name(self, key: tuple) -> str:
        if not key:
            return self.name
        inner = ",".join(
            f"{n}={_label_str(v)}" for n, v in zip(self.labelnames, key)
        )
        return f"{self.name}{{{inner}}}"


class Counter(_Metric):
    """A monotonically increasing sum per cell."""

    kind = "counter"

    def inc(self, value: float = 1, **labels: Any) -> None:
        if value < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self.cells[key] = self.cells.get(key, 0) + value

    def touch(self, **labels: Any) -> None:
        """Materialize a cell at zero without counting anything."""
        self.cells.setdefault(self._key(labels), 0)

    def value(self, **labels: Any) -> float:
        return self.cells.get(self._key(labels), 0)

    def total(self) -> float:
        return sum(self.cells.values())

    def snapshot_cells(self) -> dict[str, Any]:
        return {self._cell_name(k): v for k, v in self.cells.items()}


class Gauge(_Metric):
    """A point-in-time value per cell (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self.cells[self._key(labels)] = value

    def add(self, delta: float, **labels: Any) -> None:
        key = self._key(labels)
        self.cells[key] = self.cells.get(key, 0) + delta

    def value(self, **labels: Any) -> float:
        return self.cells.get(self._key(labels), 0)

    def snapshot_cells(self) -> dict[str, Any]:
        return {self._cell_name(k): v for k, v in self.cells.items()}


class Histogram(_Metric):
    """Fixed-bucket histogram per cell (cumulative-style buckets).

    A cell is ``[counts_per_bucket..., overflow, sum, count]``; bucket ``i``
    counts observations ``<= buckets[i]``, overflow counts the rest.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = [0] * (len(self.buckets) + 1) + [0.0, 0]
        cell[bisect_left(self.buckets, value)] += 1
        cell[-2] += value
        cell[-1] += 1

    def count(self, **labels: Any) -> int:
        cell = self.cells.get(self._key(labels))
        return 0 if cell is None else cell[-1]

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile of a cell's observations.

        Linear interpolation inside the bucket the quantile falls in,
        taking 0 as the lower edge of the first bucket (observations are
        non-negative counts/bytes here). Mass in the overflow bucket
        clamps to the last bound — the histogram cannot know how far
        beyond it the tail reaches. An empty cell estimates 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(
                f"quantile must be in [0, 1], got {q}"
            )
        cell = self.cells.get(self._key(labels))
        if cell is None or cell[-1] == 0:
            return 0.0
        target = q * cell[-1]
        cum = 0
        lo = 0.0
        for bound, n in zip(self.buckets, cell):
            if n:
                cum += n
                if cum >= target:
                    frac = 1.0 - (cum - target) / n
                    return lo + (bound - lo) * frac
            lo = bound
        return self.buckets[-1]

    def sum(self, **labels: Any) -> float:
        cell = self.cells.get(self._key(labels))
        return 0.0 if cell is None else cell[-2]

    def snapshot_cells(self) -> dict[str, Any]:
        out = {}
        for key, cell in self.cells.items():
            out[self._cell_name(key)] = {
                "buckets": list(self.buckets),
                "counts": list(cell[: len(self.buckets) + 1]),
                "sum": cell[-2],
                "count": cell[-1],
            }
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get(self, name: str, cls: type, labelnames: Sequence[str], factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        elif metric.labelnames != tuple(labelnames):
            raise ReproError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}"
            )
        return metric

    def counter(self, name: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get(
            name, Counter, labelnames, lambda: Counter(name, labelnames)
        )

    def gauge(self, name: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get(name, Gauge, labelnames, lambda: Gauge(name, labelnames))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get(
            name, Histogram, labelnames,
            lambda: Histogram(name, buckets, labelnames),
        )

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> _Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ReproError(f"no metric named {name!r}") from None

    # -- aggregation --------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's cells into this one (in place).

        Counters and histogram cells add; gauges take the other's value
        (last write wins, matching their point-in-time semantics).
        """
        for name, theirs in other._metrics.items():
            if theirs.kind == "histogram":
                mine = self.histogram(name, theirs.buckets, theirs.labelnames)
            elif theirs.kind == "gauge":
                mine = self.gauge(name, theirs.labelnames)
            else:
                mine = self.counter(name, theirs.labelnames)
            if mine.labelnames != theirs.labelnames:
                raise ReproError(
                    f"cannot merge {name!r}: label names differ "
                    f"({mine.labelnames} vs {theirs.labelnames})"
                )
            for key, cell in theirs.cells.items():
                if theirs.kind == "histogram":
                    if mine.buckets != theirs.buckets:
                        raise ReproError(
                            f"cannot merge {name!r}: bucket bounds differ"
                        )
                    ours = mine.cells.get(key)
                    if ours is None:
                        mine.cells[key] = list(cell)
                    else:
                        for i, v in enumerate(cell):
                            ours[i] += v
                elif theirs.kind == "gauge":
                    mine.cells[key] = cell
                else:
                    mine.cells[key] = mine.cells.get(key, 0) + cell
        return self

    # -- checkpoint state ---------------------------------------------------------

    def dump_state(self, encode=None) -> dict[str, Any]:
        """Lossless, restorable export (unlike :meth:`snapshot`).

        Cells keep raw label values (ints, enums) for identity-sensitive
        hot-path reads, so a restore cannot go through the stringified
        snapshot. ``encode`` maps one label value to a JSON-serializable
        form; the caller supplies the matching ``decode`` to
        :meth:`load_state` (the checkpoint layer knows the enum types, this
        module does not). Default: identity.
        """
        if encode is None:
            encode = lambda v: v  # noqa: E731
        state: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            rec: dict[str, Any] = {
                "kind": metric.kind,
                "labelnames": list(metric.labelnames),
                "cells": [
                    [[encode(v) for v in key],
                     list(cell) if isinstance(cell, list) else cell]
                    for key, cell in metric.cells.items()
                ],
            }
            if metric.kind == "histogram":
                rec["buckets"] = list(metric.buckets)
            state[name] = rec
        return state

    def load_state(self, state: dict[str, Any], decode=None) -> None:
        """Recreate instruments and cells from :meth:`dump_state` output."""
        if decode is None:
            decode = lambda v: v  # noqa: E731
        for name, rec in state.items():
            labelnames = tuple(rec["labelnames"])
            if rec["kind"] == "histogram":
                metric = self.histogram(name, rec["buckets"], labelnames)
            elif rec["kind"] == "gauge":
                metric = self.gauge(name, labelnames)
            else:
                metric = self.counter(name, labelnames)
            for key, cell in rec["cells"]:
                decoded = tuple(decode(v) for v in key)
                metric.cells[decoded] = (
                    list(cell) if isinstance(cell, list) else cell
                )

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict export: ``kind -> {cell name -> value}``."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[metric.kind + "s"].update(metric.snapshot_cells())
        return out

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=1, sort_keys=True)

    def write_json(self, path: str) -> None:
        """Write the snapshot (the ``--metrics-out`` format) to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def format_summary(self, max_rows: int | None = None) -> str:
        """Human-readable one-line-per-cell summary."""

        def num(v: Any) -> str:
            # Counts stay exact; only genuine fractions get the short form.
            return str(int(v)) if float(v).is_integer() else f"{v:g}"

        lines: list[str] = []
        snap = self.snapshot()
        for kind in ("counters", "gauges", "histograms"):
            for cell, value in snap[kind].items():
                if isinstance(value, dict):  # histogram cell
                    lines.append(
                        f"{cell}: count={value['count']} sum={num(value['sum'])}"
                    )
                else:
                    lines.append(f"{cell}: {num(value)}")
        if max_rows is not None and len(lines) > max_rows:
            lines = lines[:max_rows] + [f"... ({len(lines) - max_rows} more)"]
        return "\n".join(lines)


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Combine independent registries into a fresh one."""
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out
