"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch framework failures without
swallowing programming errors (``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "ReproError",
    "DomainError",
    "DecompositionError",
    "LinearizationError",
    "PartitionError",
    "HardwareError",
    "TransportError",
    "TransferDroppedError",
    "NetworkPartitionError",
    "SimulationError",
    "FaultError",
    "FaultPlanError",
    "AnalysisError",
    "SpaceError",
    "LookupError_",
    "ScheduleError",
    "ResilienceError",
    "DataLostError",
    "DataIntegrityError",
    "MemoryPressureError",
    "SpillError",
    "QuorumError",
    "StaleWriteError",
    "CheckpointError",
    "MappingError",
    "WorkflowError",
    "DagParseError",
    "RegistrationError",
    # RetryPolicy lives here too (the one dependency-free home shared by
    # faults, transport, and resilience) but is deliberately not in
    # __all__: this module's star-export surface is exceptions only.
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DomainError(ReproError):
    """Invalid box, interval, or domain geometry."""


class DecompositionError(DomainError):
    """Inconsistent data-decomposition descriptor (sizes, layout, blocks)."""


class LinearizationError(ReproError):
    """Space-filling-curve or linearizer misuse (order, bounds, resolution)."""


class PartitionError(ReproError):
    """Graph partitioning failure (infeasible capacities, malformed graph)."""


class HardwareError(ReproError):
    """Invalid machine, cluster, or topology specification."""


class TransportError(ReproError):
    """HybridDART transfer or RPC failure."""


class TransferDroppedError(TransportError):
    """A transfer was dropped and exhausted its retry budget."""


class NetworkPartitionError(TransportError):
    """A transfer or RPC crossed an active network cut.

    Named ``NetworkPartitionError`` (not ``PartitionError``, which this
    package already uses for graph-partitioning failures). Deliberately NOT
    a :class:`DataLostError`: the data still exists on the far side of the
    cut, so recovery should wait out the partition under a deadline instead
    of re-enacting the producing bundle."""


class SimulationError(ReproError):
    """Discrete-event or fluid-flow simulation misuse."""


class FaultError(ReproError):
    """Fault-injection runtime misuse (arming, listeners, retries)."""


class FaultPlanError(FaultError):
    """Malformed fault plan (bad probabilities, times, or JSON)."""


class AnalysisError(ReproError):
    """Invalid input to reporting/visualization helpers."""


class SpaceError(ReproError):
    """CoDS shared-space operation failure (bad put/get, version conflicts)."""


class LookupError_(SpaceError):
    """Data lookup failed to resolve a requested region."""


class ScheduleError(SpaceError):
    """Communication schedule could not be computed or validated."""


class ResilienceError(ReproError):
    """Resilience subsystem misuse (replication, detection, checkpointing)."""


class DataLostError(SpaceError):
    """Every replica of a requested object is gone (unrecoverable read)."""


class DataIntegrityError(DataLostError):
    """Every reachable copy of an object failed checksum verification.

    Subclasses :class:`DataLostError` so the workflow's data-loss recovery
    ladder (re-enact the producing bundle) applies unchanged."""


class MemoryPressureError(SpaceError):
    """A put could not be admitted: the target store is over its high
    watermark and the reclaim ladder (GC, replica eviction, spill) could
    not make enough space.

    Like :class:`QuorumError` this is NOT a data-loss error: the producer
    still holds the data and the put is simply *deferred* — the workflow
    engine backs the bundle off on the sim clock (a ``mem.wait`` stall)
    and retries once consumers free space, escalating through the
    data-loss rung only after its retry budget runs out."""


class SpillError(DataLostError):
    """A spilled object's deep-memory copy is gone (unrecoverable read-back).

    Raised when restore-on-demand finds the spill tier no longer holds a
    primary that was spilled out of its store. Subclasses
    :class:`DataLostError` so the workflow's data-loss recovery ladder
    (re-enact the producing bundle) applies unchanged."""


class QuorumError(SpaceError):
    """A read or write could not reach its configured replica quorum.

    Like :class:`NetworkPartitionError` this is NOT a data-loss error: the
    missing acknowledgements sit on unreachable-but-alive nodes, so the
    operation is retried after a partition wait rather than recovered by
    re-enactment."""


class StaleWriteError(SpaceError):
    """A write carried a generation older than the object's fence.

    Raised when a healed minority tries to commit work that was already
    re-dispatched on the majority side under a higher generation number —
    the stale commit is rejected, never stored."""


class CheckpointError(ResilienceError):
    """Checkpoint capture, serialization, or restore failure."""


class MappingError(ReproError):
    """Task mapping failure (capacity exceeded, unmapped tasks)."""


class WorkflowError(ReproError):
    """Workflow DAG construction or enactment failure."""


class DagParseError(WorkflowError):
    """Malformed workflow description file (Listing-1 format)."""


class RegistrationError(WorkflowError):
    """Execution-client registration/unregistration failure."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """One policy surface for every retry/timeout/backoff knob.

    The transport's transfer retries, the failure detector's heartbeat
    deadline, and the partition wait-out all parameterize the same shape:
    up to ``max_retries`` attempts, the first retry waiting ``timeout``
    seconds and each further retry multiplying the wait by ``backoff``,
    with an optional overall ``deadline`` after which the caller escalates.
    Defaults are byte-identical to the historical :class:`FaultPlan` knobs
    (``max_retries=3, retry_timeout=1e-4, retry_backoff=2.0``).
    """

    max_retries: int = 3
    timeout: float = 1e-4
    backoff: float = 2.0
    deadline: "float | None" = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.timeout < 0:
            raise ReproError(
                f"timeout must be non-negative, got {self.timeout}"
            )
        if self.backoff < 1.0:
            raise ReproError(f"backoff must be >= 1, got {self.backoff}")
        if self.deadline is not None and self.deadline <= 0:
            raise ReproError(
                f"deadline must be positive, got {self.deadline}"
            )

    def delay(self, attempt: int) -> float:
        """Exponential-backoff wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ReproError(f"retry attempt must be >= 1, got {attempt}")
        return self.timeout * self.backoff ** (attempt - 1)

    def exhausted(self, elapsed: float) -> bool:
        """True once ``elapsed`` seconds exceed the policy deadline."""
        return self.deadline is not None and elapsed >= self.deadline
