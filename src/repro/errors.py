"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch framework failures without
swallowing programming errors (``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DomainError",
    "DecompositionError",
    "LinearizationError",
    "PartitionError",
    "HardwareError",
    "TransportError",
    "TransferDroppedError",
    "SimulationError",
    "FaultError",
    "FaultPlanError",
    "AnalysisError",
    "SpaceError",
    "LookupError_",
    "ScheduleError",
    "ResilienceError",
    "DataLostError",
    "DataIntegrityError",
    "CheckpointError",
    "MappingError",
    "WorkflowError",
    "DagParseError",
    "RegistrationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DomainError(ReproError):
    """Invalid box, interval, or domain geometry."""


class DecompositionError(DomainError):
    """Inconsistent data-decomposition descriptor (sizes, layout, blocks)."""


class LinearizationError(ReproError):
    """Space-filling-curve or linearizer misuse (order, bounds, resolution)."""


class PartitionError(ReproError):
    """Graph partitioning failure (infeasible capacities, malformed graph)."""


class HardwareError(ReproError):
    """Invalid machine, cluster, or topology specification."""


class TransportError(ReproError):
    """HybridDART transfer or RPC failure."""


class TransferDroppedError(TransportError):
    """A transfer was dropped and exhausted its retry budget."""


class SimulationError(ReproError):
    """Discrete-event or fluid-flow simulation misuse."""


class FaultError(ReproError):
    """Fault-injection runtime misuse (arming, listeners, retries)."""


class FaultPlanError(FaultError):
    """Malformed fault plan (bad probabilities, times, or JSON)."""


class AnalysisError(ReproError):
    """Invalid input to reporting/visualization helpers."""


class SpaceError(ReproError):
    """CoDS shared-space operation failure (bad put/get, version conflicts)."""


class LookupError_(SpaceError):
    """Data lookup failed to resolve a requested region."""


class ScheduleError(SpaceError):
    """Communication schedule could not be computed or validated."""


class ResilienceError(ReproError):
    """Resilience subsystem misuse (replication, detection, checkpointing)."""


class DataLostError(SpaceError):
    """Every replica of a requested object is gone (unrecoverable read)."""


class DataIntegrityError(DataLostError):
    """Every reachable copy of an object failed checksum verification.

    Subclasses :class:`DataLostError` so the workflow's data-loss recovery
    ladder (re-enact the producing bundle) applies unchanged."""


class CheckpointError(ResilienceError):
    """Checkpoint capture, serialization, or restore failure."""


class MappingError(ReproError):
    """Task mapping failure (capacity exceeded, unmapped tasks)."""


class WorkflowError(ReproError):
    """Workflow DAG construction or enactment failure."""


class DagParseError(WorkflowError):
    """Malformed workflow description file (Listing-1 format)."""


class RegistrationError(WorkflowError):
    """Execution-client registration/unregistration failure."""
