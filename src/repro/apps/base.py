"""Synthetic coupled applications.

These play the role of the paper's statically linked MPI subroutines: each
is a routine the workflow engine invokes at launch with an
:class:`~repro.workflow.engine.AppContext`. Producers publish their share of
the coupled variable into CoDS (sequential coupling) or expose it for direct
transfer (concurrent coupling); consumers pull their requested region;
either side can additionally run stencil iterations to generate
intra-application traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.stencil import run_stencil_exchange
from repro.cods.space import CoDS
from repro.core.task import AppSpec
from repro.domain.box import Box
from repro.errors import WorkflowError
from repro.workflow.engine import AppContext

__all__ = ["SyntheticApp", "CouplingMode"]


@dataclass
class SyntheticApp:
    """Configuration shared by producer/consumer synthetic apps."""

    spec: AppSpec
    space: CoDS
    #: stencil iterations run per launch (0 disables intra-app traffic)
    stencil_iterations: int = 0
    ghost_width: int = 1
    #: simulated compute duration returned to the workflow engine
    compute_seconds: float = 0.0
    #: region of the domain that is coupled (None = whole domain)
    coupled_region: Box | None = None

    def __post_init__(self) -> None:
        if self.stencil_iterations < 0:
            raise WorkflowError("stencil_iterations must be non-negative")
        if self.compute_seconds < 0:
            raise WorkflowError("compute_seconds must be non-negative")

    def _run_stencil(self, ctx: AppContext) -> None:
        if self.stencil_iterations > 0:
            run_stencil_exchange(
                self.spec,
                ctx.mapping,
                self.space.dart,
                ghost_width=self.ghost_width,
                iterations=self.stencil_iterations,
            )

    # Subclasses override; the base app only computes + exchanges halos.
    def __call__(self, ctx: AppContext) -> float:
        if ctx.app.app_id != self.spec.app_id:
            raise WorkflowError(
                f"routine of app {self.spec.app_id} invoked for app "
                f"{ctx.app.app_id}"
            )
        self.body(ctx)
        self._run_stencil(ctx)
        return self.compute_seconds

    def body(self, ctx: AppContext) -> None:
        """The coupling action; overridden by producer/consumer apps."""


class CouplingMode:
    """String constants for the two coupling styles."""

    SEQUENTIAL = "seq"
    CONCURRENT = "cont"
