"""Online-analysis application: pull coupled data, then reduce collectively.

The paper's first motivating scenario runs "parallel data analysis and/or
transformation operations (e.g., redistribution, interpolation, reduction)"
against streaming simulation output. :class:`AnalyticsApp` models exactly
that pipeline stage: each task pulls its region of the coupled variable
(concurrent or sequential mode, like any consumer) and the group then
executes MPI-style collective phases — a global ``allreduce`` of the derived
statistics and an optional ``allgather`` of per-task summaries — through the
simulated MPI layer, so the analysis' own communication also lands in the
transfer metrics with correct shm/network attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.consumer import ConsumerApp
from repro.errors import WorkflowError
from repro.sim.mpi import SimComm
from repro.workflow.engine import AppContext

__all__ = ["AnalyticsApp"]


@dataclass
class AnalyticsApp(ConsumerApp):
    """A consumer that post-processes with collective communication.

    ``reduce_bytes`` is the payload of the global reduction (e.g. a vector
    of statistics); ``gather_bytes_per_task`` optionally allgathers a
    per-task summary (e.g. local histograms). Both default to modest sizes
    typical of in-situ analytics.
    """

    reduce_bytes: int = 4096
    gather_bytes_per_task: int = 0
    collective_rounds: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.reduce_bytes < 0 or self.gather_bytes_per_task < 0:
            raise WorkflowError("collective payload sizes must be non-negative")
        if self.collective_rounds < 0:
            raise WorkflowError("collective_rounds must be non-negative")

    def body(self, ctx: AppContext) -> None:
        # Phase 1: ingest the coupled data (inherited consumer behaviour).
        super().body(ctx)
        # Phase 2: collective analysis over the app's communicator.
        if self.collective_rounds == 0:
            return
        comm = SimComm(ctx.group, self.space.dart, app_id=self.spec.app_id)
        for _ in range(self.collective_rounds):
            comm.allreduce(self.reduce_bytes)
            if self.gather_bytes_per_task:
                comm.allgather(self.gather_bytes_per_task)
