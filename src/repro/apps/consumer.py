"""Data-consumer synthetic application."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import CouplingMode, SyntheticApp
from repro.cods.schedule import CommSchedule
from repro.errors import WorkflowError
from repro.workflow.engine import AppContext

__all__ = ["ConsumerApp"]


@dataclass
class ConsumerApp(SyntheticApp):
    """Pulls each task's requested region of the coupled variable.

    ``mode == "seq"`` retrieves from the space (``cods_get_seq``);
    ``mode == "cont"`` pulls directly from the concurrent producer
    (``cods_get_cont``). The schedules of the last launch are kept for
    inspection by the experiment drivers.
    """

    mode: str = CouplingMode.SEQUENTIAL
    version: int | None = None
    schedules: dict[int, CommSchedule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in (CouplingMode.SEQUENTIAL, CouplingMode.CONCURRENT):
            raise WorkflowError(f"unknown coupling mode {self.mode!r}")

    def body(self, ctx: AppContext) -> None:
        spec = self.spec
        self.schedules.clear()
        for task in spec.tasks(self.coupled_region):
            if task.requested_cells == 0:
                continue
            core = ctx.group.core(task.rank)
            if self.mode == CouplingMode.SEQUENTIAL:
                sched, _ = self.space.get_seq(
                    core, spec.var, task.requested_region,
                    version=self.version, app_id=spec.app_id,
                )
            else:
                sched, _ = self.space.get_cont(
                    core, spec.var, task.requested_region, app_id=spec.app_id
                )
            self.schedules[task.rank] = sched
