"""Data-producer synthetic application."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import CouplingMode, SyntheticApp
from repro.errors import WorkflowError
from repro.workflow.engine import AppContext

__all__ = ["ProducerApp"]


@dataclass
class ProducerApp(SyntheticApp):
    """Publishes each task's share of the coupled variable.

    ``mode == "seq"`` stores into the CoDS space (``cods_put_seq``);
    ``mode == "cont"`` exposes the regions for direct pulls
    (``cods_put_cont``).
    """

    mode: str = CouplingMode.SEQUENTIAL
    version: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in (CouplingMode.SEQUENTIAL, CouplingMode.CONCURRENT):
            raise WorkflowError(f"unknown coupling mode {self.mode!r}")

    def body(self, ctx: AppContext) -> None:
        spec = self.spec
        decomp = spec.decomposition
        for rank in range(spec.ntasks):
            region = decomp.task_intervals(rank)
            if all(s for s in region):
                core = ctx.group.core(rank)
                if self.mode == CouplingMode.SEQUENTIAL:
                    self.space.put_seq(
                        core, spec.var, region,
                        element_size=spec.element_size, version=self.version,
                        app_id=spec.app_id,
                        generation=ctx.generation,
                    )
                else:
                    self.space.put_cont(
                        core, spec.var, region, element_size=spec.element_size
                    )
