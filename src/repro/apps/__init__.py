"""Synthetic workloads: producer/consumer apps, stencil exchange, scenarios."""

from repro.apps.analytics import AnalyticsApp
from repro.apps.base import CouplingMode, SyntheticApp
from repro.apps.consumer import ConsumerApp
from repro.apps.heat import HeatMonitor, HeatSolver
from repro.apps.iterative import IterationStats, IterativeCoupling
from repro.apps.mapreduce import MapReduceJob, MapReduceResult
from repro.apps.producer import ProducerApp
from repro.apps.scenarios import (
    COUPLED_VAR,
    CoupledScenario,
    concurrent_scenario,
    full_scale_enabled,
    interface_scenario,
    layout_for,
    paper_concurrent,
    paper_sequential,
    sequential_scenario,
    small_concurrent,
    small_sequential,
)
from repro.apps.stencil import HaloExchange, run_stencil_exchange, stencil_pairs

__all__ = [
    "SyntheticApp",
    "CouplingMode",
    "ProducerApp",
    "ConsumerApp",
    "AnalyticsApp",
    "HeatSolver",
    "HeatMonitor",
    "IterativeCoupling",
    "IterationStats",
    "MapReduceJob",
    "MapReduceResult",
    "HaloExchange",
    "stencil_pairs",
    "run_stencil_exchange",
    "COUPLED_VAR",
    "CoupledScenario",
    "layout_for",
    "concurrent_scenario",
    "interface_scenario",
    "sequential_scenario",
    "paper_concurrent",
    "paper_sequential",
    "small_concurrent",
    "small_sequential",
    "full_scale_enabled",
]
