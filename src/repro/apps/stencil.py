"""Near-neighbour stencil exchange — the intra-application traffic model.

The paper's second experiment "used 2D or 3D stencil-like near-neighbor data
exchanges to represent the cost of intra-application communication, which is
common for the targeted class of data parallel scientific applications"
(§V-B). Each task exchanges ghost layers with its face neighbours in the
process grid; the volume of one face is the task's owned cells divided by
its extent along the exchanged dimension, times the ghost width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping.base import MappingResult
from repro.core.task import AppSpec
from repro.transport.hybriddart import HybridDART
from repro.transport.message import TransferKind, TransferRecord

__all__ = ["HaloExchange", "stencil_pairs", "run_stencil_exchange"]


@dataclass(frozen=True)
class HaloExchange:
    """One directed ghost-layer transfer between neighbouring ranks."""

    src_rank: int
    dst_rank: int
    nbytes: int


def stencil_pairs(
    app: AppSpec, ghost_width: int = 1, corners: bool = False
) -> list[HaloExchange]:
    """All directed halo exchanges of one iteration of ``app``.

    With ``corners=False`` (default, the paper's 2-D/3-D near-neighbour
    pattern) neighbours are the ±1 face neighbours in the process grid
    (non-periodic, matching typical domain codes). With ``corners=True`` the
    full Moore neighbourhood exchanges (9-point/27-point stencils): each
    neighbour offset moves the ghost-region volume
    ``prod(ghost if offset[d] != 0 else shape[d])``.

    Empty tasks (more processes than cells in a dimension) exchange nothing.
    """
    import itertools

    decomp = app.decomposition
    exchanges: list[HaloExchange] = []
    if corners:
        offsets = [
            off for off in itertools.product((-1, 0, 1), repeat=decomp.ndim)
            if any(off)
        ]
    else:
        offsets = []
        for d in range(decomp.ndim):
            for step in (-1, 1):
                off = [0] * decomp.ndim
                off[d] = step
                offsets.append(tuple(off))

    for rank in range(decomp.nprocs):
        coords = decomp.rank_to_coords(rank)
        sets = decomp.task_intervals(rank)
        shape = [s.measure for s in sets]
        owned = 1
        for m in shape:
            owned *= m
        if owned == 0:
            continue
        for off in offsets:
            nbr = [c + o for c, o in zip(coords, off)]
            if any(not 0 <= n < p for n, p in zip(nbr, decomp.layout)):
                continue
            nbr_rank = decomp.coords_to_rank(nbr)
            if decomp.task_volume(nbr_rank) == 0:
                continue
            cells = 1
            for d, o in enumerate(off):
                cells *= min(ghost_width, shape[d]) if o else shape[d]
            if cells == 0:
                continue
            exchanges.append(
                HaloExchange(
                    src_rank=rank,
                    dst_rank=nbr_rank,
                    nbytes=cells * app.element_size,
                )
            )
    return exchanges


def run_stencil_exchange(
    app: AppSpec,
    mapping: MappingResult,
    dart: HybridDART,
    ghost_width: int = 1,
    iterations: int = 1,
    corners: bool = False,
) -> list[TransferRecord]:
    """Issue the halo transfers of ``iterations`` stencil steps through DART.

    The transport (shm vs network) of each exchange is decided by where the
    mapping placed the two ranks — this is what Figs 12–13 measure.
    """
    exchanges = stencil_pairs(app, ghost_width, corners=corners)
    records: list[TransferRecord] = []
    for _ in range(iterations):
        for ex in exchanges:
            records.append(
                dart.transfer(
                    src_core=mapping.core_of(app.app_id, ex.src_rank),
                    dst_core=mapping.core_of(app.app_id, ex.dst_rank),
                    nbytes=ex.nbytes,
                    kind=TransferKind.INTRA_APP,
                    app_id=app.app_id,
                    var=app.var,
                )
            )
    return records
