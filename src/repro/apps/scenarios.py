"""The paper's two evaluation workloads, parameterized (paper §V).

* **Concurrent coupling** ("online data processing"): CAP1 and CAP2 run
  concurrently and share a 3-D domain; at paper scale CAP1/CAP2 use 512/64
  cores, each CAP1 task owns a 128^3 region, and the full domain (8 GB at
  8-byte elements) is redistributed from CAP1 to CAP2.
* **Sequential coupling** ("climate modeling"): SAP1 produces into CoDS,
  then SAP2 and SAP3 launch on the *same* node set and pull; paper scale is
  512 -> (128 + 384) cores, 16 GB redistributed in total.

Benches default to scaled-down instances with identical shape (the
``small_*`` builders); set ``REPRO_FULL_SCALE=1`` to run paper scales.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.task import AppSpec
from repro.domain.box import Box
from repro.domain.descriptor import DecompositionDescriptor
from repro.errors import MappingError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import MachineSpec, jaguar_xt5
from repro.hardware.torus import balanced_dims

__all__ = [
    "CoupledScenario",
    "interface_scenario",
    "layout_for",
    "concurrent_scenario",
    "sequential_scenario",
    "paper_concurrent",
    "paper_sequential",
    "small_concurrent",
    "small_sequential",
    "full_scale_enabled",
]

#: the shared coupled variable name used by the scenario apps
COUPLED_VAR = "coupled"


def full_scale_enabled() -> bool:
    """True when the benches should run paper-scale workloads."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0")


def layout_for(ntasks: int) -> tuple[int, ...]:
    """Near-cubic 3-D process layout for a task count (e.g. 512 -> 8x8x8)."""
    return balanced_dims(ntasks, 3)


@dataclass
class CoupledScenario:
    """A fully specified coupled-workflow instance."""

    name: str
    mode: str                      # "cont" (concurrent) or "seq" (sequential)
    cluster: Cluster
    domain: tuple[int, ...]
    producer: AppSpec
    consumers: list[AppSpec] = field(default_factory=list)
    #: region over which the apps couple; None couples the full domain
    #: (Fig 1: the interface region between component models)
    coupled_region: "Box | None" = None

    @property
    def apps(self) -> list[AppSpec]:
        return [self.producer, *self.consumers]

    @property
    def total_tasks(self) -> int:
        return sum(a.ntasks for a in self.apps)

    @property
    def coupled_bytes(self) -> int:
        """Bytes redistributed per consumer (the coupled region's volume)."""
        if self.coupled_region is not None:
            return self.coupled_region.volume * self.producer.element_size
        cells = 1
        for s in self.domain:
            cells *= s
        return cells * self.producer.element_size

    def describe(self) -> str:
        lines = [
            f"scenario {self.name} ({'concurrent' if self.mode == 'cont' else 'sequential'})",
            f"  domain {self.domain}, element {self.producer.element_size} B",
            f"  cluster: {self.cluster.num_nodes} nodes x "
            f"{self.cluster.cores_per_node} cores",
        ]
        for app in self.apps:
            lines.append(
                f"  {app.name}: {app.ntasks} tasks, layout "
                f"{app.descriptor.process_layout}, "
                f"dist {app.descriptor.dists[0].value}"
            )
        return "\n".join(lines)


def _make_app(
    app_id: int,
    name: str,
    domain: tuple[int, ...],
    ntasks: int,
    dist: str,
    block: int,
    element_size: int,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        name=name,
        descriptor=DecompositionDescriptor.uniform(
            domain, layout_for(ntasks), dist, block
        ),
        element_size=element_size,
        var=COUPLED_VAR,
    )


def concurrent_scenario(
    producer_tasks: int = 512,
    consumer_tasks: int = 64,
    task_side: int = 128,
    producer_dist: str = "blocked",
    consumer_dist: str = "blocked",
    dist_block: int = 4,
    element_size: int = 8,
    machine: MachineSpec | None = None,
    name: str = "online-data-processing",
) -> CoupledScenario:
    """Build a CAP1/CAP2-style concurrent coupling scenario.

    The domain is sized so each producer task owns a ``task_side^3`` region
    under a blocked layout; non-blocked distributions reuse the same domain.
    ``dist_block`` is the block-cyclic block size when a dist needs one.
    """
    machine = machine if machine is not None else jaguar_xt5()
    playout = layout_for(producer_tasks)
    domain = tuple(p * task_side for p in playout)
    cluster = Cluster.for_cores(producer_tasks + consumer_tasks, machine)
    producer = _make_app(
        1, "CAP1", domain, producer_tasks, producer_dist, dist_block, element_size
    )
    consumer = _make_app(
        2, "CAP2", domain, consumer_tasks, consumer_dist, dist_block, element_size
    )
    return CoupledScenario(
        name=name, mode="cont", cluster=cluster, domain=domain,
        producer=producer, consumers=[consumer],
    )


def sequential_scenario(
    producer_tasks: int = 512,
    consumer_tasks: tuple[int, int] = (128, 384),
    task_side: int = 128,
    producer_dist: str = "blocked",
    consumer_dist: str = "blocked",
    dist_block: int = 4,
    element_size: int = 8,
    machine: MachineSpec | None = None,
    name: str = "climate-modeling",
) -> CoupledScenario:
    """Build a SAP1 -> (SAP2, SAP3)-style sequential coupling scenario.

    The consumers reuse the producer's node allocation, so their combined
    task count must not exceed the producer's.
    """
    if sum(consumer_tasks) > producer_tasks:
        raise MappingError(
            f"consumers need {sum(consumer_tasks)} cores, producer freed "
            f"only {producer_tasks}"
        )
    machine = machine if machine is not None else jaguar_xt5()
    playout = layout_for(producer_tasks)
    domain = tuple(p * task_side for p in playout)
    cluster = Cluster.for_cores(producer_tasks, machine)
    producer = _make_app(
        1, "SAP1", domain, producer_tasks, producer_dist, dist_block, element_size
    )
    consumers = [
        _make_app(
            2 + i, f"SAP{2 + i}", domain, n, consumer_dist, dist_block, element_size
        )
        for i, n in enumerate(consumer_tasks)
    ]
    return CoupledScenario(
        name=name, mode="seq", cluster=cluster, domain=domain,
        producer=producer, consumers=consumers,
    )


# -- paper-scale and bench-scale presets ---------------------------------------------


def paper_concurrent(**overrides) -> CoupledScenario:
    """CAP1/CAP2 at the paper's 512/64-core scale (8 GB coupled)."""
    return concurrent_scenario(**overrides)


def paper_sequential(**overrides) -> CoupledScenario:
    """SAP1 -> SAP2+SAP3 at the paper's 512/(128+384)-core scale (16 GB)."""
    return sequential_scenario(**overrides)


def small_concurrent(**overrides) -> CoupledScenario:
    """Shape-faithful laptop-scale concurrent instance: 64/8 tasks."""
    params = dict(producer_tasks=64, consumer_tasks=8, task_side=32)
    params.update(overrides)
    return concurrent_scenario(**params)


def small_sequential(**overrides) -> CoupledScenario:
    """Shape-faithful laptop-scale sequential instance: 64 -> (16 + 48)."""
    params = dict(producer_tasks=64, consumer_tasks=(16, 48), task_side=32)
    params.update(overrides)
    return sequential_scenario(**params)


def interface_scenario(
    producer_tasks: int = 64,
    consumer_tasks: int = 16,
    task_side: int = 32,
    interface_depth: int = 4,
    element_size: int = 8,
    machine: MachineSpec | None = None,
    name: str = "interface-coupling",
) -> CoupledScenario:
    """Two models coupled over a boundary slab, not the whole domain.

    Models the paper's Fig 1 climate case: "the coupled data region ... is
    the interface region between the component models". The interface is the
    last ``interface_depth`` planes of dimension 0; only producer tasks
    touching it exchange data with the consumer.
    """
    machine = machine if machine is not None else jaguar_xt5()
    playout = layout_for(producer_tasks)
    domain = tuple(p * task_side for p in playout)
    if not 0 < interface_depth <= domain[0]:
        raise MappingError(
            f"interface depth {interface_depth} outside domain extent {domain[0]}"
        )
    interface = Box(
        lo=(domain[0] - interface_depth,) + (0,) * (len(domain) - 1),
        hi=domain,
    )
    cluster = Cluster.for_cores(producer_tasks + consumer_tasks, machine)
    producer = _make_app(1, "MODEL1", domain, producer_tasks, "blocked", 1, element_size)
    consumer = _make_app(2, "MODEL2", domain, consumer_tasks, "blocked", 1, element_size)
    return CoupledScenario(
        name=name, mode="cont", cluster=cluster, domain=domain,
        producer=producer, consumers=[consumer], coupled_region=interface,
    )
