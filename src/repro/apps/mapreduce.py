"""MapReduce over the shared space — the paper's §VII future work.

"We will also explore supporting other programming models such as
Partitioned Global Address Space (PGAS) and MapReduce." This module sketches
that direction concretely: a MapReduce job whose *map* tasks read their
input in-situ from CoDS (placed next to the data by the client-side
mapper), whose *shuffle* moves key partitions between mapped cores through
HybridDART, and whose *reduce* tasks aggregate — with every phase's bytes
attributed shm/network like the rest of the framework.

The computation itself is real (the map and reduce callables run on actual
fetched numpy blocks), so word-count-style jobs over simulation output are
expressible end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

import numpy as np

from repro.cods.space import CoDS
from repro.core.mapping.base import MappingResult
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.task import AppSpec
from repro.domain.descriptor import DecompositionDescriptor
from repro.errors import WorkflowError
from repro.hardware.cluster import Cluster
from repro.transport.message import TransferKind

__all__ = ["MapReduceJob", "MapReduceResult"]

#: map function: (task's numpy block) -> list of (key, value)
MapFn = Callable[[np.ndarray], list[tuple[Hashable, Any]]]
#: reduce function: (key, list of values) -> final value
ReduceFn = Callable[[Hashable, list[Any]], Any]


@dataclass
class MapReduceResult:
    """Job outcome plus the traffic it generated."""

    output: dict[Hashable, Any]
    map_mapping: MappingResult
    shuffle_bytes: int
    shuffle_network_bytes: int
    input_network_bytes: int


@dataclass
class MapReduceJob:
    """One MapReduce job over a CoDS variable.

    ``num_mappers`` map tasks each fetch one region of ``var`` (assembled
    payloads); intermediate pairs shuffle to ``num_reducers`` reduce tasks
    by ``hash(key) % num_reducers``; reducers fold values with ``reduce_fn``.
    ``value_bytes`` sizes each shuffled (key, value) pair for the transport
    accounting.
    """

    space: CoDS
    var: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    num_mappers: int = 8
    num_reducers: int = 2
    value_bytes: int = 16
    app_id: int = 90
    data_centric: bool = True
    _domain: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_mappers <= 0 or self.num_reducers <= 0:
            raise WorkflowError("mapper/reducer counts must be positive")
        if self.value_bytes <= 0:
            raise WorkflowError("value_bytes must be positive")
        self._domain = self.space.linearizer.extents

    def _mapper_spec(self) -> AppSpec:
        from repro.hardware.torus import balanced_dims

        layout = balanced_dims(self.num_mappers, len(self._domain))
        return AppSpec(
            app_id=self.app_id, name="mr-map",
            descriptor=DecompositionDescriptor.uniform(self._domain, layout),
            var=self.var,
        )

    def run(self, cluster: Cluster) -> MapReduceResult:
        """Execute the job on ``cluster`` (input must already be in CoDS)."""
        spec = self._mapper_spec()
        metrics = self.space.dart.metrics
        net_before = metrics.network_bytes(TransferKind.COUPLING)

        # -- placement: map tasks go to their input data (in-situ) -----------
        if self.data_centric:
            mapping = ClientSideMapper().map_bundle(
                [spec], cluster, lookup=self.space.lookup
            )
        else:
            from repro.core.mapping.roundrobin import RoundRobinMapper

            mapping = RoundRobinMapper().map_bundle([spec], cluster)

        # -- map phase: fetch real blocks, emit pairs ---------------------------
        partitions: dict[int, list[tuple[Hashable, Any]]] = {
            r: [] for r in range(self.num_reducers)
        }
        pair_origin: dict[int, list[int]] = {r: [] for r in range(self.num_reducers)}
        for task in spec.tasks():
            if task.requested_cells == 0:
                continue
            core = mapping.core_of(spec.app_id, task.rank)
            block, _, _ = self.space.fetch_seq(
                core, self.var, task.bounding_box, app_id=spec.app_id
            )
            for key, value in self.map_fn(block):
                dest = hash(key) % self.num_reducers
                partitions[dest].append((key, value))
                pair_origin[dest].append(core)

        # -- shuffle: pairs move to their reducer's core --------------------------
        reducer_cores = self._reducer_cores(cluster, mapping)
        shuffle_bytes = 0
        for dest, pairs in partitions.items():
            for (key, value), src_core in zip(pairs, pair_origin[dest]):
                rec = self.space.dart.transfer(
                    src_core=src_core,
                    dst_core=reducer_cores[dest],
                    nbytes=self.value_bytes,
                    kind=TransferKind.INTRA_APP,
                    app_id=self.app_id,
                    var=f"{self.var}.shuffle",
                )
                shuffle_bytes += rec.nbytes

        # -- reduce phase ------------------------------------------------------------
        output: dict[Hashable, Any] = {}
        for dest, pairs in partitions.items():
            by_key: dict[Hashable, list[Any]] = {}
            for key, value in pairs:
                by_key.setdefault(key, []).append(value)
            for key, values in by_key.items():
                output[key] = self.reduce_fn(key, values)

        shuffle_net = metrics.network_bytes(TransferKind.INTRA_APP,
                                            app_id=self.app_id)
        input_net = metrics.network_bytes(TransferKind.COUPLING) - net_before
        return MapReduceResult(
            output=output,
            map_mapping=mapping,
            shuffle_bytes=shuffle_bytes,
            shuffle_network_bytes=shuffle_net,
            input_network_bytes=input_net,
        )

    def _reducer_cores(
        self, cluster: Cluster, mapping: MappingResult
    ) -> list[int]:
        """Reducers take the first free cores after the mappers."""
        used = set(mapping.placement.values())
        free = [c for c in cluster.cores() if c not in used]
        if len(free) < self.num_reducers:
            raise WorkflowError(
                f"need {self.num_reducers} free cores for reducers, "
                f"have {len(free)}"
            )
        return free[: self.num_reducers]
