"""A real coupled workload: 2-D Jacobi heat diffusion + online monitoring.

The synthetic scenario apps move byte volumes; this module moves *values*.
:class:`HeatSolver` runs an actual domain-decomposed Jacobi iteration
(vectorized numpy, Dirichlet boundaries), accounts its halo exchanges
through HybridDART like any framework app, and publishes each task's block
into CoDS with a real payload. A monitoring consumer then
:meth:`~repro.cods.space.CoDS.fetch_seq` es assembled subfields and computes
statistics — and the values it sees are bit-identical to the solver's state,
which the tests assert. This is the end-to-end "online data processing"
pipeline of the paper's Fig 2 with genuine data flowing through every layer.
"""

from __future__ import annotations

import numpy as np

from repro.apps.stencil import run_stencil_exchange
from repro.cods.space import CoDS
from repro.core.mapping.base import MappingResult
from repro.core.task import AppSpec
from repro.domain.box import Box
from repro.errors import WorkflowError

__all__ = ["HeatSolver", "HeatMonitor"]


class HeatSolver:
    """Domain-decomposed 2-D heat equation (explicit Jacobi).

    The solver holds the global field (all tasks live in this process), but
    its *communication* is fully decomposed: every step accounts the halo
    exchanges the decomposition implies, and publication stores one payload
    object per task, exactly as a distributed implementation would.
    """

    def __init__(
        self,
        spec: AppSpec,
        initial: "np.ndarray | float" = 0.0,
        alpha: float = 0.25,
        boundary: float = 0.0,
    ) -> None:
        if spec.descriptor.ndim != 2:
            raise WorkflowError("HeatSolver is 2-D; use a 2-D decomposition")
        if not 0 < alpha <= 0.25:
            raise WorkflowError(
                f"alpha {alpha} outside the explicit-stability range (0, 0.25]"
            )
        self.spec = spec
        self.alpha = alpha
        self.boundary = boundary
        shape = spec.descriptor.domain_size
        if isinstance(initial, np.ndarray):
            if initial.shape != shape:
                raise WorkflowError(
                    f"initial field shape {initial.shape} != domain {shape}"
                )
            self.field = initial.astype(np.float64, copy=True)
        else:
            self.field = np.full(shape, float(initial), dtype=np.float64)
        self.time_steps = 0

    def step(
        self,
        iterations: int = 1,
        mapping: MappingResult | None = None,
        dart=None,
    ) -> None:
        """Advance the field; optionally account the halo traffic.

        With ``mapping`` and ``dart`` given, each iteration issues the
        decomposition's halo exchanges through the transport (the intra-app
        traffic a distributed run would generate).
        """
        if iterations < 0:
            raise WorkflowError("iterations must be non-negative")
        f = self.field
        b = self.boundary
        for _ in range(iterations):
            padded = np.pad(f, 1, mode="constant", constant_values=b)
            f = f + self.alpha * (
                padded[:-2, 1:-1] + padded[2:, 1:-1]
                + padded[1:-1, :-2] + padded[1:-1, 2:]
                - 4.0 * f
            )
            self.time_steps += 1
        self.field = f
        if mapping is not None and dart is not None and iterations > 0:
            run_stencil_exchange(
                self.spec, mapping, dart, iterations=iterations
            )

    def task_block(self, rank: int) -> tuple[Box, np.ndarray]:
        """One task's share of the field (blocked decompositions)."""
        box = self.spec.decomposition.task_bounding_box(rank)
        view = self.field[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1]]
        return box, view

    def publish(
        self,
        space: CoDS,
        mapping: MappingResult,
        version: int = 0,
    ) -> int:
        """Store every task's block (with payload) in the space."""
        total = 0
        for rank in range(self.spec.ntasks):
            box, view = self.task_block(rank)
            if box.is_empty:
                continue
            space.put_seq(
                mapping.core_of(self.spec.app_id, rank),
                self.spec.var, box,
                data=view.copy(), version=version,
            )
            total += view.nbytes
        return total

    # -- physics diagnostics (used by the monitor and the tests) ----------------

    @property
    def total_heat(self) -> float:
        return float(self.field.sum())

    @property
    def peak(self) -> float:
        return float(self.field.max())


class HeatMonitor:
    """The online-analysis side: fetch assembled subfields, run statistics."""

    def __init__(self, spec: AppSpec, space: CoDS) -> None:
        self.spec = spec
        self.space = space

    def probe(
        self,
        core: int,
        box: Box,
        version: int | None = None,
    ) -> dict[str, float]:
        """Fetch a region and compute its statistics (one analysis task)."""
        values, _, _ = self.space.fetch_seq(
            core, self.spec.var, box, version=version, app_id=self.spec.app_id
        )
        return {
            "mean": float(values.mean()),
            "max": float(values.max()),
            "min": float(values.min()),
            "heat": float(values.sum()),
        }

    def scan(
        self,
        mapping: MappingResult,
        version: int | None = None,
    ) -> dict[int, dict[str, float]]:
        """Every monitor task probes its own region of the domain."""
        out: dict[int, dict[str, float]] = {}
        for task in self.spec.tasks():
            if task.requested_cells == 0:
                continue
            box = task.bounding_box
            core = mapping.core_of(self.spec.app_id, task.rank)
            out[task.rank] = self.probe(core, box, version)
        return out
