"""Iterative coupled workflows: repeated coupling across simulation steps.

The paper's optimizations — schedule caching in particular — exist because
"data coupling patterns are often repeated in iteration based scientific
simulations". This module runs a producer/consumer pair through many
coupling iterations: each iteration the producer publishes a new *version*
of the coupled variable, the consumer pulls it, and (for sequential
coupling) stale versions are evicted to bound the space's memory footprint.

Per-iteration statistics expose the amortization: iteration 1 pays the DHT
round-trips, iterations 2..N reuse the cached communication schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cods.space import CoDS
from repro.core.mapping.base import MappingResult
from repro.core.task import AppSpec
from repro.errors import WorkflowError
from repro.transport.message import TransferKind

__all__ = ["IterationStats", "IterativeCoupling"]


@dataclass(frozen=True)
class IterationStats:
    """Traffic counters of one coupling iteration."""

    iteration: int
    coupled_bytes: int
    network_bytes: int
    shm_bytes: int
    control_msgs: int
    cache_hits: int
    #: whole-bundle cache hits (0 unless the space enables the bundle cache)
    bundle_hits: int = 0


@dataclass
class IterativeCoupling:
    """Drives N coupling iterations between a mapped producer/consumer pair.

    ``keep_versions`` bounds how many versions stay resident in the space
    (sequential mode): older versions are evicted after each iteration, the
    way a running simulation recycles its coupling buffers.
    """

    producer: AppSpec
    consumer: AppSpec
    space: CoDS
    producer_mapping: MappingResult
    consumer_mapping: MappingResult
    keep_versions: int = 2
    history: list[IterationStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.keep_versions < 1:
            raise WorkflowError("keep_versions must be >= 1")
        if self.producer.var != self.consumer.var:
            raise WorkflowError(
                f"coupled variable mismatch: {self.producer.var!r} vs "
                f"{self.consumer.var!r}"
            )

    def _snapshot(self) -> tuple[int, int, int, int, int]:
        m = self.space.dart.metrics
        cache = self.space.schedule_cache
        bundle = self.space.bundle_cache
        return (
            m.network_bytes(TransferKind.COUPLING),
            m.shm_bytes(TransferKind.COUPLING),
            m.count(kind=TransferKind.CONTROL),
            cache.hits if cache is not None else 0,
            bundle.hits if bundle is not None else 0,
        )

    def run_iteration(self, version: int) -> IterationStats:
        """One coupling step: put version, get version, evict stale.

        When the space carries a bundle cache, the consumer side issues one
        :meth:`~repro.cods.space.CoDS.get_bundle` for all its ranks —
        iteration 2 onward then recovers the whole schedule set in a single
        probe. Otherwise each rank pulls individually (the seed behavior,
        whose per-rank cache counters the ablation benches pin).
        """
        net0, shm0, ctl0, hits0, bhits0 = self._snapshot()
        pdec = self.producer.decomposition
        for rank in range(self.producer.ntasks):
            region = pdec.task_intervals(rank)
            if not all(region):
                continue
            self.space.put_seq(
                self.producer_mapping.core_of(self.producer.app_id, rank),
                self.producer.var, region,
                element_size=self.producer.element_size, version=version,
            )
        requests = [
            (
                self.consumer_mapping.core_of(self.consumer.app_id, task.rank),
                task.requested_region,
            )
            for task in self.consumer.tasks()
            if task.requested_cells > 0
        ]
        if self.space.bundle_cache is not None:
            self.space.get_bundle(
                self.consumer.var, requests, app_id=self.consumer.app_id,
                mode="seq",
            )
        else:
            for core, region in requests:
                self.space.get_seq(
                    core, self.consumer.var, region,
                    app_id=self.consumer.app_id,
                )
        self._evict_stale(version)
        net1, shm1, ctl1, hits1, bhits1 = self._snapshot()
        stats = IterationStats(
            iteration=version,
            coupled_bytes=(net1 - net0) + (shm1 - shm0),
            network_bytes=net1 - net0,
            shm_bytes=shm1 - shm0,
            control_msgs=ctl1 - ctl0,
            cache_hits=hits1 - hits0,
            bundle_hits=bhits1 - bhits0,
        )
        self.history.append(stats)
        return stats

    def _evict_stale(self, current_version: int) -> None:
        stale = current_version - self.keep_versions
        if stale < 0:
            return
        pdec = self.producer.decomposition
        for rank in range(self.producer.ntasks):
            if not all(pdec.task_intervals(rank)):
                continue
            core = self.producer_mapping.core_of(self.producer.app_id, rank)
            if self.space.store_of(core).get(self.producer.var, stale):
                self.space.evict(core, self.producer.var, stale)

    def run(self, iterations: int) -> list[IterationStats]:
        """Run ``iterations`` coupling steps from version 0."""
        if iterations <= 0:
            raise WorkflowError("iterations must be positive")
        for version in range(iterations):
            self.run_iteration(version)
        return self.history

    # -- analysis --------------------------------------------------------------------

    @property
    def steady_state_control_msgs(self) -> int:
        """Control messages of the last iteration (the amortized cost)."""
        if not self.history:
            raise WorkflowError("no iterations ran yet")
        return self.history[-1].control_msgs

    @property
    def warmup_control_msgs(self) -> int:
        if not self.history:
            raise WorkflowError("no iterations ran yet")
        return self.history[0].control_msgs

    def resident_bytes(self) -> int:
        """Bytes currently held in the space (bounded by keep_versions)."""
        return self.space.stored_bytes()
