"""Jaguar-scale synthetic workload: ~10^6 events on a 10^4-node cluster.

The paper's evaluation platform is the Jaguar Cray XT5; its experiments
stop at hundreds of cores, but the framework's data structures were
redesigned (calendar event queue, dirty-component max-min solver,
bundle-level schedule cache) to stay fast well past that. This scenario
is the workload that proves it: an iterative in-situ coupled simulation
on 10,000 twelve-core nodes — 100,000 simulated ranks computing for ten
iterations (one completion event per rank per iteration, ~1M events
total) with a coupling phase between iterations that

* recovers the whole consumer-side schedule bundle from the
  :class:`~repro.cods.schedule.BundleScheduleCache` (one miss, then all
  hits — the §IV-A reuse argument at bundle granularity),
* times the resulting transfers through a
  :class:`~repro.sim.fluid.FluidSimulation` forced onto the incremental
  dirty-component solver, with in-situ-style *localized* traffic: each
  consumer group pulls the bulk of its region from the co-located
  producer group over shared memory and only a halo slab from the
  neighboring group over the torus.

Everything timed is derived from a seeded generator, so the simulated
makespan (and every byte count) is byte-for-byte reproducible; only the
wall-clock and events/sec fields of the profile vary between hosts.
Coupling state is modeled at *group* granularity — a full CoDS instance
with 120,000 per-core object stores would measure dictionary churn, not
the scheduler and solver this scenario exists to exercise.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cods.objects import RegionProduct, region_from_box
from repro.cods.schedule import BundleScheduleCache, producer_schedule
from repro.domain.box import Box
from repro.errors import SimulationError
from repro.hardware.cluster import Cluster
from repro.hardware.network import NetworkModel
from repro.sim.engine import SimEngine
from repro.sim.fluid import FluidSimulation

__all__ = ["JaguarScaleConfig", "JaguarScaleResult", "run_jaguar_scale"]

#: the coupled variable the synthetic groups exchange
JAGUAR_VAR = "jaguar_field"


@dataclass(frozen=True)
class JaguarScaleConfig:
    """Shape of one jaguar-scale run (defaults = the canonical scenario)."""

    num_nodes: int = 10_000
    ranks: int = 100_000
    iterations: int = 10
    #: producer/consumer group pairs that couple between iterations
    coupling_groups: int = 1_000
    #: 1-D cells owned by each producer group
    cells_per_group: int = 65_536
    #: cells pulled from the *neighboring* group (the inter-node slab)
    halo_cells: int = 4_096
    element_size: int = 8
    #: per-rank compute times are uniform in [compute_lo, compute_hi)
    compute_lo: float = 0.8
    compute_hi: float = 1.2
    seed: int = 20120521

    def __post_init__(self) -> None:
        if min(self.num_nodes, self.ranks, self.iterations) <= 0:
            raise SimulationError("jaguar config dimensions must be positive")
        if not 0 < self.coupling_groups <= self.num_nodes:
            raise SimulationError(
                f"coupling_groups {self.coupling_groups} must be in "
                f"(0, num_nodes={self.num_nodes}]"
            )
        if not 0 <= self.halo_cells <= self.cells_per_group:
            raise SimulationError("halo must fit inside one group's slab")
        if not self.compute_lo < self.compute_hi:
            raise SimulationError("compute time window is empty")


@dataclass
class JaguarScaleResult:
    """Outcome of one run: simulated results + host-side throughput."""

    config: JaguarScaleConfig
    makespan: float
    sim_events: int
    wall_clock: float
    coupling_times: list[float] = field(default_factory=list)
    bytes_shm: int = 0
    bytes_network: int = 0
    bundle_hits: int = 0
    bundle_misses: int = 0
    component_solves: int = 0
    flows_resolved: int = 0
    flows_timed: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.wall_clock if self.wall_clock > 0 else 0.0

    def profile(self) -> dict[str, Any]:
        """Flat metrics dict in the perf-history snapshot shape.

        Every field except ``wall_clock``/``events_per_sec`` is
        deterministic for a given config.
        """
        return {
            "makespan": self.makespan,
            "sim_events": float(self.sim_events),
            "wall_clock": self.wall_clock,
            "events_per_sec": self.events_per_sec,
            "bytes_shm": float(self.bytes_shm),
            "bytes_network": float(self.bytes_network),
            "bytes_total": float(self.bytes_shm + self.bytes_network),
            "bundle_cache_hits": float(self.bundle_hits),
            "bundle_cache_misses": float(self.bundle_misses),
            "solver_component_solves": float(self.component_solves),
            "solver_flows_resolved": float(self.flows_resolved),
            "flows_timed": float(self.flows_timed),
            "coupling_time_total": float(sum(self.coupling_times)),
            "ranks": float(self.config.ranks),
            "iterations": float(self.config.iterations),
        }


class _JaguarRun:
    """One in-flight run: iteration barriers + the coupling phase."""

    def __init__(
        self,
        cfg: JaguarScaleConfig,
        queue: Any = None,
        timeline: Any = None,
        tracer: Any = None,
        progress: Any = None,
        provenance: Any = None,
    ) -> None:
        self.cfg = cfg
        self.engine = SimEngine(queue=queue)
        self.cluster = Cluster(cfg.num_nodes)
        self.network = NetworkModel(self.cluster)
        self.cache = BundleScheduleCache()
        rng = np.random.default_rng(cfg.seed)
        span = cfg.compute_hi - cfg.compute_lo
        #: per-iteration python-float rows (float lists keep the event
        #: queue's bisect comparisons off numpy scalars)
        self._durations = [
            (cfg.compute_lo + span * rng.random(cfg.ranks)).tolist()
            for _ in range(cfg.iterations)
        ]
        self._placement = self._place_groups()
        self._producer_regions = self._producer_slabs()
        self._requests = self._consumer_requests()
        self._bundle_key = BundleScheduleCache.key_for(
            JAGUAR_VAR, "cont", self._requests, self._producer_regions
        )
        self.coupling_times: list[float] = []
        self.bytes_shm = 0
        self.bytes_network = 0
        self.component_solves = 0
        self.flows_resolved = 0
        self.flows_timed = 0
        # Observability is strictly additive: with all three hooks None the
        # hot loop below is byte-identical to the uninstrumented run. The
        # tracer is deliberately NOT handed to the SimEngine — wrapping a
        # million rank events in spans would measure the tracer, not the
        # scheduler; only the ~2x iterations phase spans are traced.
        self.timeline = timeline
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.progress = progress
        self.provenance = (
            provenance if provenance is not None and provenance.enabled
            else None
        )
        if self.tracer is not None and self.tracer.clock is None:
            self.tracer.clock = lambda: self.engine.now
        if self.provenance is not None and self.provenance.clock is None:
            self.provenance.clock = lambda: self.engine.now
        #: last provenance record id, so each iteration/coupling record
        #: chains causally to the phase before it
        self._prov_last_id: "int | None" = None
        if timeline is not None:
            #: synthetic placement: rank r computes on node r % num_nodes
            self._node_of_rank = np.arange(cfg.ranks) % cfg.num_nodes
            #: per-iteration completion offsets (numpy rows — the lazy
            #: busy reconstruction below wants vector ops)
            self._np_durations = [np.asarray(row) for row in self._durations]
            #: completion offsets of the iteration in flight (None while
            #: coupling) + its start time — everything the pre_sample hook
            #: needs to reconstruct per-node busy counts at a tick
            self._busy_times: "np.ndarray | None" = None
            self._busy_start = 0.0
            timeline.pre_sample = self._refresh_busy
        self._iter_span: Any = None

    # -- static coupling layout --------------------------------------------------

    def _place_groups(self) -> list[tuple[int, int]]:
        """Per group: (producer core, consumer core), co-located on one node.

        Groups spread evenly over the cluster; producer and consumer of a
        pair share a node, so the bulk pull is an intra-node shm transfer
        (the in-situ placement the paper argues for), while halo pulls from
        the previous group cross the torus.
        """
        cfg = self.cfg
        spread = cfg.num_nodes // cfg.coupling_groups
        out = []
        for g in range(cfg.coupling_groups):
            base = self.cluster.cores_of_node(g * spread)[0]
            out.append((base, base + 1))
        return out

    def _producer_slabs(self) -> tuple[tuple[int, RegionProduct], ...]:
        w = self.cfg.cells_per_group
        return tuple(
            (pcore, region_from_box(Box(lo=(g * w,), hi=((g + 1) * w,))))
            for g, (pcore, _ccore) in enumerate(self._placement)
        )

    def _consumer_requests(self) -> tuple[tuple[int, RegionProduct], ...]:
        w, halo = self.cfg.cells_per_group, self.cfg.halo_cells
        return tuple(
            (
                ccore,
                region_from_box(Box(lo=(max(0, g * w - halo),), hi=((g + 1) * w,))),
            )
            for g, (_pcore, ccore) in enumerate(self._placement)
        )

    # -- per-iteration phases ------------------------------------------------------

    def _start_iteration(self, it: int) -> None:
        if self.tracer is not None:
            self._iter_span = self.tracer.begin_async(
                "jaguar.iteration", it=it
            )
        if self.provenance is not None:
            self._prov_last_id = self.provenance.record(
                "jaguar.iteration", cause=self._prov_last_id,
                it=it, ranks=self.cfg.ranks,
            )
        schedule = self.engine.schedule
        remaining = self.cfg.ranks
        durations = self._durations[it]

        if self.timeline is not None:
            # Zero-overhead instrumentation: the completion schedule is
            # known up front, so busy counts are reconstructed lazily at
            # each sample tick (_refresh_busy) instead of being tracked
            # per event — the loop below stays byte-identical to the
            # uninstrumented one.
            self._busy_times = self._np_durations[it]
            self._busy_start = self.engine.now

        def task_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._iteration_done(it)

        for d in durations:
            schedule(d, task_done)

    def _refresh_busy(self, t: float) -> None:
        """pre_sample hook: rebuild per-node busy counts for time ``t``.

        A rank on its iteration is busy until its completion event fires;
        sampling is read-only, so the counts come from the precomputed
        completion offsets instead of per-event increments.
        """
        busy = self.timeline.cores.busy
        times = self._busy_times
        if times is None:  # coupling phase: no rank is computing
            if any(busy):
                busy[:] = [0] * len(busy)
            return
        alive = self._node_of_rank[times > (t - self._busy_start)]
        busy[:] = np.bincount(alive, minlength=self.cfg.num_nodes).tolist()

    def _iteration_done(self, it: int) -> None:
        if self.timeline is not None:
            self._busy_times = None
        if self.tracer is not None and self._iter_span is not None:
            self.tracer.end_async(self._iter_span)
            self._iter_span = None
        coupling = self._couple()
        self.coupling_times.append(coupling)
        if it + 1 < self.cfg.iterations:
            self.engine.schedule(coupling, self._start_iteration, it + 1)
        else:
            self.engine.schedule(coupling, _workflow_done)

    def _couple(self) -> float:
        if self.tracer is None:
            return self._couple_inner()
        with self.tracer.span("jaguar.couple"):
            return self._couple_inner()

    def _couple_inner(self) -> float:
        """Bundle-scheduled, fluid-timed exchange; returns its duration."""
        scheds = self.cache.get(self._bundle_key)
        cache_hit = scheds is not None
        if scheds is None:
            # Consumer g's slab only ever intersects producer slabs g-1 and
            # g (the layout is a 1-D halo exchange), so the schedule build
            # passes just those candidates instead of scanning all groups —
            # producer_schedule still verifies full coverage.
            slabs = self._producer_regions
            scheds = tuple(
                producer_schedule(
                    JAGUAR_VAR, core, region,
                    list(slabs[max(0, g - 1):g + 1]), self.cfg.element_size,
                )
                for g, (core, region) in enumerate(self._requests)
            )
            self.cache.put(self._bundle_key, scheds)
        fluid = FluidSimulation(
            self.network, incremental=True,
            timeline=self.timeline, t0=self.engine.now,
        )
        node_of = self.cluster.node_of_core
        for sched in scheds:
            for plan in sched.plans:
                fluid.add_transfer(plan.src_core, plan.dst_core, plan.nbytes)
                if node_of(plan.src_core) == node_of(plan.dst_core):
                    self.bytes_shm += plan.nbytes
                else:
                    self.bytes_network += plan.nbytes
        timings = fluid.run()
        self.flows_timed += len(timings)
        self.component_solves += fluid.last_solver_stats.get("component_solves", 0)
        self.flows_resolved += fluid.last_solver_stats.get("flows_resolved", 0)
        duration = max(t.finish for t in timings)
        if self.provenance is not None:
            self._prov_last_id = self.provenance.record(
                "jaguar.couple", cause=self._prov_last_id,
                cache_hit=cache_hit, duration=duration, flows=len(timings),
            )
        return duration

    # -- driving ------------------------------------------------------------------

    def run(self) -> JaguarScaleResult:
        # The event loop allocates no reference cycles, but a million live
        # Event objects make every generational GC pass expensive — park
        # the collector for the timed region (benchmark-harness idiom).
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        if self.timeline is not None:
            self.timeline.attach(self.engine)
        if self.provenance is not None:
            self.provenance.start(
                scenario="jaguar_scale",
                ranks=self.cfg.ranks,
                iterations=self.cfg.iterations,
                seed=self.cfg.seed,
            )
        if self.progress is not None:
            if self.progress.total_events is None:
                # One completion event per rank per iteration, plus one
                # barrier/terminal event per iteration.
                self.progress.total_events = (
                    self.cfg.ranks * self.cfg.iterations + self.cfg.iterations
                )
            self.progress.attach(self.engine)
        try:
            t0 = time.perf_counter()
            self._start_iteration(0)
            makespan = self.engine.run()
            wall = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
            if self.progress is not None:
                self.progress.close()
        return JaguarScaleResult(
            config=self.cfg,
            makespan=makespan,
            sim_events=self.engine.events_fired,
            wall_clock=wall,
            coupling_times=self.coupling_times,
            bytes_shm=self.bytes_shm,
            bytes_network=self.bytes_network,
            bundle_hits=self.cache.hits,
            bundle_misses=self.cache.misses,
            component_solves=self.component_solves,
            flows_resolved=self.flows_resolved,
            flows_timed=self.flows_timed,
        )


def _workflow_done() -> None:
    """Terminal no-op event: lands the clock at the last coupling's end."""


def run_jaguar_scale(
    config: JaguarScaleConfig | None = None,
    queue: Any = None,
    *,
    timeline: Any = None,
    tracer: Any = None,
    progress: Any = None,
    provenance: Any = None,
    **overrides,
) -> JaguarScaleResult:
    """Run the jaguar-scale scenario (canonical shape unless overridden).

    ``queue`` swaps the engine's scheduler implementation, mirroring
    :class:`~repro.sim.engine.SimEngine`; the differential and smoke
    tests use it to pit the calendar queue against the reference heap.

    ``timeline`` (a :class:`~repro.obs.timeline.TimelineCollector`) samples
    per-node busy cores, queue depth, and coupling link occupancy on the
    simulated clock; ``progress`` (a
    :class:`~repro.obs.timeline.ProgressReporter`) reports live events/sec
    and ETA; ``tracer`` records the ~2x iterations phase spans (iteration
    windows and coupling phases — never the per-rank events); ``provenance``
    (a :class:`~repro.obs.provenance.ProvenanceLedger`) chains one record
    per iteration and coupling phase — like the tracer it never touches
    the per-rank hot loop. All four default to off and leave the run
    byte-identical; the instrumented run's *simulated* outcome (makespan,
    byte counts, cache and solver stats) is identical too — only
    ``sim_events`` grows by the daemon sampling ticks.
    """
    if config is None:
        config = JaguarScaleConfig(**overrides)
    elif overrides:
        raise SimulationError("pass either a config or overrides, not both")
    return _JaguarRun(
        config, queue=queue, timeline=timeline, tracer=tracer,
        progress=progress, provenance=provenance,
    ).run()
