"""Periodic checksum scrubbing of the shared space.

Gray failures leave *latent* damage: a replica written over a corrupting
link carries flipped bits that no consumer has touched yet. Waiting for a
``get_seq`` to trip over it turns a background repair into a foreground
stall (or, with every copy damaged, a data loss). The
:class:`IntegrityScrubber` runs on the sim clock as a daemon service —
every ``period`` simulated seconds it calls :meth:`repro.cods.space.CoDS.
scrub`, which re-verifies the stored checksum of every copy and repairs
corrupt ones from a clean copy of the same logical object (one REPLICATION
transfer each).

Scrub passes appear as ``integrity.scrub`` spans in the tracer (their own
``scrub`` critical-path category) and export ``integrity.scrub.*`` counters
through the registry; like every gray-failure instrument they materialize
lazily, so clean runs register nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ResilienceError
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:
    from repro.cods.space import CoDS
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import SimEngine

__all__ = ["IntegrityScrubber"]


class IntegrityScrubber:
    """Re-verifies replica checksums on the sim clock (daemon service)."""

    def __init__(
        self,
        sim: "SimEngine",
        space: "CoDS",
        registry: "MetricsRegistry | None" = None,
        period: float = 0.25,
        tracer=None,
    ) -> None:
        if period <= 0:
            raise ResilienceError(
                f"scrub period must be positive, got {period}"
            )
        self.sim = sim
        self.space = space
        self.registry = registry
        self.period = period
        self.tracer = tracer if tracer is not None else space.tracer
        if self.tracer is None:
            self.tracer = NULL_TRACER
        self.passes = 0
        self.copies_checked = 0
        self.corrupt_found = 0
        self.repaired = 0
        self._started = False
        self._m_passes = None

    def start(self) -> None:
        """Arm the first scrub tick (daemon: never keeps the run alive)."""
        if self._started:
            raise ResilienceError("integrity scrubber already started")
        self._started = True
        self.sim.schedule_daemon(self.period, self._tick, category="scrub")

    def _tick(self) -> None:
        if self.tracer.enabled:
            with self.tracer.span("integrity.scrub", passno=self.passes):
                checked, corrupt, repaired = self.space.scrub(repair=True)
        else:
            checked, corrupt, repaired = self.space.scrub(repair=True)
        self.passes += 1
        self.copies_checked += checked
        self.corrupt_found += corrupt
        self.repaired += repaired
        if self.registry is not None:
            # Lazy: the pass counter appears once the first tick ran, which
            # only happens when a scrub period was configured at all.
            if self._m_passes is None:
                self._m_passes = self.registry.counter("integrity.scrub.passes")
            self._m_passes.inc()
        self.sim.schedule_daemon(self.period, self._tick, category="scrub")

    def summary(self) -> dict:
        return {
            "passes": self.passes,
            "copies_checked": self.copies_checked,
            "corrupt_found": self.corrupt_found,
            "repaired": self.repaired,
        }
