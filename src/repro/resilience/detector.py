"""Heartbeat failure detection on the simulated event clock.

Crashes *happen* at their fault-plan time, but the workflow must not react
instantly — a real system only learns of a failure when heartbeats stop
arriving. The detector models the standard period/timeout scheme: every
``period`` seconds a monitor sweep runs; a node whose last heartbeat is
older than ``timeout`` is declared dead and the death listeners fire. The
gap between the crash and its declaration is the detection latency the
``resilience.detection.latency`` histogram records.

Two kinds of sweep keep the model honest without stalling the simulator:

* a *periodic* sweep rescheduling itself as a daemon event — it never keeps
  the run alive on its own, so an idle workflow still terminates, and
* one *deadline* sweep per planned fault at ``fault_time + timeout +
  period`` — a plain (non-daemon) event guaranteeing that every fault is
  detected even if the workflow's own event queue has drained.

Optionally (``account_heartbeats=True``) each sweep issues real monitor →
node RPCs through HybridDART, so heartbeat traffic shows up in the
transfer accounting like any other control message.

With network partitions in the fault plan, silence is no longer proof of
death: a node across a cut stops heartbeating to the monitor while running
fine. The sweep therefore classifies a silent-but-alive node by
*cross-witness reachability* — if any other live node can still reach it,
it is **suspected partitioned** (listeners fire; the resilience manager
waits the cut out under a deadline) rather than declared dead. Only a node
that is actually down, or alive but unreachable from every witness, is
declared dead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ResilienceError

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.hardware.cluster import Cluster
    from repro.sim.engine import SimEngine
    from repro.transport.hybriddart import HybridDART

__all__ = ["HeartbeatFailureDetector"]

#: detection-latency histogram buckets (seconds)
LATENCY_BUCKETS: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2)


class HeartbeatFailureDetector:
    """Periodic heartbeat sweeps declaring nodes and DHT cores dead."""

    def __init__(
        self,
        sim: "SimEngine",
        cluster: "Cluster",
        injector: "FaultInjector",
        period: float = 0.05,
        timeout: float = 0.15,
        monitor_core: int = 0,
        dart: "HybridDART | None" = None,
        account_heartbeats: bool = False,
        registry=None,
    ) -> None:
        if period <= 0:
            raise ResilienceError(f"heartbeat period must be > 0, got {period}")
        if timeout < period:
            raise ResilienceError(
                f"timeout {timeout} below period {period}: every sweep "
                "would declare every node dead"
            )
        self.sim = sim
        self.cluster = cluster
        self.injector = injector
        self.period = period
        self.timeout = timeout
        self.monitor_core = monitor_core
        self.dart = dart
        self.account_heartbeats = account_heartbeats
        if account_heartbeats and dart is None:
            raise ResilienceError("account_heartbeats needs a HybridDART")
        self._last_hb: dict[int, float] = {}
        self._declared_nodes: set[int] = set()
        self._declared_dht: set[int] = set()
        self._node_listeners: list[Callable[[int], None]] = []
        self._dht_listeners: list[Callable[[int], None]] = []
        self._suspected_partitioned: set[int] = set()
        self._suspect_listeners: list[Callable[[int], None]] = []
        self._clear_listeners: list[Callable[[int], None]] = []
        self._started = False
        self._m_latency = None
        if registry is not None:
            self._m_latency = registry.histogram(
                "resilience.detection.latency", buckets=LATENCY_BUCKETS
            )

    # -- subscription ------------------------------------------------------------

    def add_node_death_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(node)`` runs when a node crash is *detected* (not injected)."""
        self._node_listeners.append(fn)

    def add_dht_death_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(core)`` runs when a DHT-core failure is detected."""
        self._dht_listeners.append(fn)

    def add_partition_suspect_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(node)`` runs when a silent node is classified as suspected
        partitioned (alive per a cross-witness) instead of dead."""
        self._suspect_listeners.append(fn)

    def add_partition_clear_listener(self, fn: Callable[[int], None]) -> None:
        """``fn(node)`` runs when a suspected-partitioned node heartbeats
        again (the cut healed before any deadline escalated it)."""
        self._clear_listeners.append(fn)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm the sweeps. Nodes already dead at start are declared on the
        first sweep (a restored run learns of pre-checkpoint faults the same
        way it learns of new ones)."""
        if self._started:
            raise ResilienceError("detector already started")
        self._started = True
        now = self.sim.now
        for node in self.cluster.nodes():
            self._last_hb[node] = now
        # Faults already detectable before start (a restored run starting
        # past `fault_time + timeout`) were declared in the original run;
        # the restored state reflects their recovery, so they are marked
        # silently instead of re-firing the listeners. Read from the *plan*:
        # the injector may not be armed yet when the detector starts.
        for crash in self.injector.plan.node_crashes:
            if crash.time + self.timeout <= now:
                self._declared_nodes.add(crash.node)
            elif crash.time < now:
                # Crashed before the checkpoint but not yet declared when it
                # was taken: silence accrues from the crash, not from the
                # restore instant, so the restored run declares the node on
                # the same schedule the original would have.
                self._last_hb[crash.node] = crash.time
        for failure in self.injector.plan.dht_failures:
            if failure.time + self.timeout <= now:
                self._declared_dht.add(failure.core)
        if self.account_heartbeats:
            self._register_ping_handlers()
        self.sim.schedule_daemon(
            self.period, self._periodic_sweep, category="recovery"
        )
        for time, _kind, _ident, _fault in self.injector.timed_faults():
            deadline = time + self.timeout + self.period
            if deadline >= now:
                self.sim.schedule_at(
                    max(deadline, now), self._sweep, category="recovery"
                )
        # Partition edges need deadline sweeps like crash faults: one when
        # the cut has been open long enough to trip the timeout (suspicion),
        # one just after each heal (clearing the suspicion).
        for part in self.injector.plan.partitions:
            for down, up in part.cut_windows():
                for t in (down + self.timeout + self.period, up + self.period):
                    if t >= now:
                        self.sim.schedule_at(
                            t, self._sweep, category="recovery"
                        )

    def _register_ping_handlers(self) -> None:
        for node in self.cluster.nodes():
            core = self.cluster.cores_of_node(node)[0]
            self.dart.register_handler(core, "hb_ping", lambda *a: None)

    # -- sweeping ----------------------------------------------------------------

    def _periodic_sweep(self) -> None:
        self._sweep()
        self.sim.schedule_daemon(
            self.period, self._periodic_sweep, category="recovery"
        )

    def _sweep(self) -> None:
        now = self.sim.now
        partitions = self.injector.plan.has_partitions
        mon_node = self.cluster.node_of_core(self.monitor_core)
        for node in self.cluster.nodes():
            if node in self._declared_nodes:
                continue
            reachable = not partitions or self.injector.reachable(
                mon_node, node, now
            )
            if self.injector.node_alive(node) and reachable:
                if node in self._suspected_partitioned:
                    self._clear_suspicion(node)
                # Heartbeat arrives; optionally account the monitor's ping.
                if self.account_heartbeats and mon_node != node:
                    self.dart.rpc(
                        self.monitor_core,
                        self.cluster.cores_of_node(node)[0],
                        "hb_ping",
                    )
                self._last_hb[node] = now
            elif now - self._last_hb[node] >= self.timeout:
                if (
                    partitions
                    and self.injector.node_alive(node)
                    and self._witnessed(node, now)
                ):
                    # Silent here, alive elsewhere: a network cut, not a
                    # crash. Never declared dead on the monitor's say-so.
                    if node not in self._suspected_partitioned:
                        self._suspect_node(node)
                else:
                    self._declare_node(node, now)
        for core in sorted(self.injector.failed_dht_cores()):
            node = self.cluster.node_of_core(core)
            if core in self._declared_dht or node in self._declared_nodes:
                continue
            # A DHT core stops answering: its peers notice after `timeout`.
            failed_at = self._dht_failure_time(core)
            if failed_at is not None and now - failed_at >= self.timeout:
                self._declare_dht(core, now, failed_at)

    def _witnessed(self, node: int, now: float) -> bool:
        """Can any *other* live, undeclared node still reach ``node``?

        The cross-witness check: the monitor asks its peers whether they
        see the silent node. Any single yes proves the node is partitioned
        from the monitor, not dead.
        """
        mon_node = self.cluster.node_of_core(self.monitor_core)
        for w in self.cluster.nodes():
            if w == node or w == mon_node:
                continue
            if w in self._declared_nodes or not self.injector.node_alive(w):
                continue
            if self.injector.reachable(w, node, now):
                return True
        return False

    def _suspect_node(self, node: int) -> None:
        self._suspected_partitioned.add(node)
        self.injector.record("node_partition_suspected", f"node={node}")
        for fn in self._suspect_listeners:
            fn(node)

    def _clear_suspicion(self, node: int) -> None:
        self._suspected_partitioned.discard(node)
        self.injector.record("node_partition_cleared", f"node={node}")
        for fn in self._clear_listeners:
            fn(node)

    def declare_partition_dead(self, node: int) -> None:
        """Deadline escalation: stop waiting out a suspected partition.

        The resilience manager calls this when a suspected-partitioned
        node stays unreachable past the configured partition deadline —
        from here on the node is treated exactly like a crashed one
        (fencing keeps a later heal from committing its stale work).
        """
        if node in self._declared_nodes:
            return
        self._suspected_partitioned.discard(node)
        self._declare_node(node, self.sim.now)

    def suspected_partitioned(self) -> frozenset[int]:
        return frozenset(self._suspected_partitioned)

    def _declare_node(self, node: int, now: float) -> None:
        self._declared_nodes.add(node)
        crash_time = self._crash_time(node)
        if self._m_latency is not None and crash_time is not None:
            self._m_latency.observe(now - crash_time)
        self.injector.record("node_death_detected", f"node={node}")
        for fn in self._node_listeners:
            fn(node)

    def _declare_dht(self, core: int, now: float, failed_at: float) -> None:
        self._declared_dht.add(core)
        if self._m_latency is not None:
            self._m_latency.observe(now - failed_at)
        self.injector.record("dht_death_detected", f"core={core}")
        for fn in self._dht_listeners:
            fn(core)

    # -- plan introspection --------------------------------------------------------

    def _crash_time(self, node: int) -> "float | None":
        times = [
            c.time for c in self.injector.plan.node_crashes if c.node == node
        ]
        return min(times) if times else None

    def _dht_failure_time(self, core: int) -> "float | None":
        times = [
            f.time for f in self.injector.plan.dht_failures if f.core == core
        ]
        return min(times) if times else None

    # -- queries -------------------------------------------------------------------

    def declared_dead(self) -> frozenset[int]:
        return frozenset(self._declared_nodes)
