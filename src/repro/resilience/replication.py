"""Replica placement for the resilient data space.

k-way replication keeps ``k`` copies of every logical object on ``k``
*distinct* compute nodes, so any single node crash leaves at least one copy
readable. Placement follows the SFC-neighbor rule: the DHT partitions the
1-D Hilbert index space into one contiguous interval per node (in node-id
order), so a node's successors along the index space are simply the next
node ids modulo the node count. Replicating onto SFC successors keeps a
replica's location table entries near the primary's — the same DHT cores
that answer for the primary usually answer for its replicas — while the
``seed`` rotates the start of the successor walk so independent spaces do
not all pile replicas onto the same neighbors.

Placement is a pure function of ``(owner node, seed, live set)``: the
property tests pin that two placers with equal seeds agree everywhere.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ResilienceError
from repro.hardware.cluster import Cluster

__all__ = ["ReplicaPlacer"]


class ReplicaPlacer:
    """Deterministic SFC-successor replica placement over a cluster."""

    def __init__(self, cluster: Cluster, seed: int = 0) -> None:
        if cluster.num_nodes < 1:
            raise ResilienceError("placer needs a cluster with nodes")
        self.cluster = cluster
        self.seed = seed
        # Rotation of the successor walk; kept in [0, nodes-1) so the
        # immediate successor is reachable and owner != first candidate.
        span = max(1, cluster.num_nodes - 1)
        self._rotation = seed % span

    def replica_nodes(
        self,
        owner_node: int,
        count: int,
        alive: "Callable[[int], bool] | None" = None,
        exclude: "Iterable[int]" = (),
    ) -> list[int]:
        """``count`` distinct nodes for replicas of data owned by ``owner_node``.

        Walks the SFC successor ring starting ``1 + rotation`` nodes past the
        owner, skipping the owner itself, dead nodes (``alive`` predicate),
        and any ``exclude``-d nodes (nodes already holding a copy, during
        re-replication). Returns fewer than ``count`` nodes when the cluster
        cannot provide them — the caller decides whether degraded
        replication is acceptable.
        """
        if count < 0:
            raise ResilienceError(f"replica count must be >= 0, got {count}")
        n = self.cluster.num_nodes
        if not 0 <= owner_node < n:
            raise ResilienceError(f"owner node {owner_node} out of range")
        banned = set(exclude)
        banned.add(owner_node)
        chosen: list[int] = []
        start = owner_node + 1 + self._rotation
        for i in range(n):
            if len(chosen) == count:
                break
            node = (start + i) % n
            if node in banned:
                continue
            if alive is not None and not alive(node):
                continue
            chosen.append(node)
            banned.add(node)
        return chosen

    def replica_cores(
        self,
        owner_core: int,
        count: int,
        alive: "Callable[[int], bool] | None" = None,
        exclude_nodes: "Iterable[int]" = (),
    ) -> list[int]:
        """Replica cores for data owned by ``owner_core``.

        Node selection is :meth:`replica_nodes` of the owner's node; within
        each chosen node the replica lands on the same core offset as the
        owner, so replica load spreads across a node's cores exactly like
        primary load does.
        """
        cluster = self.cluster
        owner_node = cluster.node_of_core(owner_core)
        offset = owner_core - cluster.cores_of_node(owner_node)[0]
        return [
            cluster.cores_of_node(node)[0] + offset
            for node in self.replica_nodes(
                owner_node, count, alive=alive, exclude=exclude_nodes
            )
        ]
