"""Workflow checkpoint/restart.

A checkpoint is one JSON document capturing everything a fresh process
needs to resume a scenario run mid-flight:

* the simulated capture time (the restored engine's ``start_time``),
* the workflow engine's enactment state (runs, placements, per-bundle
  generation counters — :meth:`WorkflowEngine.checkpoint_state`),
* the data space's logical manifest (object descriptors, replica sets,
  producer declarations, failure state — :meth:`CoDS.manifest`), and
* the metrics registry's cell state, with label values round-tripped
  through a typed codec (cells key on raw ints and enums, which a plain
  snapshot would stringify irreversibly).

The :class:`CheckpointManager` rides the simulator as a daemon service:
every ``interval`` simulated seconds it captures a checkpoint and writes it
atomically (temp file + rename), so a killed run always finds a complete
checkpoint on disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import CheckpointError
from repro.transport.message import TransferKind, Transport

if TYPE_CHECKING:
    from repro.cods.space import CoDS
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import SimEngine
    from repro.workflow.engine import WorkflowEngine

__all__ = ["Checkpoint", "CheckpointManager", "decode_label", "encode_label"]

FORMAT_VERSION = 1


def encode_label(value: Any) -> list:
    """Type-tagged JSON form of one metric label value."""
    if isinstance(value, TransferKind):
        return ["tk", value.value]
    if isinstance(value, Transport):
        return ["tp", value.value]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    raise CheckpointError(
        f"cannot encode metric label of type {type(value).__name__}: {value!r}"
    )


def decode_label(tagged: list) -> Any:
    tag, value = tagged
    if tag == "tk":
        return TransferKind(value)
    if tag == "tp":
        return Transport(value)
    if tag == "b":
        return bool(value)
    if tag == "i":
        return int(value)
    if tag == "f":
        return float(value)
    if tag == "s":
        return str(value)
    raise CheckpointError(f"unknown metric label tag {tag!r}")


@dataclass
class Checkpoint:
    """One complete, restorable snapshot of a scenario run."""

    time: float
    engine_state: dict
    space_manifest: dict
    metrics_state: dict
    fault_seed: "int | None" = None

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "time": self.time,
            "fault_seed": self.fault_seed,
            "engine": self.engine_state,
            "space": self.space_manifest,
            "metrics": self.metrics_state,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        if data.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {data.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        return cls(
            time=float(data["time"]),
            engine_state=data["engine"],
            space_manifest=data["space"],
            metrics_state=data["metrics"],
            fault_seed=data.get("fault_seed"),
        )

    def save(self, path: str) -> None:
        """Atomic write: a reader never observes a torn checkpoint."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        return cls.from_dict(data)


def capture(
    sim: "SimEngine",
    engine: "WorkflowEngine",
    space: "CoDS",
    registry: "MetricsRegistry",
    fault_seed: "int | None" = None,
) -> Checkpoint:
    """Snapshot the full run state at the current simulated instant."""
    return Checkpoint(
        time=sim.now,
        engine_state=engine.checkpoint_state(),
        space_manifest=space.manifest(),
        metrics_state=registry.dump_state(encode_label),
        fault_seed=fault_seed,
    )


class CheckpointManager:
    """Periodic checkpoints on the simulated clock (daemon service)."""

    def __init__(
        self,
        sim: "SimEngine",
        engine: "WorkflowEngine",
        space: "CoDS",
        registry: "MetricsRegistry",
        path: str,
        interval: float = 0.25,
        fault_seed: "int | None" = None,
    ) -> None:
        if interval <= 0:
            raise CheckpointError(
                f"checkpoint interval must be > 0, got {interval}"
            )
        self.sim = sim
        self.engine = engine
        self.space = space
        self.registry = registry
        self.path = path
        self.interval = interval
        self.fault_seed = fault_seed
        self.checkpoints_written = 0
        self._m_written = registry.counter("resilience.checkpoints")
        self._m_written.touch()

    def start(self) -> None:
        self.sim.schedule_daemon(self.interval, self._tick)

    def _tick(self) -> None:
        self.capture_now()
        self.sim.schedule_daemon(self.interval, self._tick)

    def capture_now(self) -> Checkpoint:
        ckpt = capture(
            self.sim, self.engine, self.space, self.registry, self.fault_seed
        )
        ckpt.save(self.path)
        self.checkpoints_written += 1
        self._m_written.inc()
        return ckpt
