"""Resilience subsystem: replication, failure detection, checkpoint/restart.

See DESIGN.md's "recovery ladder" section for how the pieces compose:
replica failover → re-replication → checkpoint restore → bundle
re-enactment.
"""

from repro.resilience.checkpoint import Checkpoint, CheckpointManager, capture
from repro.resilience.detector import HeartbeatFailureDetector
from repro.resilience.integrity import IntegrityScrubber
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.resilience.replication import ReplicaPlacer

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "HeartbeatFailureDetector",
    "IntegrityScrubber",
    "ReplicaPlacer",
    "ResilienceConfig",
    "ResilienceManager",
    "capture",
]
