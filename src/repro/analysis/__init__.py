"""Experiment drivers and reporting for the evaluation harness."""

from repro.analysis.experiments import (
    DATA_CENTRIC,
    ROUND_ROBIN,
    ScenarioResult,
    make_mapper,
    run_scenario,
)
from repro.analysis.ascii import bar_chart, grouped_bars, sparkline
from repro.analysis.report import format_table, mib, ms, reduction, series
from repro.analysis.runs import RunRegistry, config_hash
from repro.analysis.sweeps import SweepRecord, SweepResult, run_sweep

__all__ = [
    "DATA_CENTRIC",
    "ROUND_ROBIN",
    "ScenarioResult",
    "make_mapper",
    "run_scenario",
    "format_table",
    "mib",
    "ms",
    "reduction",
    "series",
    "bar_chart",
    "grouped_bars",
    "sparkline",
    "SweepRecord",
    "SweepResult",
    "run_sweep",
    "RunRegistry",
    "config_hash",
]
