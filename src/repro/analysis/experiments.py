"""Experiment drivers shared by the benchmarks and integration tests.

:func:`run_scenario` executes one coupled-workflow scenario end-to-end
through the real stack — workflow engine, task mapper, CoDS, HybridDART —
and returns the transfer metrics, per-app mappings/schedules, and (when
requested) fluid-simulated retrieval times. Each evaluation figure is one or
two calls to this driver with different mappers or scenario parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.apps.consumer import ConsumerApp
from repro.apps.producer import ProducerApp
from repro.apps.scenarios import CoupledScenario
from repro.cods.schedule import CommSchedule
from repro.cods.space import CoDS
from repro.core.commgraph import Coupling
from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.mapping.serverside import ServerSideMapper
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hardware.network import NetworkModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.sim.fluid import FluidSimulation
from repro.transport.hybriddart import HybridDART
from repro.transport.metrics import TransferMetrics
from repro.workflow.dag import Bundle, WorkflowDAG
from repro.workflow.engine import WorkflowEngine

if TYPE_CHECKING:
    from repro.obs.provenance import ProvenanceLedger
    from repro.obs.timeline import ProgressReporter, TimelineCollector
    from repro.resilience.manager import ResilienceConfig

__all__ = ["ScenarioResult", "run_scenario", "make_mapper"]

#: canonical mapper names accepted by the driver
DATA_CENTRIC = "data-centric"
ROUND_ROBIN = "round-robin"


@dataclass
class ScenarioResult:
    """Everything measured from one scenario execution."""

    scenario: CoupledScenario
    mapper_name: str
    metrics: TransferMetrics
    mappings: dict[int, MappingResult] = field(default_factory=dict)
    schedules: dict[int, dict[int, CommSchedule]] = field(default_factory=dict)
    #: per-consumer-app coupled-data retrieval time (s); filled when timed
    retrieval_times: dict[int, float] = field(default_factory=dict)
    #: fault injector used for the run (None for failure-free executions)
    injector: "FaultInjector | None" = None
    #: metrics registry backing the run's accumulators (always present)
    registry: "MetricsRegistry | None" = None
    #: simulated events the engine dispatched (perf-guard diagnostics)
    sim_events: int = 0
    #: resilience summary (replication, detections, failovers…); None when
    #: the run executed without the resilience subsystem
    resilience: "dict | None" = None
    #: the workflow engine (re-enactment counters, trace, makespan)
    engine: "WorkflowEngine | None" = None
    #: the CoDS space the run shared data through (invariant checks)
    space: "CoDS | None" = None
    #: causal provenance ledger the run appended to (None when disabled)
    provenance: "ProvenanceLedger | None" = None

    @property
    def consumer_ids(self) -> list[int]:
        return [a.app_id for a in self.scenario.consumers]


def make_mapper(
    name: str, scenario: CoupledScenario, space: CoDS, seed: int = 0
) -> tuple[TaskMapper, dict]:
    """Resolve a mapper name to (mapper, launch context) for the scenario's
    consumer placement."""
    if name == ROUND_ROBIN:
        return RoundRobinMapper(), {}
    if name != DATA_CENTRIC:
        raise ReproError(f"unknown mapper {name!r}")
    if scenario.mode == "cont":
        producer = scenario.producer
        couplings = [
            Coupling(producer, c, region=scenario.coupled_region)
            for c in scenario.consumers
        ]
        return ServerSideMapper(seed=seed), {"couplings": couplings}
    # Sequential: consumers follow the data through the lookup service.
    return ClientSideMapper(), {
        "lookup": lambda: space.lookup,
        "coupled_region": scenario.coupled_region,
    }


def run_scenario(
    scenario: CoupledScenario,
    mapper: str = DATA_CENTRIC,
    stencil_iterations: int = 0,
    time_transfers: bool = False,
    seed: int = 0,
    fault_plan: "FaultPlan | None" = None,
    tracer: "Tracer | NullTracer | None" = None,
    registry: "MetricsRegistry | None" = None,
    resilience: "ResilienceConfig | None" = None,
    producer_compute: float = 0.0,
    consumer_compute: float = 0.0,
    hedge_factor: "float | None" = None,
    speculation_threshold: "float | None" = None,
    write_quorum: "int | None" = None,
    read_quorum: "int | None" = None,
    timeline: "TimelineCollector | None" = None,
    progress: "ProgressReporter | None" = None,
    provenance: "ProvenanceLedger | None" = None,
    enforce_memory: bool = False,
    memory_per_node: "int | None" = None,
    high_watermark: "float | None" = None,
    spill_capacity: "int | None" = None,
) -> ScenarioResult:
    """Execute one scenario under the named mapping strategy.

    ``fault_plan`` (when non-empty) runs the scenario under deterministic
    fault injection: transfers retry with backoff, DHT cores fail over, and
    crashed nodes trigger bundle re-enactment. An empty or absent plan
    leaves every code path byte-identical to the failure-free run.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) records spans across
    every layer, stamped with the run's simulated time; ``registry`` backs
    the transfer accumulator so DHT/schedule-cache instruments land in the
    same ``--metrics-out`` snapshot. Both default to disabled/private
    instances and leave the untraced run byte-identical.

    ``resilience`` (a :class:`repro.resilience.ResilienceConfig`) switches
    the run into resilience mode: k-way replication in the space, heartbeat
    failure detection (crashes take effect at *detection* time instead of
    instantly), automatic re-replication, optional periodic checkpoints,
    and — via ``restore_from`` — resuming a previous run's checkpoint.
    ``None`` keeps the legacy instant-recovery wiring byte-identical.

    ``producer_compute``/``consumer_compute`` give the synthetic apps a
    simulated compute duration, stretching the run over simulated time so
    mid-flight faults, failure detection, and periodic checkpoints have a
    window to land in. The default (0.0) collapses the whole workflow to
    t=0, exactly as before.

    ``hedge_factor`` arms hedged pulls (a pull slower than the cost model's
    expected time times the factor races a backup pull from another replica
    holder); ``speculation_threshold`` arms straggler speculation (an app
    running beyond the threshold times the median of its bundle peers on a
    slowed node is speculatively re-enacted on a spare core). Both are inert
    without matching gray faults in the plan and default to off.

    ``write_quorum``/``read_quorum`` arm quorum acknowledgement in the
    space (puts ack only at ``write_quorum`` reachable replica holders;
    reads fail over across any reachable quorum member). Both need
    ``resilience`` with ``replication > 1`` to matter and default to
    ``None``, which keeps the non-quorum paths byte-identical.

    ``provenance`` (a :class:`repro.obs.provenance.ProvenanceLedger`)
    records every decision the stack makes — dispatch, placement, replica
    selection, quorum degrades, detector verdicts, recovery rungs — as
    cause-linked records on the sim clock, queryable with ``repro-insitu
    explain``. ``None`` (the default) leaves the shared no-op ledger in
    place and the run byte-identical.

    ``enforce_memory`` makes per-core store capacity a real constraint:
    puts admit against a ``high_watermark`` fraction (default 0.8) of the
    node's memory (override with ``memory_per_node``), a reclaim ladder
    (GC, replica eviction, spill to a per-node deep-memory tier of
    ``spill_capacity`` bytes) runs before any put blocks, and producers
    that still cannot be admitted back off on the sim clock. Off by
    default, which keeps every path byte-identical to the unenforced run.
    """
    cluster = scenario.cluster
    injector: FaultInjector | None = None
    if fault_plan is not None and not fault_plan.is_empty:
        injector = FaultInjector(fault_plan)
        if fault_plan.has_link_partitions:
            # Link-group cuts sever dimension-ordered routes; the injector
            # needs the same torus the fluid model would load.
            injector.set_topology(NetworkModel(cluster).topology)

    ckpt = None
    sim = None
    if resilience is not None:
        from repro.resilience.checkpoint import Checkpoint, decode_label
        from repro.resilience.replication import ReplicaPlacer
        from repro.sim.engine import SimEngine

        resilience.validate()
        if resilience.restore_from is not None:
            ckpt = Checkpoint.load(resilience.restore_from)
            if registry is None:
                registry = MetricsRegistry()
            registry.load_state(ckpt.metrics_state, decode_label)
            sim = SimEngine(tracer=tracer, start_time=ckpt.time)

    metrics = TransferMetrics(registry=registry)
    space = CoDS(
        cluster,
        scenario.domain,
        dart=HybridDART(cluster, metrics=metrics, injector=injector, tracer=tracer),
        enforce_memory=enforce_memory,
        memory_per_node=memory_per_node,
        high_watermark=high_watermark,
        spill_capacity=spill_capacity,
        hedge_factor=hedge_factor,
        replication=resilience.replication if resilience is not None else 1,
        write_quorum=write_quorum,
        read_quorum=read_quorum,
        placer=(
            ReplicaPlacer(cluster, resilience.placer_seed)
            if resilience is not None and resilience.replication > 1
            else None
        ),
    )
    mode = scenario.mode

    producer_routine = ProducerApp(
        spec=scenario.producer, space=space, mode=mode,
        stencil_iterations=stencil_iterations,
        compute_seconds=producer_compute,
    )
    consumer_routines = [
        ConsumerApp(spec=c, space=space, mode=mode,
                    stencil_iterations=stencil_iterations,
                    coupled_region=scenario.coupled_region,
                    compute_seconds=consumer_compute)
        for c in scenario.consumers
    ]

    if mode == "cont":
        # One bundle: producer and consumers scheduled simultaneously.
        dag = WorkflowDAG(
            scenario.apps,
            bundles=[Bundle(tuple(a.app_id for a in scenario.apps))],
        )
    else:
        # Producer first; consumers form one concurrently launched bundle.
        dag = WorkflowDAG(
            scenario.apps,
            edges=[(scenario.producer.app_id, c.app_id) for c in scenario.consumers],
            bundles=[
                Bundle((scenario.producer.app_id,)),
                Bundle(tuple(c.app_id for c in scenario.consumers)),
            ],
        )

    manager = None
    if resilience is not None:
        from repro.resilience.manager import ResilienceManager

        engine = WorkflowEngine(
            dag, cluster, sim=sim, injector=injector, tracer=tracer,
            defer_crash_redispatch=True,
            speculation_threshold=speculation_threshold,
            registry=space.dart.registry,
        )
        manager = ResilienceManager(
            resilience, engine.sim, space, engine, space.dart.registry,
            injector=injector,
            fault_seed=fault_plan.seed if fault_plan is not None else None,
        )
        manager.install()
        manager.start_checkpointing()
        if ckpt is not None:
            space.restore_manifest(ckpt.space_manifest)
    else:
        engine = WorkflowEngine(
            dag, cluster, injector=injector, tracer=tracer,
            speculation_threshold=speculation_threshold,
            registry=space.dart.registry if injector is not None else None,
        )
        if injector is not None:
            # CoDS recovers after the engine (listener order): the engine
            # frees the crashed clients first, then the space drops lost
            # stores and fails the node's DHT core over to its successor.
            injector.add_node_crash_listener(lambda node: space.on_node_crash(node))
            injector.add_dht_failure_listener(lambda core: space.fail_dht_core(core))
    if enforce_memory:
        # The scenario DAG's reader count feeds the GC rung, the spill
        # probe stretches apps over their deep-memory traffic, and any
        # MemoryPressure windows in the plan shrink node capacity live.
        space.consumer_counts[scenario.producer.var] = len(scenario.consumers)
        engine.spill_probe = space.drain_spill_seconds
        if injector is not None:
            space.arm_memory_pressure(injector)
    engine.set_routine(scenario.producer.app_id, producer_routine)
    for routine in consumer_routines:
        engine.set_routine(routine.spec.app_id, routine)

    chosen, context = make_mapper(mapper, scenario, space, seed)
    if mode == "cont":
        engine.set_bundle_mapper(0, chosen, **context)
    else:
        consumer_bundle = engine.bundle_index_of(scenario.consumers[0].app_id)
        engine.set_bundle_mapper(consumer_bundle, chosen, **context)

    if timeline is not None:
        timeline.bind_registry(space.dart.registry)
        timeline.resident_probe = space.stored_bytes
        space.dart.timeline = timeline
        engine.server.usage = timeline.cores
        timeline.attach(engine.sim)
    if provenance is not None:
        if provenance.clock is None:
            provenance.clock = lambda: engine.sim.now
        provenance.bind_registry(space.dart.registry)
        provenance.start(
            scenario=mode, mapper=mapper,
            bundles=len(dag.bundles),
            seed=fault_plan.seed if fault_plan is not None else None,
        )
        engine.provenance = provenance
        space.provenance = provenance
        if injector is not None:
            injector.provenance = provenance
        if manager is not None:
            manager.provenance = provenance
    if progress is not None:
        progress.attach(engine.sim)

    runs = engine.run(restore=ckpt.engine_state if ckpt is not None else None)

    engine.sim.publish_metrics(space.dart.registry)
    if progress is not None:
        progress.close()

    result = ScenarioResult(
        scenario=scenario,
        mapper_name=mapper,
        metrics=space.dart.metrics,
        injector=injector,
        registry=space.dart.registry,
        sim_events=engine.sim.events_fired,
        resilience=manager.summary() if manager is not None else None,
        engine=engine,
        space=space,
        provenance=provenance,
    )
    for app_id, run in runs.items():
        if run.mapping is not None:
            result.mappings[app_id] = run.mapping
    for routine in consumer_routines:
        result.schedules[routine.spec.app_id] = dict(routine.schedules)

    if time_transfers:
        result.retrieval_times = _time_retrievals(scenario, result, timeline)
    return result


def _time_retrievals(
    scenario: CoupledScenario,
    result: ScenarioResult,
    timeline: "TimelineCollector | None" = None,
) -> dict[int, float]:
    """Fluid-simulate all consumers' pulls starting simultaneously.

    Matches the paper's measurement: in the sequential scenario "SAP2 and
    SAP3 request data simultaneously", and in the concurrent scenario all
    CAP2 tasks pull at once.
    """
    network = NetworkModel(scenario.cluster)
    cluster = scenario.cluster
    # The retrieval phase starts where the enactment clock stopped, so its
    # link-occupancy records land after the engine's samples on the shared
    # timeline axis.
    t0 = result.engine.sim.now if result.engine is not None else 0.0
    sim = FluidSimulation(network, timeline=timeline, t0=t0)
    group_of = {}
    for app_id, by_rank in result.schedules.items():
        for rank, sched in by_rank.items():
            for i, plan in enumerate(sched.plans):
                tag = (app_id, rank, i)
                nbytes = plan.nbytes
                if result.injector is not None:
                    # Degraded links retransmit (expected-attempts inflation)
                    # and deliver a fraction of nominal bandwidth, so the
                    # effective byte volume grows monotonically with loss.
                    src_node = cluster.node_of_core(plan.src_core)
                    dst_node = cluster.node_of_core(plan.dst_core)
                    if src_node != dst_node:
                        inflate = result.injector.expected_attempts(
                            src_node, dst_node
                        ) / result.injector.bandwidth_factor(src_node, dst_node)
                        nbytes = int(round(nbytes * inflate))
                sim.add_transfer(
                    plan.src_core, plan.dst_core, nbytes, tag=tag
                )
                group_of[tag] = app_id
    if len(sim) == 0:
        return {app_id: 0.0 for app_id in result.schedules}
    timings = sim.run()
    by_app = FluidSimulation.completion_by_group(timings, group_of)
    return {app_id: by_app.get(app_id, 0.0) for app_id in result.schedules}
