"""Parameter sweeps over scenario configurations.

The evaluation's figures are sweeps (distribution pairs in Figs 8-9, scale
in Fig 16). This module packages that pattern for users: declare a grid of
scenario parameters, run every cell under one or more mappers, and get a
tidy list of records plus table/series renderings — the same machinery the
benches use, exposed as a first-class API and the CLI ``sweep`` command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.experiments import run_scenario
from repro.analysis.report import format_table, mib, ms, reduction
from repro.apps.scenarios import CoupledScenario
from repro.errors import ReproError
from repro.transport.message import TransferKind

__all__ = ["SweepRecord", "SweepResult", "run_sweep", "DIST_PATTERNS"]

#: the distribution pairs of Figs 8-9
DIST_PATTERNS: list[tuple[str, str]] = [
    ("blocked", "blocked"),
    ("cyclic", "cyclic"),
    ("block_cyclic", "block_cyclic"),
    ("blocked", "cyclic"),
    ("blocked", "block_cyclic"),
    ("cyclic", "block_cyclic"),
]


@dataclass(frozen=True)
class SweepRecord:
    """One (configuration, mapper) measurement."""

    label: str
    mapper: str
    coupling_network_bytes: int
    coupling_shm_bytes: int
    intra_app_network_bytes: int
    retrieval_seconds: float | None = None

    @property
    def coupling_total(self) -> int:
        return self.coupling_network_bytes + self.coupling_shm_bytes

    @property
    def network_fraction(self) -> float:
        total = self.coupling_total
        return self.coupling_network_bytes / total if total else 0.0


@dataclass
class SweepResult:
    """All records of a sweep, with rendering helpers."""

    records: list[SweepRecord] = field(default_factory=list)

    def by_label(self, label: str) -> dict[str, SweepRecord]:
        return {r.mapper: r for r in self.records if r.label == label}

    def labels(self) -> list[str]:
        seen: list[str] = []
        for r in self.records:
            if r.label not in seen:
                seen.append(r.label)
        return seen

    def reduction_table(
        self, baseline: str = "round-robin", improved: str = "data-centric"
    ) -> str:
        """Fig 8/9-style table: network coupling bytes + reduction."""
        rows = []
        for label in self.labels():
            per = self.by_label(label)
            if baseline not in per or improved not in per:
                raise ReproError(f"label {label!r} missing a mapper run")
            base = per[baseline].coupling_network_bytes
            improv = per[improved].coupling_network_bytes
            rows.append([
                label, mib(base), mib(improv),
                f"{reduction(base, improv):.0%}",
            ])
        return format_table(
            ["config", f"{baseline} net MiB", f"{improved} net MiB", "reduction"],
            rows,
        )

    def timing_table(self) -> str:
        rows = []
        for r in self.records:
            if r.retrieval_seconds is None:
                continue
            rows.append([r.label, r.mapper, ms(r.retrieval_seconds)])
        return format_table(["config", "mapper", "retrieval ms"], rows)


def run_sweep(
    configurations: Iterable[tuple[str, Callable[[], CoupledScenario]]],
    mappers: Iterable[str] = ("round-robin", "data-centric"),
    stencil_iterations: int = 0,
    time_transfers: bool = False,
) -> SweepResult:
    """Run every (configuration, mapper) cell.

    ``configurations`` yields ``(label, scenario_factory)`` pairs; a fresh
    scenario is built per run so state never leaks between cells.
    """
    result = SweepResult()
    mappers = list(mappers)
    for label, factory in configurations:
        for mapper in mappers:
            res = run_scenario(
                factory(), mapper,
                stencil_iterations=stencil_iterations,
                time_transfers=time_transfers,
            )
            m = res.metrics
            retrieval = (
                max(res.retrieval_times.values(), default=0.0)
                if time_transfers else None
            )
            result.records.append(
                SweepRecord(
                    label=label,
                    mapper=mapper,
                    coupling_network_bytes=m.network_bytes(TransferKind.COUPLING),
                    coupling_shm_bytes=m.shm_bytes(TransferKind.COUPLING),
                    intra_app_network_bytes=m.network_bytes(TransferKind.INTRA_APP),
                    retrieval_seconds=retrieval,
                )
            )
    return result
