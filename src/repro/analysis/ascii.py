"""Terminal charts for benchmark output.

The benches and examples print their figures as tables; these helpers add
quick visual forms — horizontal bar charts for the volume comparisons
(Figs 8-9, 12-15) and sparkline series for the scaling curves (Fig 16) —
so a terminal run reads like the paper's plots.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import AnalysisError

__all__ = ["bar_chart", "sparkline", "grouped_bars", "heat_strip"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR = "█"
_HEAT_LEVELS = " ░▒▓█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise AnalysisError("labels and values must have equal length")
    if not labels:
        return ""
    if any(v < 0 for v in values):
        raise AnalysisError("bar chart values must be non-negative")
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = _BAR * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label:>{label_w}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_bars(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 30,
    unit: str = "",
) -> str:
    """Several series per group (e.g. RR vs DC per distribution pattern)."""
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise AnalysisError(f"series {name!r} length != group count")
    peak = max((max(v) for v in series.values()), default=0) or 1.0
    label_w = max(
        [len(g) for g in groups] + [len(n) for n in series], default=1
    )
    lines = []
    for i, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, vals in series.items():
            v = vals[i]
            bar = _BAR * max(1 if v > 0 else 0, round(v / peak * width))
            lines.append(f"  {name:>{label_w}} | {bar} {v:g}{unit}")
    return "\n".join(lines)


def heat_strip(values: Sequence[float], levels: str = _HEAT_LEVELS) -> str:
    """One glyph per value, utilization in [0, 1] mapped to shade levels.

    Unlike :func:`sparkline` this uses an *absolute* scale — 0.0 is always
    blank and 1.0 always full — so strips from different runs (or rows of
    a node x time heat map) compare directly.
    """
    if len(levels) < 2:
        raise AnalysisError("heat strip needs at least two shade levels")
    out = []
    top = len(levels) - 1
    for v in values:
        v = float(v)
        if math.isnan(v) or math.isinf(v) or not 0.0 <= v <= 1.0:
            raise AnalysisError(
                f"heat strip values must be finite and within [0, 1], got {v}"
            )
        out.append(levels[round(v * top)])
    return "".join(out)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a series (min..max mapped to 8 glyph levels)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if any(math.isnan(v) or math.isinf(v) for v in vals):
        raise AnalysisError("sparkline values must be finite")
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(vals)
    out = []
    for v in vals:
        idx = round((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)
