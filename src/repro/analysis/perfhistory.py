"""Continuous performance history over the paper's canonical scenarios.

One :func:`run_history` call re-runs the canonical Fig-8 (concurrent
coupling), Fig-9 (sequential coupling), and Fig-16 (weak scaling)
workloads with tracing on, reduces each to a flat *profile* — makespan,
critical-path length, per-category attribution (via
:mod:`repro.obs.critpath`), straggler slack, and bytes moved — plus the
``jaguar_scale`` throughput scenario (:mod:`repro.apps.jaguar`), whose
profile is untraced (tracing a million-event run would measure the
tracer) and instead reports host wall-clock and events/sec — and

* writes the profiles as a schema-versioned ``BENCH_<n>.json`` snapshot,
* diffs them against the previous snapshot's tolerance bands
  (:mod:`repro.obs.anomaly`), yielding a pass/fail regression verdict,
* renders an ASCII dashboard (attribution bars per scenario, makespan
  sparkline across the whole ``BENCH_*`` series).

Both the ``repro-insitu perf`` subcommand and ``benchmarks/perf_history.py``
drive this module; CI runs the latter and fails the build on a red
verdict. Snapshots are deterministic — same tree, same JSON bytes — so a
committed ``BENCH_<n>.json`` doubles as the next PR's baseline.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.ascii import bar_chart, sparkline
from repro.errors import AnalysisError
from repro.obs.anomaly import Verdict, compare
from repro.obs.baseline import SCHEMA_VERSION, Baseline

__all__ = [
    "PerfScenario",
    "CANONICAL",
    "run_profile",
    "run_history",
    "sampled_utilization",
    "find_snapshots",
    "load_snapshot",
    "write_snapshot",
    "snapshot_baseline",
    "dashboard",
]

#: snapshot files are BENCH_<index>.json at the repo root (or --dir)
_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: simulated per-app compute so runs have a real makespan to attribute
_PRODUCER_COMPUTE = 0.01
_CONSUMER_COMPUTE = 0.008

#: weak-scaling producer sizes (bench scale; Fig 16 shape, not magnitude)
_FIG16_SCALES = (16, 32, 64)


@dataclass(frozen=True)
class PerfScenario:
    """One canonical workload the history tracks."""

    name: str
    title: str
    run: Callable[[], dict[str, Any]]


def _traced_profile(scenario, **kwargs) -> dict[str, Any]:
    """Run one scenario traced and reduce it to a flat metrics profile."""
    from repro.analysis.experiments import run_scenario
    from repro.obs.critpath import SpanGraph, analyze
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    result = run_scenario(
        scenario,
        tracer=tracer,
        time_transfers=True,
        producer_compute=_PRODUCER_COMPUTE,
        consumer_compute=_CONSUMER_COMPUTE,
        **kwargs,
    )
    graph = SpanGraph.from_tracer(tracer)
    a = analyze(graph)
    m = result.metrics
    return {
        "makespan": a["makespan"],
        "critical_path_length": a["critical_path_length"],
        "attribution": a["attribution"],
        "attribution_frac": a["attribution_fractions"],
        "path_segments": a["segments"],
        "max_slack": a["max_slack"],
        "bytes_network": float(m.network_bytes()),
        "bytes_shm": float(m.shm_bytes()),
        "bytes_total": float(m.network_bytes() + m.shm_bytes()),
        "sim_events": float(result.sim_events),
    }


def _run_fig08() -> dict[str, Any]:
    from repro.apps.scenarios import small_concurrent

    return _traced_profile(small_concurrent())


def _run_fig09() -> dict[str, Any]:
    from repro.apps.scenarios import small_sequential

    return _traced_profile(small_sequential())


def _run_fig16() -> dict[str, Any]:
    """Weak-scaling retrieval times; the largest point is fully profiled."""
    from repro.analysis.experiments import run_scenario
    from repro.apps.scenarios import concurrent_scenario

    times: dict[str, float] = {}
    for p in _FIG16_SCALES:
        scenario = concurrent_scenario(
            producer_tasks=p, consumer_tasks=max(p // 8, 1), task_side=16
        )
        result = run_scenario(scenario, time_transfers=True)
        times[f"retrieval_p{p}"] = result.retrieval_times[2]
    largest = _FIG16_SCALES[-1]
    profile = _traced_profile(concurrent_scenario(
        producer_tasks=largest,
        consumer_tasks=max(largest // 8, 1),
        task_side=16,
    ))
    profile.update(times)
    profile["retrieval_growth"] = (
        times[f"retrieval_p{largest}"] - times[f"retrieval_p{_FIG16_SCALES[0]}"]
    )
    return profile


def _run_jaguar() -> dict[str, Any]:
    """Untraced throughput run: 10k nodes, ~1M events (see
    :mod:`repro.apps.jaguar`). Only ``wall_clock``/``events_per_sec``
    vary between hosts; every simulated number is deterministic."""
    from repro.apps.jaguar import run_jaguar_scale

    return run_jaguar_scale().profile()


CANONICAL: tuple[PerfScenario, ...] = (
    PerfScenario("fig08_concurrent", "Fig 8 — concurrent coupling", _run_fig08),
    PerfScenario("fig09_sequential", "Fig 9 — sequential coupling", _run_fig09),
    PerfScenario("fig16_weak_scaling", "Fig 16 — weak scaling", _run_fig16),
    PerfScenario("jaguar_scale", "Jaguar scale — 10k nodes, ~1M events", _run_jaguar),
)


def run_profile(names: "list[str] | None" = None) -> dict[str, dict[str, Any]]:
    """Run the canonical scenarios (or the named subset) -> profiles."""
    wanted = set(names) if names else None
    known = {s.name for s in CANONICAL}
    if wanted is not None and not wanted <= known:
        raise AnalysisError(
            f"unknown perf scenario(s): {sorted(wanted - known)}; "
            f"known: {sorted(known)}"
        )
    out: dict[str, dict[str, Any]] = {}
    for scen in CANONICAL:
        if wanted is None or scen.name in wanted:
            out[scen.name] = scen.run()
    return out


# -- sampled utilization (opt-in; never enters the regression profiles) ----------------

#: fig-scale runs finish in tens of simulated milliseconds, so they need a
#: sub-millisecond grid to catch more than a handful of samples
_UTIL_SAMPLE_PERIOD = 5e-4
#: the jaguar run spans ~12 simulated seconds; a 0.1 s grid gives ~10
#: samples per iteration
_JAGUAR_SAMPLE_PERIOD = 0.1
#: far above any utilization run's sample count, so means are unbiased
_UTIL_RING = 65_536


def _summarize_timeline(tl, ring) -> dict[str, float]:
    samples = [r for r in ring.records if r["kind"] == "sample"]
    links = [r for r in ring.records if r["kind"] == "links"]
    out: dict[str, float] = {
        "samples": float(tl.samples),
        "link_samples": float(tl.link_samples),
        "overhead_wall_seconds": tl.overhead_wall,
    }
    if samples:
        frac = [r["busy_frac"] for r in samples]
        out["busy_frac_mean"] = sum(frac) / len(frac)
        out["busy_frac_peak"] = max(frac)
    if links:
        net = [r["net_util"] for r in links]
        mem = [r["mem_util"] for r in links]
        out["net_util_mean"] = sum(net) / len(net)
        out["net_util_peak"] = max(net)
        out["mem_util_mean"] = sum(mem) / len(mem)
        out["mem_util_peak"] = max(mem)
    return out


def _sampled_scenario(scenario) -> dict[str, float]:
    from repro.analysis.experiments import run_scenario
    from repro.obs.timeline import RingBufferSink, TimelineCollector

    ring = RingBufferSink(_UTIL_RING)
    tl = TimelineCollector(
        scenario.cluster, sample_period=_UTIL_SAMPLE_PERIOD, sinks=(ring,)
    )
    run_scenario(
        scenario,
        time_transfers=True,
        producer_compute=_PRODUCER_COMPUTE,
        consumer_compute=_CONSUMER_COMPUTE,
        timeline=tl,
    )
    return _summarize_timeline(tl, ring)


def sampled_utilization(
    names: "list[str] | None" = None,
) -> dict[str, dict[str, float]]:
    """Timeline-instrumented reruns -> per-scenario utilization summaries.

    These are *separate* runs from the profiling ones, so the regression
    profiles (and the committed ``BENCH_<n>.json`` bytes they are diffed
    against) stay byte-identical whether or not utilization is requested.
    """
    wanted = set(names) if names else None

    def want(name: str) -> bool:
        return wanted is None or name in wanted

    out: dict[str, dict[str, float]] = {}
    if want("fig08_concurrent"):
        from repro.apps.scenarios import small_concurrent

        out["fig08_concurrent"] = _sampled_scenario(small_concurrent())
    if want("fig09_sequential"):
        from repro.apps.scenarios import small_sequential

        out["fig09_sequential"] = _sampled_scenario(small_sequential())
    if want("fig16_weak_scaling"):
        from repro.apps.scenarios import concurrent_scenario

        largest = _FIG16_SCALES[-1]
        out["fig16_weak_scaling"] = _sampled_scenario(concurrent_scenario(
            producer_tasks=largest,
            consumer_tasks=max(largest // 8, 1),
            task_side=16,
        ))
    if want("jaguar_scale"):
        from repro.apps.jaguar import JaguarScaleConfig, run_jaguar_scale
        from repro.hardware.cluster import Cluster
        from repro.obs.timeline import RingBufferSink, TimelineCollector

        cluster = Cluster(JaguarScaleConfig().num_nodes)
        ring = RingBufferSink(_UTIL_RING)
        tl = TimelineCollector(
            cluster, sample_period=_JAGUAR_SAMPLE_PERIOD, sinks=(ring,)
        )
        run_jaguar_scale(timeline=tl)
        out["jaguar_scale"] = _summarize_timeline(tl, ring)
    return out


# -- snapshot files -------------------------------------------------------------------


def find_snapshots(directory: str = ".") -> list[tuple[int, str]]:
    """All ``BENCH_<n>.json`` files in ``directory``, sorted by index.

    A missing directory means no history yet — an empty list, not an
    ``OSError`` — so a first ``repro-insitu perf`` run in a fresh
    checkout reports "no baseline" instead of crashing.
    """
    if not os.path.isdir(directory):
        return []
    out = []
    for entry in os.listdir(directory):
        m = _SNAPSHOT_RE.match(entry)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, entry)))
    out.sort()
    return out


def load_snapshot(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    schema = int(snap.get("schema", 0))
    if schema > SCHEMA_VERSION:
        raise AnalysisError(
            f"snapshot {path} has schema {schema}, newer than supported "
            f"{SCHEMA_VERSION}"
        )
    return snap


def write_snapshot(
    path: str, profiles: dict[str, dict[str, Any]], label: str = ""
) -> None:
    """Write a deterministic, schema-versioned snapshot."""
    index = 0
    m = _SNAPSHOT_RE.match(os.path.basename(path))
    if m:
        index = int(m.group(1))
    snap = {
        "schema": SCHEMA_VERSION,
        "index": index,
        "label": label,
        "scenarios": {
            name: _sorted_tree(profile)
            for name, profile in sorted(profiles.items())
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=1)
        fh.write("\n")


def _sorted_tree(d: dict[str, Any]) -> dict[str, Any]:
    return {
        k: _sorted_tree(v) if isinstance(v, dict) else v
        for k, v in sorted(d.items())
    }


def snapshot_baseline(snap: dict[str, Any]) -> Baseline:
    """A :class:`Baseline` view of a loaded snapshot."""
    base = Baseline(label=str(snap.get("label", "")))
    for name, profile in snap.get("scenarios", {}).items():
        base.record(name, profile)
    return base


# -- dashboard ------------------------------------------------------------------------


def dashboard(
    profiles: dict[str, dict[str, Any]],
    history: "list[tuple[int, dict[str, Any]]] | None" = None,
    verdict: "Verdict | None" = None,
    utilization: "dict[str, dict[str, float]] | None" = None,
) -> str:
    """ASCII dashboard: attribution bars, history sparklines, verdict."""
    from repro.obs.critpath import CATEGORIES

    lines: list[str] = []
    titles = {s.name: s.title for s in CANONICAL}
    for name in sorted(profiles):
        p = profiles[name]
        lines.append(f"== {titles.get(name, name)} ==")
        if "critical_path_length" in p:
            lines.append(
                f"makespan {p['makespan'] * 1e3:.3f} ms, "
                f"critical path {p['critical_path_length'] * 1e3:.3f} ms "
                f"({p['path_segments']} segments), "
                f"bytes net/shm {p['bytes_network']:.0f}/{p['bytes_shm']:.0f}"
            )
        else:
            # Untraced (throughput) profiles carry no critical-path data.
            lines.append(
                f"makespan {p['makespan']:.3f} s, "
                f"bytes net/shm {p['bytes_network']:.0f}/{p['bytes_shm']:.0f}"
            )
        if "events_per_sec" in p:
            lines.append(
                f"{p['sim_events']:.0f} events in {p['wall_clock']:.2f} s "
                f"wall -> {p['events_per_sec']:.0f} events/sec"
            )
        att = p.get("attribution", {})
        cats = [c for c in CATEGORIES if c in att]
        if cats:
            lines.append(bar_chart(
                cats, [att[c] * 1e3 for c in cats], width=32, unit=" ms",
            ))
        u = (utilization or {}).get(name)
        if u:
            parts = []
            if "busy_frac_mean" in u:
                parts.append(
                    f"cores mean {u['busy_frac_mean']:.1%} "
                    f"peak {u['busy_frac_peak']:.1%}"
                )
            if "net_util_mean" in u:
                parts.append(
                    f"net mean {u['net_util_mean']:.1%} "
                    f"peak {u['net_util_peak']:.1%}"
                )
            if "mem_util_mean" in u:
                parts.append(
                    f"mem mean {u['mem_util_mean']:.1%} "
                    f"peak {u['mem_util_peak']:.1%}"
                )
            lines.append(
                "utilization (sampled): " + ", ".join(parts)
                + f"  [{u['samples']:.0f}+{u['link_samples']:.0f} samples, "
                f"overhead {u['overhead_wall_seconds'] * 1e3:.1f} ms wall]"
            )
        lines.append("")
    if history:
        lines.append("== history (BENCH_* series) ==")
        for name in sorted(profiles):
            series = [
                snap["scenarios"][name]["makespan"]
                for _idx, snap in history
                if name in snap.get("scenarios", {})
            ]
            series.append(profiles[name]["makespan"])
            indices = [str(i) for i, _ in history] + ["now"]
            lines.append(
                f"{name:>20} makespan {sparkline(series)} "
                f"({indices[0]} .. {indices[-1]})"
            )
        lines.append("")
    if verdict is not None:
        lines.append("== regression check ==")
        lines.append(verdict.summary())
    return "\n".join(lines).rstrip() + "\n"


# -- driver ---------------------------------------------------------------------------


def run_history(
    out: "str | None" = None,
    directory: str = ".",
    scenarios: "list[str] | None" = None,
    label: str = "",
    utilization: bool = False,
) -> tuple[dict[str, dict[str, Any]], "Verdict | None", str]:
    """Run the harness end to end.

    Returns ``(profiles, verdict, dashboard_text)``. The verdict is None
    when no previous snapshot exists to diff against. When ``out`` is
    given the fresh snapshot is written there (after the diff, so a
    snapshot never serves as its own baseline). ``utilization`` appends a
    sampled-utilization line per scenario to the dashboard, measured in
    separate timeline-instrumented runs — the profiles (and any written
    snapshot) are byte-identical either way.
    """
    profiles = run_profile(scenarios)
    util = sampled_utilization(scenarios) if utilization else None
    snapshots = find_snapshots(directory)
    if out is not None:
        out_abs = os.path.abspath(out)
        snapshots = [
            (i, p) for i, p in snapshots if os.path.abspath(p) != out_abs
        ]
    verdict: "Verdict | None" = None
    history: list[tuple[int, dict[str, Any]]] = []
    if snapshots:
        history = [(i, load_snapshot(p)) for i, p in snapshots]
        prev = history[-1][1]
        verdict = compare(snapshot_baseline(prev), profiles)
    text = dashboard(
        profiles, history=history, verdict=verdict, utilization=util
    )
    if out is not None:
        write_snapshot(out, profiles, label=label)
    return profiles, verdict, text
