"""Plain-text reporting helpers for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep the tables aligned and the units consistent (MiB for data
volumes, milliseconds for times).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "mib", "ms", "reduction", "series"]


def mib(nbytes: float) -> float:
    """Bytes -> MiB."""
    return nbytes / (1 << 20)


def ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3


def reduction(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` vs ``baseline`` (0..1)."""
    if baseline <= 0:
        return 0.0
    return 1.0 - improved / baseline


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series(label: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One figure series as `label: (x, y) (x, y) ...` for quick eyeballing."""
    pts = " ".join(f"({x}, {y:.3g})" for x, y in zip(xs, ys))
    return f"{label}: {pts}"
