"""SQLite-backed run registry: durable cross-run history.

Every CLI run that passes ``--runs-db PATH`` records itself here: the
config hash (sha256 over the run's JSON-safe arguments, sorted keys),
the fault seed, headline metrics (makespan, byte volumes, retrieval
times), the critical-path attribution when a trace was captured, and the
paths of any ledger/trace artifacts. ``repro-insitu runs list/show/diff``
reads it back — the diff between a faulty and a clean run shows exactly
where the lost time was attributed.

The registry is plain stdlib :mod:`sqlite3`, one file, two tables
(``runs`` and ``metrics``) plus a schema-version cell; a newer on-disk
schema than this module understands is refused instead of guessed at.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from typing import Any

from repro.errors import AnalysisError

__all__ = ["RunRegistry", "SCHEMA_VERSION", "config_hash"]

#: bump when the table layout changes; older files are still readable,
#: newer files are refused.
SCHEMA_VERSION = 1


def config_hash(config: dict[str, Any]) -> str:
    """sha256 over the sorted-keys JSON form of a run's configuration."""
    payload = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class RunRegistry:
    """One SQLite file of recorded runs; safe to share across sessions."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._db = sqlite3.connect(path)
        self._init_schema()

    def _init_schema(self) -> None:
        db = self._db
        db.execute(
            "CREATE TABLE IF NOT EXISTS meta "
            "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        row = db.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()
        if row is None:
            db.execute(
                "INSERT INTO meta VALUES ('schema', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row[0]) > SCHEMA_VERSION:
            raise AnalysisError(
                f"{self.path}: registry schema v{row[0]} is newer than "
                f"supported v{SCHEMA_VERSION}"
            )
        db.execute(
            "CREATE TABLE IF NOT EXISTS runs ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " created REAL NOT NULL,"
            " command TEXT NOT NULL,"
            " scenario TEXT NOT NULL,"
            " mapper TEXT NOT NULL,"
            " seed INTEGER NOT NULL DEFAULT 0,"
            " config_hash TEXT NOT NULL,"
            " config TEXT NOT NULL,"
            " makespan REAL,"
            " label TEXT NOT NULL DEFAULT '',"
            " ledger_path TEXT,"
            " trace_path TEXT)"
        )
        db.execute(
            "CREATE TABLE IF NOT EXISTS metrics ("
            " run_id INTEGER NOT NULL REFERENCES runs(id),"
            " name TEXT NOT NULL,"
            " value REAL NOT NULL,"
            " PRIMARY KEY (run_id, name))"
        )
        db.commit()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def record_run(
        self,
        *,
        command: str,
        scenario: str,
        mapper: str,
        config: dict[str, Any],
        seed: int = 0,
        makespan: "float | None" = None,
        metrics: "dict[str, float] | None" = None,
        attribution: "dict[str, float] | None" = None,
        ledger_path: "str | None" = None,
        trace_path: "str | None" = None,
        label: str = "",
    ) -> int:
        """Insert one run; returns its registry id.

        ``attribution`` (critical-path seconds per category) lands in the
        metrics table under ``attribution.<category>`` keys, so ``diff``
        surfaces where two runs spent their makespans differently.
        """
        merged = dict(metrics or {})
        for cat, seconds in (attribution or {}).items():
            merged[f"attribution.{cat}"] = seconds
        cur = self._db.execute(
            "INSERT INTO runs (created, command, scenario, mapper, seed,"
            " config_hash, config, makespan, label, ledger_path, trace_path)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                time.time(), command, scenario, mapper, seed,
                config_hash(config),
                json.dumps(config, sort_keys=True, default=str),
                makespan, label, ledger_path, trace_path,
            ),
        )
        run_id = cur.lastrowid
        self._db.executemany(
            "INSERT INTO metrics (run_id, name, value) VALUES (?, ?, ?)",
            [
                (run_id, name, float(value))
                for name, value in sorted(merged.items())
            ],
        )
        self._db.commit()
        return run_id

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    _RUN_COLS = (
        "id", "created", "command", "scenario", "mapper", "seed",
        "config_hash", "config", "makespan", "label", "ledger_path",
        "trace_path",
    )

    def list_runs(self) -> list[dict[str, Any]]:
        """All runs, oldest first, without their metric rows."""
        rows = self._db.execute(
            f"SELECT {', '.join(self._RUN_COLS)} FROM runs ORDER BY id"
        ).fetchall()
        return [dict(zip(self._RUN_COLS, row)) for row in rows]

    def get_run(self, run_id: int) -> dict[str, Any]:
        """One run with its ``metrics`` dict; raises on an unknown id."""
        row = self._db.execute(
            f"SELECT {', '.join(self._RUN_COLS)} FROM runs WHERE id = ?",
            (run_id,),
        ).fetchone()
        if row is None:
            raise AnalysisError(
                f"{self.path}: no run #{run_id} in the registry"
            )
        run = dict(zip(self._RUN_COLS, row))
        run["metrics"] = {
            name: value
            for name, value in self._db.execute(
                "SELECT name, value FROM metrics WHERE run_id = ?"
                " ORDER BY name",
                (run_id,),
            )
        }
        return run

    def diff(
        self, a: int, b: int
    ) -> list[tuple[str, "float | None", "float | None"]]:
        """Metric-by-metric comparison ``(name, value_a, value_b)``.

        Covers the union of both runs' metric names (``None`` marks a
        metric one run never produced, e.g. ``attribution.recovery`` on
        a clean run), makespan included, sorted by name.
        """
        ra, rb = self.get_run(a), self.get_run(b)
        ma = dict(ra["metrics"])
        mb = dict(rb["metrics"])
        if ra["makespan"] is not None:
            ma["makespan"] = ra["makespan"]
        if rb["makespan"] is not None:
            mb["makespan"] = rb["makespan"]
        return [
            (name, ma.get(name), mb.get(name))
            for name in sorted(set(ma) | set(mb))
        ]

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
