"""Staging-area data sharing — the related-work baseline (paper §VI).

DataSpaces-style staging shares coupled data *indirectly*: producers push
their regions to a dedicated set of staging nodes, consumers pull from
there. The paper argues this "would result in two data movements (i.e.,
data producing application to the space, then space to data consuming
application) and cause extra cost for tightly coupled scientific workflow".

:class:`StagingArea` implements that architecture over the same substrates
(SFC-partitioned placement of regions onto staging cores, HybridDART
transfers), so the in-situ vs staging comparison in
``benchmarks/test_ablation_staging.py`` is apples-to-apples.
"""

from __future__ import annotations

from repro.cods.objects import (
    DataObject,
    RegionProduct,
    region_bounding_box,
    region_cells,
    region_from_box,
)
from repro.cods.schedule import CommSchedule, compute_schedule
from repro.domain.box import Box
from repro.errors import NetworkPartitionError, SpaceError
from repro.hardware.cluster import Cluster
from repro.sfc.linearize import DomainLinearizer
from repro.transport.hybriddart import HybridDART
from repro.transport.message import TransferKind, TransferRecord

__all__ = ["StagingArea"]


class StagingArea:
    """An in-memory store on dedicated staging nodes.

    ``staging_nodes`` are extra nodes of the cluster reserved for staging
    (the paper: "a set of additional compute nodes allocated by users when
    launching the parallel simulations"). The domain's SFC index space is
    partitioned across the staging cores; each producer region is stored on
    the staging core owning the region's first index span.
    """

    def __init__(
        self,
        cluster: Cluster,
        domain_extents: tuple[int, ...],
        staging_nodes: list[int],
        dart: HybridDART | None = None,
        linearizer: DomainLinearizer | None = None,
    ) -> None:
        if not staging_nodes:
            raise SpaceError("staging area needs at least one node")
        for node in staging_nodes:
            if not 0 <= node < cluster.num_nodes:
                raise SpaceError(f"staging node {node} out of range")
        self.cluster = cluster
        self.dart = dart if dart is not None else HybridDART(cluster)
        self.linearizer = (
            linearizer if linearizer is not None
            else DomainLinearizer(domain_extents)
        )
        self.domain = Box.from_extents(domain_extents)
        self.staging_cores: list[int] = [
            core for node in staging_nodes for core in cluster.cores_of_node(node)
        ]
        self.intervals = self.linearizer.partition_index_space(
            len(self.staging_cores)
        )
        # Staged objects per core. Unlike CoDS object stores, many producer
        # regions of the same (var, version) funnel to one staging core, so
        # a plain list (not a keyed store) holds them.
        self._stores: dict[int, list[DataObject]] = {
            core: [] for core in self.staging_cores
        }
        self._span_cube_order = max(0, self.linearizer.order - 4)

    # -- placement -----------------------------------------------------------------

    def _staging_core_for(self, region: RegionProduct) -> int:
        """Staging core owning the region's first SFC span."""
        bbox = region_bounding_box(region)
        spans = self.linearizer.spans_for_box(bbox, self._span_cube_order)
        if not spans:
            raise SpaceError("cannot stage an empty region")
        first = spans[0][0]
        for i, (lo, hi) in enumerate(self.intervals):
            if lo <= first < hi:
                return self.staging_cores[i]
        raise SpaceError("span outside the staged index space")

    # -- the two-hop data path ------------------------------------------------------

    def put(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int = 8,
        version: int = 0,
        app_id: int = -1,
    ) -> tuple[DataObject, TransferRecord]:
        """First movement: producer core -> staging core."""
        qregion = (
            region_from_box(region) if isinstance(region, Box) else tuple(region)
        )
        if region_cells(qregion) == 0:
            raise SpaceError("cannot stage an empty region")
        target = self._staging_core_for(qregion)
        obj = DataObject(
            var=var, version=version, region=qregion,
            owner_core=target, element_size=element_size,
        )
        self._stores[target].append(obj)
        try:
            rec = self.dart.transfer(
                src_core=core, dst_core=target, nbytes=obj.nbytes,
                kind=TransferKind.COUPLING, app_id=app_id, var=var,
            )
        except NetworkPartitionError:
            # Staging has no partition tolerance (baseline exposure), but a
            # push that never crossed the cut must not leave a ghost object
            # on the staging core.
            self._stores[target].remove(obj)
            raise
        return obj, rec

    def get(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None = None,
        app_id: int = -1,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        """Second movement: staging cores -> consumer core."""
        qregion = (
            region_from_box(region) if isinstance(region, Box) else tuple(region)
        )
        locations = []
        from repro.cods.dht import ObjectLocation

        for store in self._stores.values():
            for obj in store:
                if obj.var != var:
                    continue
                if version is not None and obj.version != version:
                    continue
                locations.append(
                    ObjectLocation(
                        var=obj.var, version=obj.version,
                        owner_core=obj.owner_core, region=obj.region,
                        element_size=obj.element_size,
                    )
                )
        schedule = compute_schedule(var, core, qregion, locations)
        records = [
            self.dart.transfer(
                src_core=p.src_core, dst_core=p.dst_core, nbytes=p.nbytes,
                kind=TransferKind.COUPLING, app_id=app_id, var=var,
            )
            for p in schedule.plans
        ]
        return schedule, records

    # -- fault handling -------------------------------------------------------------

    def on_node_crash(self, node: int) -> int:
        """Drop objects staged on a crashed node's cores.

        Staging has no replication: data staged on the dead node is simply
        gone (the baseline's exposure to faults is part of the comparison).
        Returns the number of staged objects lost.
        """
        if not 0 <= node < self.cluster.num_nodes:
            raise SpaceError(f"node {node} out of range")
        crashed = set(self.cluster.cores_of_node(node))
        lost = 0
        for core in self.staging_cores:
            if core in crashed:
                lost += len(self._stores[core])
                self._stores[core] = []
        return lost

    # -- introspection --------------------------------------------------------------

    def staged_bytes(self) -> int:
        return sum(obj.nbytes for objs in self._stores.values() for obj in objs)

    def store_loads(self) -> dict[int, int]:
        """Bytes held per staging core (balance diagnostics)."""
        return {
            core: sum(obj.nbytes for obj in objs)
            for core, objs in self._stores.items()
        }
