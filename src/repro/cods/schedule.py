"""Communication schedules and their reuse cache.

"A communication schedule represents the sequence of data transfers required
to correctly move data between coupled applications" (paper §IV-A). Given
the locations answered by the DHT (or a producer decomposition for the
concurrent path), the consumer computes which owner cores to pull which byte
volumes from.

"As data coupling patterns are often repeated in iteration-based scientific
simulations, these schedules can be reused, which improves performance" —
:class:`ScheduleCache` keys schedules by (variable, region, consumer core)
and is deliberately version-agnostic so iteration ``t+1`` reuses iteration
``t``'s schedule, skipping the DHT round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cods.dht import ObjectLocation
from repro.cods.objects import (
    RegionProduct,
    region_from_box,
    region_overlap_cells,
)
from repro.domain.box import Box
from repro.errors import ScheduleError

__all__ = [
    "TransferPlan",
    "CommSchedule",
    "compute_schedule",
    "ScheduleCache",
    "BundleScheduleCache",
]


@dataclass(frozen=True)
class TransferPlan:
    """One planned pull: ``nbytes`` from ``src_core`` into ``dst_core``."""

    src_core: int
    dst_core: int
    cells: int
    nbytes: int
    var: str

    def __post_init__(self) -> None:
        if self.cells <= 0 or self.nbytes <= 0:
            raise ScheduleError("transfer plan must move a positive volume")


@dataclass(frozen=True)
class CommSchedule:
    """All pulls needed to assemble one requested region on one core."""

    var: str
    dst_core: int
    region: RegionProduct
    plans: tuple[TransferPlan, ...] = field(default=())

    @property
    def region_box(self) -> Box:
        """Bounding box of the requested region."""
        from repro.cods.objects import region_bounding_box

        return region_bounding_box(self.region)

    @property
    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.plans)

    @property
    def total_cells(self) -> int:
        return sum(p.cells for p in self.plans)

    @property
    def num_sources(self) -> int:
        return len({p.src_core for p in self.plans})

    def local_bytes(self, node_of_core) -> int:
        """Bytes pulled from cores on the consumer's own node."""
        dst_node = node_of_core(self.dst_core)
        return sum(
            p.nbytes for p in self.plans if node_of_core(p.src_core) == dst_node
        )


def _as_region(region: "Box | RegionProduct") -> RegionProduct:
    return region_from_box(region) if isinstance(region, Box) else tuple(region)


def compute_schedule(
    var: str,
    dst_core: int,
    region: "Box | RegionProduct",
    locations: list[ObjectLocation],
    require_complete: bool = True,
) -> CommSchedule:
    """Build the pull schedule for a requested region from DHT query results.

    The region may be a box or an exact interval product (cyclic consumer
    decompositions). Overlap volumes are computed dimension-wise; when an
    owner holds several objects of the variable (multiple versions), only the
    newest version per owner contributes, matching get-latest semantics.

    With ``require_complete`` (the default), raises
    :class:`ScheduleError` if the located objects do not cover every cell of
    the requested region.
    """
    qregion = _as_region(region)
    from repro.cods.objects import region_cells

    wanted = region_cells(qregion)
    # Newest version per distinct object (an object is identified by its
    # owner core *and* region — one core may hold several disjoint regions).
    newest: dict[tuple[int, RegionProduct], ObjectLocation] = {}
    for loc in locations:
        key = (loc.owner_core, loc.region)
        cur = newest.get(key)
        if cur is None or loc.version > cur.version:
            newest[key] = loc

    # One pull per owner core, aggregating all its contributing objects.
    per_owner: dict[int, list[int]] = {}  # owner -> [cells, bytes]
    covered = 0
    for loc in newest.values():
        cells = region_overlap_cells(qregion, loc.region)
        if cells == 0:
            continue
        covered += cells
        agg = per_owner.setdefault(loc.owner_core, [0, 0])
        agg[0] += cells
        agg[1] += cells * loc.element_size
    plans = [
        TransferPlan(
            src_core=owner,
            dst_core=dst_core,
            cells=per_owner[owner][0],
            nbytes=per_owner[owner][1],
            var=var,
        )
        for owner in sorted(per_owner)
    ]
    if require_complete and covered != wanted:
        raise ScheduleError(
            f"located objects cover {covered} of {wanted} cells of "
            f"{var!r} (owners may overlap or data is missing)"
        )
    return CommSchedule(var=var, dst_core=dst_core, region=qregion, plans=tuple(plans))


def producer_schedule(
    var: str,
    dst_core: int,
    region: "Box | RegionProduct",
    producer_regions: list[tuple[int, RegionProduct]],
    element_size: int,
) -> CommSchedule:
    """Schedule for *concurrent* coupling: sources come from the producer
    application's decomposition (``(core, region)`` pairs) instead of the
    DHT — the paper's second location-discovery mechanism (§III-B)."""
    from repro.cods.objects import region_cells

    qregion = _as_region(region)
    wanted = region_cells(qregion)
    plans: list[TransferPlan] = []
    covered = 0
    for core, pregion in producer_regions:
        cells = region_overlap_cells(qregion, pregion)
        if cells == 0:
            continue
        covered += cells
        plans.append(
            TransferPlan(
                src_core=core,
                dst_core=dst_core,
                cells=cells,
                nbytes=cells * element_size,
                var=var,
            )
        )
    if covered != wanted:
        raise ScheduleError(
            f"producer regions cover {covered} of {wanted} cells of {var!r}"
        )
    return CommSchedule(var=var, dst_core=dst_core, region=qregion, plans=tuple(plans))


class ScheduleCache:
    """Version-agnostic schedule cache with hit/miss counters.

    When bound to a :class:`~repro.obs.metrics.MetricsRegistry`, every
    lookup also increments the ``schedule.cache.hit`` / ``.miss`` counters,
    so cache effectiveness appears in ``--metrics-out`` snapshots and the
    ``trace-report`` profiler without touching the local counters the
    ablation benches read.
    """

    def __init__(self, max_entries: int = 4096, registry=None) -> None:
        if max_entries <= 0:
            raise ScheduleError("cache must allow at least one entry")
        self.max_entries = max_entries
        self._cache: dict[tuple[str, int, RegionProduct], CommSchedule] = {}
        self.hits = 0
        self.misses = 0
        self._m_hit = self._m_miss = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "ScheduleCache":
        """Mirror hit/miss counts into ``schedule.cache.*`` counters."""
        self._m_hit = registry.counter("schedule.cache.hit")
        self._m_miss = registry.counter("schedule.cache.miss")
        # Materialize both cells so snapshots show 0 rather than nothing.
        self._m_hit.touch()
        self._m_miss.touch()
        return self

    def get(
        self, var: str, dst_core: int, region: "Box | RegionProduct"
    ) -> CommSchedule | None:
        sched = self._cache.get((var, dst_core, _as_region(region)))
        if sched is None:
            self.misses += 1
            if self._m_miss is not None:
                self._m_miss.inc()
        else:
            self.hits += 1
            if self._m_hit is not None:
                self._m_hit.inc()
        return sched

    def put(self, schedule: CommSchedule) -> None:
        if len(self._cache) >= self.max_entries:
            # Simple FIFO eviction: drop the oldest insertion.
            self._cache.pop(next(iter(self._cache)))
        key = (schedule.var, schedule.dst_core, schedule.region)
        self._cache[key] = schedule

    def invalidate(self, var: str) -> int:
        """Drop every cached schedule for one variable; returns how many."""
        stale = [k for k in self._cache if k[0] == var]
        for k in stale:
            del self._cache[k]
        return len(stale)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._cache)


class BundleScheduleCache:
    """Whole-bundle schedule cache keyed by (bundle topology, placement).

    :class:`ScheduleCache` reuses one consumer rank's schedule at a time;
    at Jaguar scale a coupling iteration issues *thousands* of per-rank
    lookups, and even all-hit traffic through the per-rank cache costs a
    dict probe per rank per iteration. This cache keys the **entire
    bundle** — the full tuple of ``(dst_core, region)`` requests plus a
    source-placement signature — so iteration ``t+1`` recovers every
    schedule of iteration ``t`` in one probe and skips the per-rank
    DHT-query/schedule path wholesale.

    Like the per-rank cache it is version-agnostic by design: repeated
    couplings of an iterative simulation re-pull the same regions from the
    same placement, which is exactly the reuse the paper's §IV-A argues
    for. Counters mirror into ``schedule.bundle_cache.hit`` / ``.miss``
    when bound to a :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self, max_entries: int = 256, registry=None) -> None:
        if max_entries <= 0:
            raise ScheduleError("cache must allow at least one entry")
        self.max_entries = max_entries
        self._cache: dict[tuple, tuple[CommSchedule, ...]] = {}
        self.hits = 0
        self.misses = 0
        self._m_hit = self._m_miss = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "BundleScheduleCache":
        """Mirror hit/miss counts into ``schedule.bundle_cache.*``."""
        self._m_hit = registry.counter("schedule.bundle_cache.hit")
        self._m_miss = registry.counter("schedule.bundle_cache.miss")
        self._m_hit.touch()
        self._m_miss.touch()
        return self

    @staticmethod
    def key_for(
        var: str,
        mode: str,
        requests: "tuple[tuple[int, RegionProduct], ...]",
        sources_sig: object,
    ) -> tuple:
        """Cache key: coupling variable, coupling mode, the consumer side's
        full (core, region) request tuple, and a signature of the producer
        side's placement (concurrent producer declarations, or the pinned
        version for the sequential path)."""
        return (var, mode, requests, sources_sig)

    def get(self, key: tuple) -> "tuple[CommSchedule, ...] | None":
        scheds = self._cache.get(key)
        if scheds is None:
            self.misses += 1
            if self._m_miss is not None:
                self._m_miss.inc()
        else:
            self.hits += 1
            if self._m_hit is not None:
                self._m_hit.inc()
        return scheds

    def put(self, key: tuple, schedules: "tuple[CommSchedule, ...]") -> None:
        if len(self._cache) >= self.max_entries:
            self._cache.pop(next(iter(self._cache)))  # FIFO eviction
        self._cache[key] = tuple(schedules)

    def invalidate(self, var: str) -> int:
        """Drop every cached bundle for one variable; returns how many."""
        stale = [k for k in self._cache if k[0] == var]
        for k in stale:
            del self._cache[k]
        return len(stale)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._cache)
