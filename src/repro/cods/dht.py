"""The SFC-indexed distributed hash table of CoDS (paper §IV-A, Fig 6).

The 1-D Hilbert index space is divided into contiguous intervals, one per
DHT core ("each compute node has one DHT core"); each DHT core keeps a
*location table* recording, per shared variable, which execution client
stores data for the regions that fall in its interval.

Registrations and queries route by converting the geometric descriptor to
index spans (:class:`~repro.sfc.linearize.DomainLinearizer`) and walking the
interval partition; each touched DHT core costs one control RPC through
HybridDART, so lookup traffic shows up in the metrics like any other
communication.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.cods.objects import DataObject, RegionProduct, region_from_box
from repro.domain.box import Box
from repro.errors import LookupError_, NetworkPartitionError, SpaceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.sfc.linearize import DomainLinearizer
from repro.transport.hybriddart import HybridDART

__all__ = ["ObjectLocation", "SpatialDHT"]

#: distinguishes RPC endpoints when multiple DHTs share one DART
_DHT_IDS = itertools.count()


@dataclass(frozen=True)
class ObjectLocation:
    """A query answer: where (part of) a variable's region is stored."""

    var: str
    version: int
    owner_core: int
    region: RegionProduct
    element_size: int
    #: primary copy's core when this entry points at a replica (None = primary)
    primary_core: "int | None" = None

    @property
    def is_replica(self) -> bool:
        return self.primary_core is not None

    @property
    def logical_owner(self) -> int:
        """Core of the primary copy (``owner_core`` for primaries)."""
        return self.owner_core if self.primary_core is None else self.primary_core


class SpatialDHT:
    """Interval-partitioned DHT over the linearized domain."""

    def __init__(
        self,
        linearizer: DomainLinearizer,
        dht_cores: list[int],
        dart: HybridDART | None = None,
        span_cube_order: int | None = None,
    ) -> None:
        if not dht_cores:
            raise SpaceError("need at least one DHT core")
        if len(set(dht_cores)) != len(dht_cores):
            raise SpaceError("DHT cores must be distinct")
        self.linearizer = linearizer
        self.dht_cores = list(dht_cores)
        self.dart = dart
        if span_cube_order is None:
            # Spans here only *route* registrations/queries — exactness comes
            # from interval-product filtering — so stop the descent a few
            # levels up: boxes unaligned to the SFC grid otherwise decompose
            # into per-cell spans (prohibitive at order 10 domains).
            span_cube_order = max(0, linearizer.order - 4)
        self.span_cube_order = span_cube_order
        self.intervals = linearizer.partition_index_space(len(dht_cores))
        self._starts = [lo for lo, _ in self.intervals]
        # Location tables: one per DHT core; var -> list of entries.
        self._tables: list[dict[str, list[ObjectLocation]]] = [
            {} for _ in dht_cores
        ]
        # RPC endpoints on each DHT core: the actual table mutation happens
        # in register()/query(); the handlers just model the service side of
        # the control round-trip. Endpoint names carry a per-instance id so
        # several spaces (DHTs) can share one DART.
        self._rpc_suffix = f"#{next(_DHT_IDS)}"
        self.failed_cores: list[int] = []
        #: interval-assignment epoch, bumped on every :meth:`fail_core`.
        #: Callers that cached routing decisions can compare epochs instead
        #: of diffing the interval table.
        self.epoch = 0
        #: registrations skipped because the DHT core sat across an active
        #: network cut; heal-time reconciliation rebuilds the tables when
        #: non-zero (see CoDS.reconcile_partition).
        self.deferred_registrations = 0
        self._last_hops = 0
        # Lookup/registration instruments live in the transport's registry
        # when one is attached (a private registry otherwise, so the code
        # path is identical either way).
        registry = dart.registry if dart is not None else MetricsRegistry()
        self._m_lookups = registry.counter("dht.lookups")
        self._m_registrations = registry.counter("dht.registrations")
        self._m_hops = registry.histogram(
            "dht.hops", buckets=(1, 2, 4, 8, 16, 32)
        )
        if self.dart is not None:
            for core in dht_cores:
                self.dart.register_handler(
                    core, "dht_register" + self._rpc_suffix, lambda: None
                )
                self.dart.register_handler(
                    core, "dht_query" + self._rpc_suffix, lambda: None
                )

    # -- routing -----------------------------------------------------------------

    def _owners_of_spans(self, spans: list[tuple[int, int]]) -> list[int]:
        """DHT-core indices responsible for the given index spans."""
        owners: set[int] = set()
        n = len(self.intervals)
        for lo, hi in spans:
            i = bisect.bisect_right(self._starts, lo) - 1
            while i < n and self.intervals[i][0] < hi:
                if self.intervals[i][1] > lo:
                    owners.add(i)
                i += 1
        return sorted(owners)

    def responsible_cores(self, box: Box) -> list[int]:
        """Global core ids of DHT cores responsible for a box."""
        spans = self.linearizer.spans_for_box(box, self.span_cube_order)
        return [self.dht_cores[i] for i in self._owners_of_spans(spans)]

    def _rpc(self, src_core: int, dht_index: int, op: str) -> None:
        """Account one control round-trip to a DHT core (if DART attached)."""
        if self.dart is not None:
            self.dart.rpc(src_core, self.dht_cores[dht_index], op + self._rpc_suffix)

    # -- registration ------------------------------------------------------------------

    def register(self, obj: DataObject, account: bool = True) -> int:
        """Insert an object's location; returns the number of DHT cores touched.

        The object's *bounding box* routes the registration (DataSpaces
        registers bboxes); the exact interval-product region is stored in the
        location entries so queries can compute precise overlaps.

        ``account=False`` records the entry without the control RPCs or the
        registration counter — used when re-loading state from a checkpoint,
        whose original registrations were already paid for.
        """
        bbox = obj.bounding_box
        if bbox.is_empty:
            return 0
        tracer = self.dart.tracer if self.dart is not None else NULL_TRACER
        if not tracer.enabled:
            return self._do_register(obj, bbox, account)
        with tracer.span(
            "dht.register", var=obj.var, owner=obj.owner_core
        ) as span:
            hops = self._do_register(obj, bbox, account)
            span.set(hops=hops)
            return hops

    def _do_register(self, obj: DataObject, bbox: Box, account: bool = True) -> int:
        spans = self.linearizer.spans_for_box(bbox, self.span_cube_order)
        owners = self._owners_of_spans(spans)
        if not owners:
            raise SpaceError(f"no DHT core covers object {obj.key()}")
        loc = ObjectLocation(
            var=obj.var,
            version=obj.version,
            owner_core=obj.owner_core,
            region=obj.region,
            element_size=obj.element_size,
            primary_core=obj.primary_core,
        )
        if account:
            self._m_registrations.inc()
        for i in owners:
            if account:
                try:
                    self._rpc(obj.owner_core, i, "dht_register")
                except NetworkPartitionError:
                    # The DHT core sits across an active cut: its location
                    # table misses this entry until heal-time rebuild.
                    self.deferred_registrations += 1
                    continue
            self._tables[i].setdefault(obj.var, []).append(loc)
        return len(owners)

    def unregister(
        self, var: str, version: int, owner_core: int, of: "int | None" = None
    ) -> int:
        """Remove matching entries from every location table.

        ``of`` selects by *logical* owner: the core's own primary by
        default, or a replica of core ``of`` held on ``owner_core`` — so
        dropping a replica never takes down the hosting core's primary of
        the same variable.
        """
        logical = owner_core if of is None else of
        removed = 0
        for table in self._tables:
            entries = table.get(var)
            if not entries:
                continue
            kept = [
                e for e in entries
                if not (e.version == version and e.owner_core == owner_core
                        and e.logical_owner == logical)
            ]
            removed += len(entries) - len(kept)
            if kept:
                table[var] = kept
            else:
                del table[var]
        return removed

    # -- queries -----------------------------------------------------------------------

    def query(
        self,
        src_core: int,
        var: str,
        box: Box,
        version: int | None = None,
    ) -> list[ObjectLocation]:
        """Locations of data for ``var`` overlapping ``box``.

        Routes to the DHT cores whose intervals the box's spans touch (one
        control RPC each), collects entries, deduplicates (an object can be
        registered at several DHT cores), and filters by actual geometric
        overlap with the query box.
        """
        tracer = self.dart.tracer if self.dart is not None else NULL_TRACER
        if not tracer.enabled:
            return self._do_query(src_core, var, box, version)
        with tracer.span("dht.query", var=var, src=src_core) as span:
            out = self._do_query(src_core, var, box, version)
            span.set(hops=self._last_hops, results=len(out))
            return out

    def _do_query(
        self,
        src_core: int,
        var: str,
        box: Box,
        version: int | None = None,
    ) -> list[ObjectLocation]:
        spans = self.linearizer.spans_for_box(box, self.span_cube_order)
        owners = self._owners_of_spans(spans)
        if not owners:
            raise LookupError_(f"query box {box} maps to no DHT interval")
        self._last_hops = len(owners)
        self._m_lookups.inc()
        self._m_hops.observe(len(owners))
        qregion = region_from_box(box)
        seen: set[tuple[str, int, int]] = set()
        out: list[ObjectLocation] = []
        unreachable = 0
        for i in owners:
            try:
                self._rpc(src_core, i, "dht_query")
            except NetworkPartitionError:
                # Degraded metadata view: entries on cut-off DHT cores are
                # invisible; the query still serves from reachable ones.
                unreachable += 1
                continue
            for loc in self._tables[i].get(var, ()):
                if version is not None and loc.version != version:
                    continue
                key = (loc.var, loc.version, loc.owner_core, loc.primary_core)
                if key in seen:
                    continue
                seen.add(key)
                overlap = 1
                for sq, sr in zip(qregion, loc.region):
                    overlap *= sq.intersection_measure(sr)
                    if overlap == 0:
                        break
                if overlap > 0:
                    out.append(loc)
        if unreachable == len(owners):
            raise NetworkPartitionError(
                f"every DHT core covering the query for {var!r} from core "
                f"{src_core} is across an active network cut"
            )
        out.sort(key=lambda l: (l.version, l.owner_core, l.logical_owner))
        return out

    # -- failover -----------------------------------------------------------------------

    def core_active(self, core: int) -> bool:
        """Whether ``core`` still owns a Hilbert interval (never failed)."""
        return core in self.dht_cores

    def fail_core(self, core: int) -> int:
        """Remove a failed DHT core; its Hilbert interval moves to a successor.

        The successor is the next surviving DHT core along the 1-D index
        space (the previous one when the failed core owned the last
        interval), so the interval partition stays contiguous. The failed
        core's location table is *lost* — call :meth:`rebuild` with the
        surviving objects to restore full coverage. Returns the successor's
        global core id.

        Ownership policy under network partitions: interval ownership (like
        a data object's logical owner) is an *identity*, reassigned exactly
        once, on confirmed death. Callers must never invoke this for a node
        that is merely suspected-partitioned — the failure detector's
        cross-witness check (:mod:`repro.resilience.detector`) makes that
        distinction — so the same interval is never owned by two live cores
        on opposite sides of a cut (no split-brain ownership).
        """
        try:
            i = self.dht_cores.index(core)
        except ValueError:
            raise SpaceError(f"core {core} is not an active DHT core") from None
        if len(self.dht_cores) == 1:
            raise SpaceError("cannot fail the last remaining DHT core")
        lo, hi = self.intervals[i]
        if i + 1 < len(self.intervals):
            j = i + 1
            self.intervals[j] = (lo, self.intervals[j][1])
        else:
            j = i - 1
            self.intervals[j] = (self.intervals[j][0], hi)
        successor = self.dht_cores[j]
        del self.intervals[i]
        del self.dht_cores[i]
        del self._tables[i]
        self._starts = [s for s, _ in self.intervals]
        self.failed_cores.append(core)
        self.epoch += 1
        if self.dart is not None:
            self.dart.unregister_handler(core, "dht_register" + self._rpc_suffix)
            self.dart.unregister_handler(core, "dht_query" + self._rpc_suffix)
        return successor

    def rebuild(self, objects: "Iterable[DataObject]", account: bool = True) -> int:
        """Rebuild every location table from surviving stored objects.

        Clears all tables and re-registers each object (registration RPCs
        are accounted as usual — failover recovery is real control traffic;
        pass ``account=False`` when replaying a checkpoint whose traffic was
        already paid). Returns the number of objects re-registered.
        """
        for table in self._tables:
            table.clear()
        count = 0
        for obj in objects:
            self.register(obj, account=account)
            count += 1
        return count

    # -- introspection -------------------------------------------------------------------

    def table_sizes(self) -> list[int]:
        """Number of entries per DHT core (load-balance diagnostics)."""
        return [sum(len(v) for v in t.values()) for t in self._tables]
