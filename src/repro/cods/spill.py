"""Per-node deep-memory spill tier (the burst-buffer / NVRAM stage).

Wilkins and the SENSEI heterogeneous extensions both answer in-situ memory
limits with a staging tier below DRAM; ROADMAP item 4(c) names it for this
framework. A :class:`SpillTier` is that tier for one node: cold primary
objects evicted by the space's reclaim ladder park here (descriptor plus
checksum — the full identity a restore needs) and are read back on demand
by ``get_seq``. Spill writes and read-backs move through HybridDART as
``SPILL`` transfers, cost-modelled at a fraction of shared-memory bandwidth
(:data:`repro.transport.costmodel.SPILL_BANDWIDTH_FACTOR`).

The tier is *node-local*: a node crash takes its spill copies down with its
stores, and a spilled object whose deep-memory copy is lost surfaces as
:class:`~repro.errors.SpillError` (a data-loss error) so the workflow's
re-enactment ladder regenerates it.
"""

from __future__ import annotations

from typing import Iterator

from repro.cods.objects import DataObject
from repro.errors import SpaceError, SpillError

__all__ = ["SpillTier"]


class SpillTier:
    """Deep-memory staging store of one node.

    Holds spilled primary objects keyed by their logical identity
    ``(var, version, owner core)``. Capacity is optional; the reclaim
    ladder probes :meth:`has_room` before spilling, so an over-full tier
    simply stops absorbing spills (backpressure handles the rest).
    """

    def __init__(self, node: int, capacity_bytes: "int | None" = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise SpaceError(
                f"spill capacity must be non-negative, got {capacity_bytes}"
            )
        self.node = node
        self.capacity_bytes = capacity_bytes
        self._objects: dict[tuple[str, int, int], DataObject] = {}
        self._bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._objects)

    def has_room(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more fit (always true without a capacity)."""
        if self.capacity_bytes is None:
            return True
        return self._bytes + nbytes <= self.capacity_bytes

    def store(self, obj: DataObject) -> None:
        """Park one spilled primary (checksum travels with the object)."""
        key = (obj.var, obj.version, obj.logical_owner)
        if key in self._objects:
            raise SpaceError(
                f"duplicate spill of {key} on node {self.node}"
            )
        if not self.has_room(obj.nbytes):
            raise SpaceError(
                f"spill tier of node {self.node} cannot absorb "
                f"{obj.nbytes} more bytes"
            )
        self._objects[key] = obj
        self._bytes += obj.nbytes

    def holds(self, var: str, version: int, owner: int) -> bool:
        return (var, version, owner) in self._objects

    def peek(self, var: str, version: int, owner: int) -> "DataObject | None":
        return self._objects.get((var, version, owner))

    def take(self, var: str, version: int, owner: int) -> DataObject:
        """Remove and return one spilled object (restore read-back).

        Raises :class:`SpillError` — a data-loss error riding the
        re-enactment ladder — when the copy is gone.
        """
        obj = self._objects.pop((var, version, owner), None)
        if obj is None:
            raise SpillError(
                f"spill copy of {var!r} v{version} (owner core {owner}) is "
                f"gone from node {self.node}'s deep-memory tier"
            )
        self._bytes -= obj.nbytes
        return obj

    def drop(self, var: str, version: int, owner: int) -> "DataObject | None":
        """Silently discard one spill copy (fault injection, retirement)."""
        obj = self._objects.pop((var, version, owner), None)
        if obj is not None:
            self._bytes -= obj.nbytes
        return obj

    def objects(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def clear(self) -> int:
        """Drop everything (node crash); returns the object count lost."""
        lost = len(self._objects)
        self._objects.clear()
        self._bytes = 0
        return lost
