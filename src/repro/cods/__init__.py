"""CoDS: co-located DataSpaces — DHT, lookup, schedules, shared space."""

from repro.cods.dht import ObjectLocation, SpatialDHT
from repro.cods.lookup import DataLookupService
from repro.cods.objects import (
    DataObject,
    ObjectStore,
    RegionProduct,
    region_bounding_box,
    region_cells,
    region_from_box,
    region_overlap_cells,
    region_restrict,
)
from repro.cods.schedule import (
    BundleScheduleCache,
    CommSchedule,
    ScheduleCache,
    TransferPlan,
    compute_schedule,
    producer_schedule,
)
from repro.cods.pgas import GlobalArray
from repro.cods.space import CoDS
from repro.cods.staging import StagingArea

__all__ = [
    "DataObject",
    "ObjectStore",
    "RegionProduct",
    "region_from_box",
    "region_bounding_box",
    "region_cells",
    "region_overlap_cells",
    "region_restrict",
    "ObjectLocation",
    "SpatialDHT",
    "DataLookupService",
    "TransferPlan",
    "CommSchedule",
    "compute_schedule",
    "producer_schedule",
    "ScheduleCache",
    "BundleScheduleCache",
    "CoDS",
    "GlobalArray",
    "StagingArea",
]
