"""Data objects stored in the CoDS shared space.

A data object is one task's contribution to a shared variable: a region of
the global domain (a Cartesian product of per-dimension interval sets, so
cyclic decompositions stay compact) plus the core that holds the bytes.
Objects live in per-core :class:`ObjectStore` s — the distributed in-memory
storage the sequential coupling scenario shares data through.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.domain.box import Box
from repro.domain.intervals import IntervalSet
from repro.errors import SpaceError

__all__ = [
    "RegionProduct",
    "region_from_box",
    "region_bounding_box",
    "region_cells",
    "region_overlap_cells",
    "region_restrict",
    "object_checksum",
    "DataObject",
    "ObjectStore",
]


def object_checksum(
    var: str,
    version: int,
    region: RegionProduct,
    element_size: int,
    payload: "object | None",
) -> int:
    """Content checksum (CRC-32) of one object's identity and values.

    Covers the descriptor (variable, version, element size, region intervals)
    and — when the object carries real values — the payload bytes, so any
    single bit flip in either is detected. The hash is content-only: every
    replica of the same primary shares its checksum regardless of which core
    stores it.
    """
    crc = zlib.crc32(f"{var}\x00{version}\x00{element_size}".encode())
    for s in region:
        crc = zlib.crc32(repr(s.intervals).encode(), crc)
    if payload is not None:
        import numpy as np

        crc = zlib.crc32(np.ascontiguousarray(payload).tobytes(), crc)
    return crc

#: A region as per-dimension interval sets (Cartesian product semantics).
RegionProduct = tuple[IntervalSet, ...]


def region_from_box(box: Box) -> RegionProduct:
    """Box -> interval product."""
    return box.interval_sets()


def region_bounding_box(region: RegionProduct) -> Box:
    """Tightest box around a region (empty box at origin for empty regions)."""
    if any(not s for s in region):
        n = len(region)
        return Box(lo=(0,) * n, hi=(0,) * n)
    spans = [s.span for s in region]
    return Box(lo=tuple(lo for lo, _ in spans), hi=tuple(hi for _, hi in spans))


def region_cells(region: RegionProduct) -> int:
    cells = 1
    for s in region:
        cells *= s.measure
        if cells == 0:
            return 0
    return cells


def region_overlap_cells(a: RegionProduct, b: RegionProduct) -> int:
    """Cells in the intersection of two interval products."""
    if len(a) != len(b):
        raise SpaceError(f"region rank mismatch: {len(a)} vs {len(b)}")
    cells = 1
    for sa, sb in zip(a, b):
        m = sa.intersection_measure(sb)
        if m == 0:
            return 0
        cells *= m
    return cells


def region_restrict(region: RegionProduct, box: Box) -> RegionProduct:
    """Clip a region to a box, dimension-wise."""
    if len(region) != box.ndim:
        raise SpaceError(f"region rank {len(region)} != box rank {box.ndim}")
    return tuple(
        s.intersection(IntervalSet.single(*box.side(d)))
        for d, s in enumerate(region)
    )


@dataclass(frozen=True)
class DataObject:
    """One stored contribution to a shared variable.

    ``payload`` optionally carries the actual values: an array whose shape is
    the per-dimension measures of ``region`` (the region's cells packed
    densely, C order). Most of the framework only needs the descriptor — the
    evaluation counts bytes — but payload-carrying objects let consumers
    assemble real field data (see :meth:`repro.cods.space.CoDS.fetch_seq`).
    """

    var: str
    version: int
    region: RegionProduct
    owner_core: int
    element_size: int
    payload: "object | None" = None  # numpy ndarray or None
    #: core holding the primary copy when this object is a replica;
    #: ``None`` means this object *is* the primary (the common case).
    primary_core: "int | None" = None
    #: CRC-32 content checksum; computed at construction when left ``None``.
    #: A stored checksum that disagrees with :func:`object_checksum` models a
    #: copy whose bits were flipped in flight (see ``verify_checksum``).
    checksum: "int | None" = None

    def __post_init__(self) -> None:
        if not self.var:
            raise SpaceError("variable name must be non-empty")
        if self.version < 0:
            raise SpaceError(f"version must be non-negative, got {self.version}")
        if self.element_size <= 0:
            raise SpaceError(f"element size must be positive, got {self.element_size}")
        if not self.region:
            raise SpaceError("region must have at least one dimension")
        if self.payload is not None:
            import numpy as np

            arr = np.asarray(self.payload)
            expect = tuple(s.measure for s in self.region)
            if arr.shape != expect:
                raise SpaceError(
                    f"payload shape {arr.shape} != region shape {expect}"
                )
            if arr.itemsize != self.element_size:
                raise SpaceError(
                    f"payload itemsize {arr.itemsize} != element size "
                    f"{self.element_size}"
                )
            object.__setattr__(self, "payload", arr)
        if self.checksum is None:
            object.__setattr__(
                self,
                "checksum",
                object_checksum(
                    self.var, self.version, self.region,
                    self.element_size, self.payload,
                ),
            )

    def verify_checksum(self) -> bool:
        """Recompute the content hash and compare against the stored one."""
        return self.checksum == object_checksum(
            self.var, self.version, self.region, self.element_size, self.payload
        )

    @property
    def is_replica(self) -> bool:
        return self.primary_core is not None

    @property
    def logical_owner(self) -> int:
        """Core of the primary copy (itself when this is the primary)."""
        return self.owner_core if self.primary_core is None else self.primary_core

    @property
    def cells(self) -> int:
        return region_cells(self.region)

    @property
    def nbytes(self) -> int:
        return self.cells * self.element_size

    @property
    def bounding_box(self) -> Box:
        return region_bounding_box(self.region)

    def overlap_cells_with_box(self, box: Box) -> int:
        return region_overlap_cells(self.region, region_from_box(box))

    def key(self) -> tuple[str, int, int]:
        return (self.var, self.version, self.owner_core)


class ObjectStore:
    """In-memory object store of one core.

    Enforces an optional byte capacity (CoDS derives it from the node's
    memory size divided across its cores).
    """

    def __init__(self, core: int, capacity_bytes: int | None = None) -> None:
        self.core = core
        self.capacity_bytes = capacity_bytes
        self._objects: dict[tuple[str, int, int], DataObject] = {}
        self._bytes = 0
        # Objects held per variable name — O(1) staleness probe for cached
        # schedules that may reference an evicted source store.
        self._var_count: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._objects)

    def insert(self, obj: DataObject) -> None:
        if obj.owner_core != self.core:
            raise SpaceError(
                f"object owned by core {obj.owner_core} inserted into store "
                f"of core {self.core}"
            )
        # Keyed by logical owner: the core's own primary keys on the core
        # itself (the pre-replication behavior), while replicas of *other*
        # cores' primaries coexist alongside it under their primary's core.
        key = (obj.var, obj.version, obj.logical_owner)
        if key in self._objects:
            raise SpaceError(f"duplicate object {key} in store of core {self.core}")
        if (
            self.capacity_bytes is not None
            and self._bytes + obj.nbytes > self.capacity_bytes
        ):
            raise SpaceError(
                f"core {self.core} store over hard capacity storing "
                f"{obj.var!r} v{obj.version}: the admission-controlled put "
                "path (high-watermark check plus the GC/evict/spill reclaim "
                "ladder) should have made space or raised "
                "MemoryPressureError before this backstop"
            )
        self._objects[key] = obj
        self._bytes += obj.nbytes
        self._var_count[obj.var] = self._var_count.get(obj.var, 0) + 1

    def get(self, var: str, version: int, of: int | None = None) -> DataObject | None:
        """The stored copy of ``(var, version)`` whose logical owner is
        ``of`` (this core — i.e. the core's own primary — by default)."""
        owner = self.core if of is None else of
        return self._objects.get((var, version, owner))

    def has_var(self, var: str) -> bool:
        """Whether any version of ``var`` is stored here (O(1))."""
        return self._var_count.get(var, 0) > 0

    def evict(self, var: str, version: int, of: int | None = None) -> DataObject:
        """Remove one copy (the core's own primary unless ``of`` names the
        logical owner of a replica held here)."""
        owner = self.core if of is None else of
        obj = self._objects.pop((var, version, owner), None)
        if obj is None:
            raise SpaceError(
                f"no object ({var!r}, v{version}) of core {owner} in store "
                f"of core {self.core}"
            )
        self._bytes -= obj.nbytes
        left = self._var_count.get(var, 0) - 1
        if left > 0:
            self._var_count[var] = left
        else:
            self._var_count.pop(var, None)
        return obj

    def objects(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def clear(self) -> None:
        self._objects.clear()
        self._bytes = 0
        self._var_count.clear()
