"""CoDS — the co-located DataSpaces shared-space facade.

Implements the paper's four data-sharing operators (Table I):

=================  ============================================================
``put_seq``        store coupled data in the distributed in-memory space
                   (sequential coupling; data outlives the producer app)
``get_seq``        retrieve a region from the space — DHT lookup, schedule
                   computation (cached), receiver-driven pulls
``put_cont``       expose a producer task's region for direct transfer to a
                   concurrently running consumer
``get_cont``       pull a region directly from the producer tasks' memory
                   (no staging through the space)
=================  ============================================================

All pulls go through HybridDART, which picks shared memory for intra-node
endpoints and the network otherwise — so the in-situ benefit of a good task
mapping appears directly in the transfer metrics.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace

from repro.cods.dht import ObjectLocation, SpatialDHT
from repro.cods.lookup import DataLookupService
from repro.cods.objects import (
    DataObject,
    ObjectStore,
    RegionProduct,
    region_bounding_box,
    region_from_box,
)
from repro.cods.schedule import (
    BundleScheduleCache,
    CommSchedule,
    ScheduleCache,
    compute_schedule,
    producer_schedule,
)
from repro.cods.spill import SpillTier
from repro.domain.box import Box
from repro.domain.intervals import IntervalSet
from repro.errors import (
    CheckpointError,
    DataIntegrityError,
    DataLostError,
    MemoryPressureError,
    NetworkPartitionError,
    QuorumError,
    SpaceError,
    StaleWriteError,
)
from repro.hardware.cluster import Cluster
from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import NULL_TRACER
from repro.sfc.linearize import DomainLinearizer
from repro.transport.hybriddart import HybridDART
from repro.transport.message import TransferKind, TransferRecord

__all__ = ["CoDS"]


class CoDS:
    """A shared space spanning all cores of a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        domain_extents: tuple[int, ...],
        dart: HybridDART | None = None,
        linearizer: DomainLinearizer | None = None,
        use_schedule_cache: bool = True,
        use_bundle_cache: bool = False,
        enforce_memory: bool = False,
        memory_per_node: "int | None" = None,
        high_watermark: "float | None" = None,
        spill_capacity: "int | None" = None,
        replication: int = 1,
        placer: "object | None" = None,
        hedge_factor: "float | None" = None,
        write_quorum: "int | None" = None,
        read_quorum: "int | None" = None,
        provenance: "object | None" = None,
    ) -> None:
        self.cluster = cluster
        self.dart = dart if dart is not None else HybridDART(cluster)
        if self.dart.cluster is not cluster:
            raise SpaceError("DART and CoDS must share the same cluster")
        self.linearizer = (
            linearizer
            if linearizer is not None
            else DomainLinearizer(domain_extents)
        )
        if self.linearizer.extents != tuple(domain_extents):
            raise SpaceError("linearizer extents do not match domain extents")
        self.domain = Box.from_extents(domain_extents)
        # One DHT core per compute node: the node's first core.
        dht_cores = [cluster.cores_of_node(n)[0] for n in cluster.nodes()]
        self.dht = SpatialDHT(self.linearizer, dht_cores, self.dart)
        self.lookup = DataLookupService(self.dht, cluster)
        self.schedule_cache: ScheduleCache | None = (
            ScheduleCache(registry=self.dart.registry)
            if use_schedule_cache
            else None
        )
        # Opt-in (default off): enabling it changes which counters the run
        # touches, and the seed's metric streams must stay byte-identical.
        self.bundle_cache: BundleScheduleCache | None = (
            BundleScheduleCache(registry=self.dart.registry)
            if use_bundle_cache
            else None
        )
        # -- memory enforcement (inert when off: no watermark, no tiers) --
        self.enforce_memory = enforce_memory
        if memory_per_node is not None and memory_per_node <= 0:
            raise SpaceError(
                f"memory per node must be positive, got {memory_per_node}"
            )
        if high_watermark is not None and not 0.0 < high_watermark <= 1.0:
            raise SpaceError(
                f"high watermark must be in (0, 1], got {high_watermark}"
            )
        if spill_capacity is not None and spill_capacity < 0:
            raise SpaceError(
                f"spill capacity must be non-negative, got {spill_capacity}"
            )
        node_memory = (
            memory_per_node
            if memory_per_node is not None
            else cluster.machine.node.memory_bytes
        )
        per_core_capacity = (
            node_memory // cluster.cores_per_node if enforce_memory else None
        )
        #: puts admit against this fraction of (pressure-adjusted) capacity;
        #: crossing it runs the reclaim ladder before the put lands
        self.high_watermark = 0.8 if high_watermark is None else high_watermark
        #: per-node deep-memory spill tiers (empty dict when enforcement off)
        self._spill: dict[int, SpillTier] = (
            {n: SpillTier(n, spill_capacity) for n in cluster.nodes()}
            if enforce_memory
            else {}
        )
        #: node -> usable-capacity fraction under active MemoryPressure
        #: windows (absent = 1.0, the clean default)
        self._capacity_factor: dict[int, float] = {}
        #: (var, primary core) -> app ids that read the core's share; feeds
        #: the GC rung once every expected consumer has read
        self._consumed: dict[tuple[str, int], set[int]] = {}
        #: var -> expected reader count (set by the experiment driver from
        #: the scenario DAG; unknown vars never GC — the safe default)
        self.consumer_counts: dict[str, int] = {}
        # spill.bytes{direction} labeled counter, created on first spill
        self._m_spill_bytes = None
        #: logical (var, version, primary core) currently parked in a spill
        #: tier — the restore path's bookkeeping (a key whose tier copy is
        #: gone surfaces as SpillError at restore time)
        self._spilled: set[tuple[str, int, int]] = set()
        # deep-memory seconds accrued since the last drain (the engine
        # drains per app routine and stretches the app over them, so spill
        # traffic shows up in the makespan under its own categories)
        self._pending_spill_write = 0.0
        self._pending_spill_read = 0.0
        self._stores: dict[int, ObjectStore] = {
            core: ObjectStore(core, per_core_capacity) for core in cluster.cores()
        }
        # var -> [(core, region)], element size; for the concurrent path.
        self._producers: dict[str, list[tuple[int, RegionProduct]]] = {}
        self._producer_esize: dict[str, int] = {}
        # -- resilience state (inert at replication=1 with no crashes) --
        if not 1 <= replication <= cluster.num_nodes:
            raise SpaceError(
                f"replication factor {replication} needs {replication} distinct "
                f"nodes; cluster has {cluster.num_nodes}"
            )
        self.replication = replication
        self._placer = placer
        self._dead_nodes: set[int] = set()
        # logical (var, version, primary core) -> replica cores
        self._replicas: dict[tuple[str, int, int], tuple[int, ...]] = {}
        # logical (var, version, primary core) -> producing app id
        self._produced_by: dict[tuple[str, int, int], int] = {}
        # resilience.failover.reads counter; bound by the resilience manager
        self._m_failover = None
        # (var, holding core) -> producing put span/instant (tracing only);
        # pulls link back to it so traces carry put -> transfer causality
        self._put_spans: dict[tuple[str, int], object] = {}
        # -- gray-failure hardening (inert unless armed) --
        if hedge_factor is not None and hedge_factor <= 1.0:
            raise SpaceError(
                f"hedge factor must be > 1 (deadline = expected x factor), "
                f"got {hedge_factor}"
            )
        #: pulls slower than ``expected x hedge_factor`` race a backup pull
        #: from another replica holder (None disables hedging)
        self.hedge_factor = hedge_factor
        self._cost_model = None  # built on first hedged pull
        # Lazy gray counters: clean runs register no integrity/hedge metrics,
        # keeping their snapshots and checkpoints byte-identical to the seed.
        self._gray_counters: dict[str, object] = {}
        # -- partition tolerance (inert unless quorums/partitions armed) --
        for qname, q in (("write_quorum", write_quorum),
                         ("read_quorum", read_quorum)):
            if q is not None and not 1 <= q <= replication:
                raise SpaceError(
                    f"{qname} must be in [1, replication={replication}], "
                    f"got {q}"
                )
        #: a put acknowledges only once this many of its k copies (primary
        #: included) landed on nodes reachable from the writer (None = no
        #: quorum enforcement, the seed behaviour)
        self.write_quorum = write_quorum
        #: a read needs this many reachable copies of each logical object
        #: before it picks a source (None = any reachable copy serves)
        self.read_quorum = read_quorum
        # logical (var, version, primary core) -> highest accepted write
        # generation; writes carrying an older generation are fenced off so
        # a healed minority cannot commit stale work
        self._object_gen: dict[tuple[str, int, int], int] = {}
        # -- causal provenance (inert behind one `enabled` check) --
        #: decision ledger; NULL_LEDGER keeps unledgered runs byte-identical
        self.provenance = provenance if provenance is not None else NULL_LEDGER
        # (var, version) -> producing object.put record id, so replica
        # selections and fences cause-link back to the write they concern
        self._prov_puts: dict[tuple[str, int], int] = {}

    def _gray_count(self, name: str, value: float = 1) -> None:
        """Bump a lazily created integrity/hedge counter."""
        c = self._gray_counters.get(name)
        if c is None:
            c = self._gray_counters[name] = self.dart.registry.counter(name)
        c.inc(value)

    # Partition/quorum counters share the lazy-creation discipline: a run
    # with no declared partitions registers no partition.* or quorum.* cell.
    _partition_count = _gray_count
    # So do the memory-pressure counters: enforcement-off runs register not
    # a single mem.* or spill.* cell (the perf guard pins it).
    _mem_count = _gray_count

    def _spill_bytes_count(self, direction: str, nbytes: int) -> None:
        """Bump the lazily created ``spill.bytes{direction}`` counter."""
        c = self._m_spill_bytes
        if c is None:
            c = self._m_spill_bytes = self.dart.registry.counter(
                "spill.bytes", labelnames=("direction",)
            )
        c.inc(nbytes, direction=direction)

    def _partitions_armed(self) -> bool:
        injector = self.dart.injector
        return injector is not None and injector.plan.has_partitions

    @property
    def placer(self):
        """Replica placer (SFC-successor default, built on first use)."""
        if self._placer is None:
            from repro.resilience.replication import ReplicaPlacer

            self._placer = ReplicaPlacer(self.cluster)
        return self._placer

    def bind_resilience_metrics(self, registry) -> None:
        """Mirror failover reads into the ``resilience.*`` counters."""
        self._m_failover = registry.counter("resilience.failover.reads")
        self._m_failover.touch()

    def _node_alive(self, node: int) -> bool:
        return node not in self._dead_nodes

    def dead_nodes(self) -> frozenset[int]:
        return frozenset(self._dead_nodes)

    # -- helpers ----------------------------------------------------------------

    @property
    def tracer(self):
        """The span tracer shared with the transport (no-op by default)."""
        return self.dart.tracer

    def store_of(self, core: int) -> ObjectStore:
        try:
            return self._stores[core]
        except KeyError:
            raise SpaceError(f"core {core} is not part of this space") from None

    def _as_region(self, region: "Box | RegionProduct") -> RegionProduct:
        if isinstance(region, Box):
            if not self.domain.contains_box(region):
                raise SpaceError(f"region {region} outside domain {self.domain}")
            return region_from_box(region)
        return tuple(region)

    def _check_box(self, box: Box) -> None:
        if not self.domain.contains_box(box):
            raise SpaceError(f"requested box {box} outside domain {self.domain}")

    def _execute(
        self, schedule: CommSchedule, app_id: int
    ) -> list[TransferRecord]:
        """Receiver-driven pulls: one transfer per plan entry.

        When traced, each pull links back to the put that stored the data
        on its source core (the producer-put → transfer leg of the flow
        chain; the transfer → consumer-get leg is the span nesting).

        Under gray faults the per-plan path grows teeth: hedged source
        selection, checksum verification on delivery, and transparent
        re-fetch from surviving replicas (see :meth:`_pull`). The plain
        fast paths below stay byte-identical for clean runs.
        """
        if self.enforce_memory:
            self._restore_for_schedule(schedule)
            if app_id >= 0 and schedule.var in self.consumer_counts:
                for p in schedule.plans:
                    self._consumed.setdefault(
                        (schedule.var, p.src_core), set()
                    ).add(app_id)
        injector = self.dart.injector
        if injector is not None and injector.plan.has_gray_faults:
            return [self._pull(p, app_id) for p in schedule.plans]
        if not self.dart.tracer.enabled:
            return [
                self.dart.transfer(
                    src_core=p.src_core,
                    dst_core=p.dst_core,
                    nbytes=p.nbytes,
                    kind=TransferKind.COUPLING,
                    app_id=app_id,
                    var=p.var,
                )
                for p in schedule.plans
            ]
        return [
            self.dart.transfer(
                src_core=p.src_core,
                dst_core=p.dst_core,
                nbytes=p.nbytes,
                kind=TransferKind.COUPLING,
                app_id=app_id,
                var=p.var,
                link_from=self._put_spans.get((p.var, p.src_core)),
            )
            for p in schedule.plans
        ]

    # -- gray-failure pull path --------------------------------------------------

    def _alternate_holders(self, var: str, src_core: int) -> "list[int]":
        """Other live cores holding a copy of ``src_core``'s logical object.

        Walks the replica bookkeeping for groups ``src_core`` belongs to
        (as primary or as replica holder) and keeps holders whose node is
        alive and whose store still carries the variable. Sorted for
        deterministic re-fetch and hedge ordering.
        """
        out: set[int] = set()
        for (v, _ver, primary), reps in self._replicas.items():
            if v != var:
                continue
            holders = (primary, *reps)
            if src_core in holders:
                out.update(holders)
        out.discard(src_core)
        return sorted(
            c for c in out
            if self.cluster.node_of_core(c) not in self._dead_nodes
            and self._stores[c].has_var(var)
        )

    def _source_poisoned(self, var: str, core: int) -> bool:
        """Does ``core`` hold a checksum-failing copy of ``var`` at rest?

        A pull served from such a copy delivers the flipped bits even when
        the wire itself behaved, so the delivery-time verification treats
        it exactly like transport corruption and re-fetches elsewhere.
        """
        store = self._stores.get(core)
        if store is None:
            return False
        return any(
            obj.var == var and not obj.verify_checksum()
            for obj in store.objects()
        )

    @property
    def cost_model(self):
        """Contention-free transfer-time estimator (hedge deadlines)."""
        if self._cost_model is None:
            from repro.transport.costmodel import CostModel

            self._cost_model = CostModel(self.cluster.machine)
        return self._cost_model

    def _maybe_hedge(self, plan, src: int) -> "tuple[int, object | None]":
        """Hedged source selection for one pull.

        The pull's deadline budget is the cost model's expected time times
        ``hedge_factor``. When the chosen source sits on a slowed node and
        its degraded service time blows the deadline, a backup pull is
        issued to another replica holder and the first valid response wins:
        the backup when even ``deadline + backup_time`` beats the slowed
        primary, the primary otherwise. Either way the loser's bytes are
        redundant work, accounted in ``hedge.redundant_bytes``.

        Returns ``(winning source core, hedge instant for flow links)``.
        """
        injector = self.dart.injector
        if injector is None or not injector.plan.slow_nodes:
            return src, None
        src_node = self.cluster.node_of_core(src)
        slowdown = injector.slowdown_factor(src_node)
        if slowdown <= 1.0:
            return src, None
        dst_node = self.cluster.node_of_core(plan.dst_core)
        expected = self.cost_model.transfer_time(plan.nbytes, src_node, dst_node)
        deadline = expected * self.hedge_factor
        actual = expected * slowdown
        if actual <= deadline:
            return src, None
        alts = self._alternate_holders(plan.var, src)
        if not alts:
            return src, None
        # Prefer a backup on the least-slowed node; core id breaks ties.
        backup = min(
            alts,
            key=lambda c: (
                injector.slowdown_factor(self.cluster.node_of_core(c)), c
            ),
        )
        backup_node = self.cluster.node_of_core(backup)
        backup_time = (
            self.cost_model.transfer_time(plan.nbytes, backup_node, dst_node)
            * injector.slowdown_factor(backup_node)
        )
        win = deadline + backup_time < actual
        self._gray_count("hedge.issued")
        self._gray_count("hedge.redundant_bytes", plan.nbytes)
        injector.record(
            "hedge_issued",
            f"{plan.var} {src}->{plan.dst_core} backup={backup} "
            f"win={'backup' if win else 'primary'}",
        )
        inst = None
        tracer = self.dart.tracer
        if tracer.enabled:
            inst = tracer.instant(
                "hedge.issue",
                var=plan.var, primary=src, backup=backup,
                deadline=deadline, win="backup" if win else "primary",
            )
        if win:
            self._gray_count("hedge.wins")
            return backup, inst
        return src, inst

    def _pull(self, plan, app_id: int) -> TransferRecord:
        """One gray-hardened pull: hedge, verify, re-fetch, deduplicate."""
        tracer = self.dart.tracer
        src = plan.src_core
        hedge_inst = None
        if self.hedge_factor is not None:
            src, hedge_inst = self._maybe_hedge(plan, src)

        def issue(from_core: int) -> TransferRecord:
            link = (
                self._put_spans.get((plan.var, from_core))
                if tracer.enabled else None
            )
            if hedge_inst is not None and from_core != plan.src_core:
                with tracer.span(
                    "hedge.pull", var=plan.var, src=from_core,
                    dst=plan.dst_core, nbytes=plan.nbytes,
                ) as sp:
                    tracer.link(hedge_inst, sp, "hedge")
                    return self.dart.transfer(
                        src_core=from_core, dst_core=plan.dst_core,
                        nbytes=plan.nbytes, kind=TransferKind.COUPLING,
                        app_id=app_id, var=plan.var, link_from=link,
                    )
            return self.dart.transfer(
                src_core=from_core, dst_core=plan.dst_core,
                nbytes=plan.nbytes, kind=TransferKind.COUPLING,
                app_id=app_id, var=plan.var, link_from=link,
            )

        rec = issue(src)
        hedge_inst = None  # only the winning first pull is the hedge leg
        if rec.duplicated:
            # The replayed copy is dropped on the floor by (var, version,
            # owner) identity — it never reaches the consumer or the
            # delivered-bytes metrics a second time.
            self._gray_count("integrity.duplicates_dropped")
        tried = {src}
        # A delivery is bad when the wire flipped bits (rec.corrupted) OR
        # the source copy was already poisoned at rest (a replica written
        # over a corrupting link that the scrubber hasn't repaired yet) —
        # the consumer-side checksum catches both the same way.
        while rec.corrupted or self._source_poisoned(plan.var, src):
            self._gray_count("integrity.corrupted_deliveries")
            alts = [
                c for c in self._alternate_holders(plan.var, src)
                if c not in tried
            ]
            if not alts:
                self._gray_count("integrity.unrecoverable")
                raise DataIntegrityError(
                    f"every reachable copy of {plan.var!r} for core "
                    f"{plan.dst_core} failed checksum verification"
                )
            nxt = alts[0]
            tried.add(nxt)
            self._gray_count("integrity.refetches")
            if tracer.enabled:
                with tracer.span(
                    "integrity.refetch", var=plan.var, src=nxt,
                    dst=plan.dst_core, nbytes=plan.nbytes,
                ):
                    rec = issue(nxt)
            else:
                rec = issue(nxt)
            if rec.duplicated:
                self._gray_count("integrity.duplicates_dropped")
            src = nxt
        return rec

    # -- memory pressure: admission, reclaim ladder, spill tier ----------------------

    def _effective_capacity(self, core: int) -> int:
        """Usable bytes of ``core``'s store under active pressure windows."""
        cap = self._stores[core].capacity_bytes
        factor = self._capacity_factor.get(
            self.cluster.node_of_core(core), 1.0
        )
        return int(cap * factor)

    def _admit(self, store: ObjectStore, obj: DataObject) -> None:
        """Admission-controlled insert: the high-watermark check plus the
        reclaim ladder, raising :class:`MemoryPressureError` (a deferral,
        not a loss) when the ladder cannot make enough room."""
        core = store.core
        cap = self._effective_capacity(core)
        limit = int(cap * self.high_watermark)
        if store.used_bytes + obj.nbytes > limit:
            self._mem_count("mem.watermark")
            self._reclaim(
                core,
                store.used_bytes + obj.nbytes - limit,
                exclude={(obj.var, obj.version, core)},
            )
            if store.used_bytes + obj.nbytes > cap:
                self._mem_count("mem.stalls")
                injector = self.dart.injector
                if injector is not None:
                    injector.record(
                        "memory_stall",
                        f"{obj.var} v{obj.version} core={core} "
                        f"used={store.used_bytes} need={obj.nbytes} "
                        f"usable={cap}",
                    )
                if self.provenance.enabled:
                    self.provenance.record(
                        "mem.stall", var=obj.var, version=obj.version,
                        core=core, need=obj.nbytes,
                        used=store.used_bytes, usable=cap,
                    )
                raise MemoryPressureError(
                    f"put of {obj.var!r} v{obj.version} on core {core} not "
                    f"admitted: {store.used_bytes}+{obj.nbytes} bytes exceeds "
                    f"the {cap}-byte usable capacity (high watermark "
                    f"{self.high_watermark:g}) and the reclaim ladder "
                    f"(GC, replica eviction, spill) could not make room; "
                    f"the put is deferred until consumers free space"
                )
        store.insert(obj)

    def _admit_replica(self, core: int, rep: DataObject) -> bool:
        """Best-effort admission for a replica copy.

        Replicas are the first thing the reclaim ladder throws away, so
        writing one never spills a primary and never blocks the workflow:
        if GC and replica eviction cannot make room on the target core the
        copy is simply *skipped* (heal-time reconciliation tops it back up
        once consumers free space). Returns whether the copy fits.
        """
        store = self._stores[core]
        cap = self._effective_capacity(core)
        if store.used_bytes + rep.nbytes > cap:
            self._reclaim(
                core,
                store.used_bytes + rep.nbytes - cap,
                exclude={(rep.var, rep.version, rep.logical_owner)},
                spill=False,
            )
        if store.used_bytes + rep.nbytes > cap:
            self._mem_count("mem.replicas_skipped")
            return False
        return True

    def _reclaim(
        self,
        core: int,
        need: int,
        exclude: "set | frozenset" = frozenset(),
        spill: bool = True,
    ) -> int:
        """Run the reclamation ladder on ``core``'s store.

        Rungs, cheapest first: (1) garbage-collect primaries every expected
        consumer has read, (2) evict replica copies whose logical object
        keeps at least ``write_quorum`` (or one) other copies, (3) spill
        cold primaries — lowest version first — to the node's deep-memory
        tier. Stops as soon as ``need`` bytes are freed; ``exclude`` names
        logical keys the ladder must not touch (the object being admitted
        or restored); ``spill=False`` stops after rung 2 (replica writes
        never displace a primary). Returns the bytes actually freed.
        """
        store = self._stores[core]
        freed = 0
        # Rung 1: GC fully-consumed primaries.
        if self.consumer_counts:
            for obj in sorted(
                (o for o in store.objects() if not o.is_replica),
                key=lambda o: o.key(),
            ):
                if freed >= need:
                    break
                if (obj.var, obj.version, core) in exclude:
                    continue
                want = self.consumer_counts.get(obj.var)
                readers = self._consumed.get((obj.var, core))
                if want is None or readers is None or len(readers) < want:
                    continue
                store.evict(obj.var, obj.version)
                self.dht.unregister(obj.var, obj.version, core)
                self._drop_replicas(obj.var, obj.version, core)
                self._produced_by.pop((obj.var, obj.version, core), None)
                self._consumed.pop((obj.var, core), None)
                freed += obj.nbytes
                self._mem_count("mem.gc")
                if self.provenance.enabled:
                    self.provenance.record(
                        "mem.gc",
                        cause=self._prov_puts.get((obj.var, obj.version)),
                        var=obj.var, version=obj.version, core=core,
                        nbytes=obj.nbytes, readers=len(readers),
                    )
        if freed >= need:
            return freed
        # Rung 2: evict replica copies that keep their quorum intact.
        min_copies = 1 if self.write_quorum is None else self.write_quorum
        for obj in sorted(
            (o for o in store.objects() if o.is_replica),
            key=lambda o: o.key(),
        ):
            if freed >= need:
                break
            owner = obj.logical_owner
            key = (obj.var, obj.version, owner)
            if key in exclude:
                continue
            pstore = self._stores.get(owner)
            copies = len(self._replicas.get(key, ()))
            if pstore is not None and pstore.get(obj.var, obj.version) is not None:
                copies += 1
            if copies - 1 < min_copies:
                continue
            store.evict(obj.var, obj.version, of=owner)
            self.dht.unregister(obj.var, obj.version, core, of=owner)
            self._replicas[key] = tuple(
                c for c in self._replicas.get(key, ()) if c != core
            )
            freed += obj.nbytes
            self._mem_count("mem.evicted_replicas")
            if self.provenance.enabled:
                self.provenance.record(
                    "mem.evict_replica",
                    cause=self._prov_puts.get((obj.var, obj.version)),
                    var=obj.var, version=obj.version, core=core,
                    owner=owner, nbytes=obj.nbytes, copies_left=copies - 1,
                )
        if freed >= need or not spill:
            return freed
        # Rung 3: spill cold primaries to the node's deep-memory tier.
        tier = self._spill[self.cluster.node_of_core(core)]
        for obj in sorted(
            (o for o in store.objects() if not o.is_replica),
            key=lambda o: (o.version, o.var),
        ):
            if freed >= need:
                break
            if (obj.var, obj.version, core) in exclude:
                continue
            if not tier.has_room(obj.nbytes):
                continue
            self._spill_out(core, obj, tier)
            freed += obj.nbytes
        return freed

    def _spill_out(self, core: int, obj: DataObject, tier: SpillTier) -> None:
        """Park one cold primary in the deep-memory tier.

        The store frees the bytes but the DHT registration and producer
        bookkeeping stay — the object still logically exists and restores
        on demand when a schedule routes a pull through this core.
        """
        tracer = self.dart.tracer
        if tracer.enabled:
            with tracer.span(
                "spill.write", var=obj.var, core=core, nbytes=obj.nbytes
            ):
                self.dart.transfer(
                    src_core=core, dst_core=core, nbytes=obj.nbytes,
                    kind=TransferKind.SPILL, var=obj.var,
                )
        else:
            self.dart.transfer(
                src_core=core, dst_core=core, nbytes=obj.nbytes,
                kind=TransferKind.SPILL, var=obj.var,
            )
        self._stores[core].evict(obj.var, obj.version)
        tier.store(obj)
        self._spilled.add((obj.var, obj.version, core))
        self._pending_spill_write += self.cost_model.spill_time(obj.nbytes)
        self._mem_count("mem.spills")
        self._spill_bytes_count("write", obj.nbytes)
        if self.provenance.enabled:
            self.provenance.record(
                "mem.spill",
                cause=self._prov_puts.get((obj.var, obj.version)),
                var=obj.var, version=obj.version, core=core,
                nbytes=obj.nbytes,
            )

    def _restore_for_schedule(self, schedule: CommSchedule) -> None:
        """Read spilled sources of a schedule back before its pulls issue."""
        if not self._spilled:
            return
        srcs = {p.src_core for p in schedule.plans}
        keys = sorted(
            k for k in self._spilled
            if k[0] == schedule.var and k[2] in srcs
        )
        for var, version, owner in keys:
            self._restore_spilled(var, version, owner)

    def _restore_spilled(self, var: str, version: int, owner: int) -> None:
        """Restore one spilled primary into its store (restore-on-demand).

        Raises :class:`~repro.errors.SpillError` — riding the data-loss
        re-enactment ladder — when the tier copy is gone, and
        :class:`MemoryPressureError` when the store cannot take the object
        back even after reclaiming around it.
        """
        tier = self._spill[self.cluster.node_of_core(owner)]
        store = self.store_of(owner)
        probe = tier.peek(var, version, owner)
        if probe is not None:
            cap = self._effective_capacity(owner)
            if store.used_bytes + probe.nbytes > cap:
                self._reclaim(
                    owner,
                    store.used_bytes + probe.nbytes - cap,
                    exclude={(var, version, owner)},
                )
            if store.used_bytes + probe.nbytes > cap:
                self._mem_count("mem.stalls")
                raise MemoryPressureError(
                    f"cannot restore spilled {var!r} v{version} to core "
                    f"{owner}: its store is still over the usable capacity "
                    f"after the reclaim ladder; the read is deferred"
                )
        obj = tier.take(var, version, owner)  # SpillError when the copy is gone
        self._spilled.discard((var, version, owner))
        tracer = self.dart.tracer
        if tracer.enabled:
            with tracer.span(
                "spill.read", var=var, core=owner, nbytes=obj.nbytes
            ):
                self.dart.transfer(
                    src_core=owner, dst_core=owner, nbytes=obj.nbytes,
                    kind=TransferKind.SPILL, var=var,
                )
        else:
            self.dart.transfer(
                src_core=owner, dst_core=owner, nbytes=obj.nbytes,
                kind=TransferKind.SPILL, var=var,
            )
        store.insert(obj)
        self._pending_spill_read += self.cost_model.spill_time(obj.nbytes)
        self._mem_count("mem.restores")
        self._spill_bytes_count("read", obj.nbytes)
        if self.provenance.enabled:
            self.provenance.record(
                "mem.restore",
                cause=self._prov_puts.get((var, version)),
                var=var, version=version, core=owner, nbytes=obj.nbytes,
            )

    def arm_memory_pressure(self, injector) -> None:
        """Subscribe this space to the plan's MemoryPressure windows.

        A window opening shrinks the node's usable capacity (and proactively
        runs the reclaim ladder on stores the shrink stranded over the
        watermark); a window closing restores it. No-op unless enforcement
        is on and the plan declares windows.
        """
        if not self.enforce_memory or not injector.plan.has_memory_pressure:
            return

        def update(window) -> None:
            factor = injector.memory_capacity_factor(window.node)
            if factor < 1.0:
                self._capacity_factor[window.node] = factor
            else:
                self._capacity_factor.pop(window.node, None)

        def shrink(window) -> None:
            update(window)
            for core in self.cluster.cores_of_node(window.node):
                store = self._stores[core]
                limit = int(
                    self._effective_capacity(core) * self.high_watermark
                )
                if store.used_bytes > limit:
                    self._mem_count("mem.watermark")
                    self._reclaim(core, store.used_bytes - limit)

        injector.add_memory_pressure_start_listener(shrink)
        injector.add_memory_pressure_end_listener(update)

    def drain_spill_seconds(self) -> tuple[float, float]:
        """Deep-memory (write, read) seconds accrued since the last drain.

        The workflow engine drains after each app routine and stretches the
        app over the result, so spill traffic occupies real simulated time
        under the ``spill.write``/``spill.read`` critical-path categories.
        """
        out = (self._pending_spill_write, self._pending_spill_read)
        self._pending_spill_write = 0.0
        self._pending_spill_read = 0.0
        return out

    def spilled_bytes(self) -> int:
        """Bytes currently parked across every node's spill tier."""
        return sum(t.used_bytes for t in self._spill.values())

    # -- sequential coupling ---------------------------------------------------------

    def put_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int = 8,
        version: int = 0,
        data: "object | None" = None,
        app_id: int = -1,
        generation: int = 0,
    ) -> DataObject:
        """Store a region of ``var`` in the space (owner = ``core``).

        ``data`` optionally attaches the actual values (an array shaped like
        the region); consumers can then :meth:`fetch_seq` assembled arrays.
        When given, its itemsize overrides ``element_size``.

        Re-putting an existing ``(var, version)`` from the same core
        replaces the stored object (latest wins) — bundle re-enactment after
        a fault re-issues its puts idempotently.

        With ``replication > 1``, k-1 replica copies are written to distinct
        live nodes (SFC-successor placement) and registered alongside the
        primary. ``app_id`` records the producing application so the
        recovery ladder can re-enact the right bundle if every copy is lost.

        ``generation`` is the writer's dispatch generation (the workflow
        engine bumps it on every re-dispatch). A write older than the
        object's fence is rejected with :class:`StaleWriteError` — a healed
        minority cannot overwrite majority-side work. With a
        ``write_quorum`` configured, the put raises :class:`QuorumError`
        unless at least that many of its k copies landed on nodes reachable
        from the writer.
        """
        tracer = self.dart.tracer
        if not tracer.enabled:
            return self._put_seq(
                core, var, region, element_size, version, data, app_id,
                generation,
            )
        with tracer.span("cods.put_seq", var=var, core=core, version=version) as sp:
            obj = self._put_seq(
                core, var, region, element_size, version, data, app_id,
                generation,
            )
            # The put span covers every core now holding a copy (primary +
            # replicas), so failover pulls still link to their producer.
            self._put_spans[(var, core)] = sp
            for rc in self._replicas.get((var, version, core), ()):
                self._put_spans[(var, rc)] = sp
            return obj

    def _put_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int,
        version: int,
        data: "object | None",
        app_id: int = -1,
        generation: int = 0,
    ) -> DataObject:
        if generation or self._object_gen:
            fence = self._object_gen.get((var, version, core), 0)
            if generation < fence:
                self._partition_count("partition.fenced_writes")
                injector = self.dart.injector
                if injector is not None:
                    injector.record(
                        "stale_write_fenced",
                        f"{var} v{version} core={core} "
                        f"generation={generation} fence={fence}",
                    )
                if self.provenance.enabled:
                    self.provenance.record(
                        "object.fence",
                        cause=self._prov_puts.get((var, version)),
                        var=var, version=version, core=core,
                        generation=generation, fence=fence,
                    )
                raise StaleWriteError(
                    f"write of {var!r} v{version} from core {core} carries "
                    f"generation {generation}, fenced at {fence}"
                )
            if generation > fence:
                self._object_gen[(var, version, core)] = generation
        if data is not None:
            import numpy as np

            data = np.asarray(data)
            element_size = data.itemsize
        obj = DataObject(
            var=var,
            version=version,
            region=self._as_region(region),
            owner_core=core,
            element_size=element_size,
            payload=data,
        )
        store = self.store_of(core)
        if store.get(var, version) is not None:
            store.evict(var, version)
            self.dht.unregister(var, version, core)
            self._drop_replicas(var, version, core)
        elif self._spilled and (var, version, core) in self._spilled:
            # Re-put of a spilled object (re-enactment after its deep-memory
            # copy was lost): retire the tier copy and its still-standing
            # registration before the fresh primary takes over.
            self._spill[self.cluster.node_of_core(core)].drop(
                var, version, core
            )
            self.dht.unregister(var, version, core)
            self._drop_replicas(var, version, core)
            self._spilled.discard((var, version, core))
        if self.enforce_memory:
            self._admit(store, obj)
        else:
            store.insert(obj)
        self.dht.register(obj)
        self._produced_by[(var, version, core)] = app_id
        if self._dead_nodes:
            # A re-enacted producer lands on fresh cores. Retire this
            # (var, version)'s dead logical objects: bookkeeping when every
            # copy died with its node, and — when replicas outlived a dead
            # primary — any surviving copies of the *same region*, which the
            # new object supersedes (leaving them would double-cover the
            # region in consumer schedules).
            for key in [
                k for k in self._produced_by
                if k[0] == var and k[1] == version and k[2] != core
            ]:
                pcore = key[2]
                survivors = []  # (holding core, copy) pairs still stored
                pstore = self._stores.get(pcore)
                if pstore is not None:
                    prim = pstore.get(var, version)
                    if prim is not None:
                        survivors.append((pcore, prim))
                for rc in self._replicas.get(key, ()):
                    rstore = self._stores.get(rc)
                    rep = (
                        rstore.get(var, version, of=pcore)
                        if rstore is not None else None
                    )
                    if rep is not None:
                        survivors.append((rc, rep))
                if survivors:
                    if survivors[0][1].region != obj.region:
                        continue  # a different rank's share — keep it
                    for rc, _copy in survivors:
                        self._stores[rc].evict(var, version, of=pcore)
                        self.dht.unregister(var, version, rc, of=pcore)
                del self._produced_by[key]
                self._replicas.pop(key, None)
        if self.replication > 1:
            skipped = self._replicate(obj)
        else:
            skipped = 0
        if self.write_quorum is not None:
            acks = 1 + len(
                self._replicas.get((var, version, core), ())
            )
            if acks < self.write_quorum:
                self._partition_count("quorum.failed_writes")
                if self.provenance.enabled:
                    self.provenance.record(
                        "object.quorum_fail",
                        cause=self._prov_puts.get((var, version)),
                        var=var, version=version, core=core,
                        acks=acks, quorum=self.write_quorum,
                    )
                raise QuorumError(
                    f"write of {var!r} v{version} from core {core} reached "
                    f"{acks}/{self.replication} copies; write quorum is "
                    f"{self.write_quorum}"
                )
            if skipped:
                # Acknowledged, but short of full replication: the heal-time
                # reconciliation tops the missing copies back up.
                self._partition_count("quorum.degraded_writes")
        if self.provenance.enabled:
            self._prov_puts[(var, version)] = self.provenance.record(
                "object.put", var=var, version=version, core=core,
                copies=1 + len(self._replicas.get((var, version, core), ())),
                degraded=bool(skipped), app=app_id,
            )
        return obj

    def _replicate(self, obj: DataObject) -> int:
        """Write k-1 replicas of a freshly put primary to distinct nodes.

        With partitions declared, a replica whose holder is unreachable
        from the writer is *skipped* (never half-written): the copy simply
        does not exist until reconciliation re-replicates it. Returns the
        number of skipped targets (0 on the partition-free path).
        """
        targets = self.placer.replica_cores(
            obj.owner_core, self.replication - 1, alive=self._node_alive
        )
        partitions = self._partitions_armed()
        placed: list[int] = []
        skipped = 0
        for t in targets:
            rep = _dc_replace(obj, owner_core=t, primary_core=obj.owner_core)
            if self.enforce_memory and not self._admit_replica(t, rep):
                skipped += 1
                continue
            if partitions:
                # Transfer first: an unreachable target must not leave a
                # ghost copy in its store or the DHT tables.
                try:
                    rec = self.dart.transfer(
                        src_core=obj.owner_core,
                        dst_core=t,
                        nbytes=rep.nbytes,
                        kind=TransferKind.REPLICATION,
                        var=obj.var,
                    )
                except NetworkPartitionError:
                    skipped += 1
                    self._partition_count("quorum.replicas_skipped")
                    continue
                self.store_of(t).insert(rep)
                self.dht.register(rep)
            else:
                self.store_of(t).insert(rep)
                self.dht.register(rep)
                rec = self.dart.transfer(
                    src_core=obj.owner_core,
                    dst_core=t,
                    nbytes=rep.nbytes,
                    kind=TransferKind.REPLICATION,
                    var=obj.var,
                )
            if rec.corrupted:
                self._poison_copy(rep)
            placed.append(t)
        key = (obj.var, obj.version, obj.owner_core)
        if partitions:
            # Stale holders kept across the cut (see _drop_replicas) stay
            # in the bookkeeping so heal-time reconciliation finds them.
            placed = sorted(set(placed) | set(self._replicas.get(key, ())))
        self._replicas[key] = tuple(placed)
        return skipped

    def _poison_copy(self, rep: DataObject) -> None:
        """Mark a freshly stored copy as corrupted-in-flight.

        The copy's stored checksum is flipped so :meth:`DataObject.
        verify_checksum` (and the scrubber) detect it, modelling a replica
        whose bits were damaged by the REPLICATION transfer that wrote it.
        """
        store = self.store_of(rep.owner_core)
        store.evict(rep.var, rep.version, of=rep.logical_owner)
        store.insert(_dc_replace(rep, checksum=rep.checksum ^ 0x1))
        self._gray_count("integrity.corrupted_replicas")

    def _drop_replicas(self, var: str, version: int, primary: int) -> None:
        """Evict and unregister every replica of one logical object.

        Under an active partition a holder unreachable from the primary
        cannot process the eviction: its stale copy survives — still
        registered, so minority-side reads may serve it — until heal-time
        :meth:`reconcile_partition` repairs it by checksum against the
        primary.
        """
        partitions = self._partitions_armed()
        injector = self.dart.injector
        pnode = self.cluster.node_of_core(primary)
        kept: list[int] = []
        for rc in self._replicas.pop((var, version, primary), ()):
            if partitions and not injector.reachable(
                pnode, self.cluster.node_of_core(rc)
            ):
                kept.append(rc)
                self._partition_count("partition.stale_replicas")
                continue
            rstore = self._stores.get(rc)
            if rstore is not None and rstore.get(var, version, of=primary) is not None:
                rstore.evict(var, version, of=primary)
            self.dht.unregister(var, version, rc, of=primary)
        if kept:
            self._replicas[(var, version, primary)] = tuple(kept)

    def get_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None = None,
        app_id: int = -1,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        """Retrieve a region of ``var`` from the space onto ``core``.

        ``region`` may be a bounding box or an exact interval product (the
        paper's geometric descriptors). Returns the (possibly cached)
        communication schedule and the transfer records of the pulls it
        issued.
        """
        tracer = self.dart.tracer
        if not tracer.enabled:
            return self._get_seq(
                core, var, region, version, app_id, NULL_TRACER
            )
        with tracer.span("cods.get_seq", var=var, core=core) as span:
            schedule, records = self._get_seq(
                core, var, region, version, app_id, tracer, span
            )
            span.set(plans=len(schedule.plans), nbytes=schedule.total_bytes)
            return schedule, records

    def _get_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None,
        app_id: int,
        tracer,
        span=None,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        from repro.cods.objects import region_cells

        qregion = self._as_region(region)
        if region_cells(qregion) == 0:
            # Nothing requested: empty schedule, no lookup, no transfers.
            return CommSchedule(var=var, dst_core=core, region=qregion), []
        bbox = region_bounding_box(qregion)
        self._check_box(bbox)
        schedule: CommSchedule | None = None
        if self.schedule_cache is not None:
            schedule = self.schedule_cache.get(var, core, qregion)
            if schedule is not None and not self._schedule_alive(schedule):
                # The cached schedule references evicted or crashed sources;
                # recompute and replace it (latest wins).
                schedule = None
        if span is not None:
            span.set(cache_hit=schedule is not None)
        if schedule is None:
            if tracer.enabled:
                with tracer.span("schedule.compute", var=var, core=core):
                    locations = self.lookup.locate(core, var, bbox, version)
                    locations = self._select_copies(core, locations, var)
                    schedule = compute_schedule(var, core, qregion, locations)
            else:
                locations = self.lookup.locate(core, var, bbox, version)
                locations = self._select_copies(core, locations, var)
                schedule = compute_schedule(var, core, qregion, locations)
            if self.schedule_cache is not None:
                self.schedule_cache.put(schedule)
        return schedule, self._execute(schedule, app_id)

    def _schedule_alive(self, schedule: CommSchedule) -> bool:
        """Whether every source of a cached schedule still holds the var.

        Guards the seq cache against dangling sources: an evicted object or
        a crashed node leaves stale cache entries behind (entries are keyed
        without a version, so eviction cannot target them directly).
        """
        for p in schedule.plans:
            store = self._stores.get(p.src_core)
            if store is None or not store.has_var(schedule.var):
                return False
        return True

    def _select_copies(
        self, dst_core: int, locations, var: str
    ) -> "list[ObjectLocation]":
        """Pick exactly one live copy per logical object before scheduling.

        With replication every logical object resolves to several locations
        (primary + replicas) covering the same region; feeding them all to
        ``compute_schedule`` would double-cover. The primary wins while its
        node is alive; otherwise the read fails over to a replica, preferring
        one on the destination's node (shared-memory pull), then the lowest
        core id for determinism. No live copy left ⇒ :class:`DataLostError`.

        Under an active partition the pool additionally shrinks to copies
        *reachable* from the destination: unreachable-but-alive holders are
        never failed over to a dead-node path (the data still exists), the
        read instead stalls with :class:`NetworkPartitionError` when no copy
        is reachable, or fails the configured ``read_quorum``. A reachable
        replica standing in for an alive-but-cut-off primary counts as a
        ``partition.failover_reads``, distinct from crash failover.

        Identity transform when ``replication == 1`` and no node has died —
        and skipped entirely on the default path (see the caller's gate).
        """
        partitions = self._partitions_armed()
        if not self._dead_nodes and self.replication == 1 and not partitions:
            return list(locations)
        injector = self.dart.injector
        groups: dict[tuple[int, int], list] = {}
        for loc in locations:
            groups.setdefault((loc.version, loc.logical_owner), []).append(loc)
        dst_node = self.cluster.node_of_core(dst_core)
        chosen = []
        for (version, owner), copies in groups.items():
            live = [
                c for c in copies
                if self.cluster.node_of_core(c.owner_core) not in self._dead_nodes
            ]
            if not live:
                raise DataLostError(
                    f"every copy of {var!r} v{version} (owner core {owner}) "
                    "is on a crashed node"
                )
            had_primary = any(not c.is_replica for c in live)
            pool = live
            if partitions:
                pool = [
                    c for c in live
                    if injector.reachable(
                        dst_node, self.cluster.node_of_core(c.owner_core)
                    )
                ]
                if not pool:
                    self._partition_count("partition.stalled_reads")
                    raise NetworkPartitionError(
                        f"every live copy of {var!r} v{version} (owner core "
                        f"{owner}) is across an active network cut from core "
                        f"{dst_core}"
                    )
                if (self.read_quorum is not None
                        and len(pool) < self.read_quorum):
                    self._partition_count("quorum.failed_reads")
                    raise QuorumError(
                        f"read of {var!r} v{version} from core {dst_core} "
                        f"reaches {len(pool)}/{len(live)} live copies; read "
                        f"quorum is {self.read_quorum}"
                    )
                if len(pool) < len(live):
                    self._partition_count("quorum.degraded_reads")
            primary = next((c for c in pool if not c.is_replica), None)
            if primary is not None:
                chosen.append(primary)
                continue
            pick = min(
                pool,
                key=lambda c: (
                    self.cluster.node_of_core(c.owner_core) != dst_node,
                    c.owner_core,
                ),
            )
            if partitions and had_primary:
                # The primary is alive but cut off — partition failover,
                # not the crash-failover the resilience counter tracks.
                self._partition_count("partition.failover_reads")
            elif self._m_failover is not None:
                self._m_failover.inc()
            if self.provenance.enabled:
                self.provenance.record(
                    "object.replica_select",
                    cause=self._prov_puts.get((var, version)),
                    var=var, version=version, core=pick.owner_core,
                    reader=dst_core, pool=len(pool),
                    failover=(
                        "partition" if partitions and had_primary
                        else "crash"
                    ),
                )
            chosen.append(pick)
        chosen.sort(key=lambda c: (c.version, c.owner_core))
        return chosen

    def fetch_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None = None,
        app_id: int = -1,
    ):
        """Like :meth:`get_seq`, but also assembles and returns the values.

        Every contributing object must carry a payload (stored with
        ``put_seq(..., data=...)``). Returns ``(array, schedule, records)``
        where ``array`` has the region's per-dimension measures as its shape.

        Assembly materializes per-dimension index arrays, so this is meant
        for demo/validation domains (up to ~10^6 cells), not the paper-scale
        accounting runs — those never touch values.
        """
        import numpy as np

        qregion = self._as_region(region)
        schedule, records = self.get_seq(core, var, qregion, version, app_id)

        qcoords = [s.to_array() for s in qregion]
        shape = tuple(len(c) for c in qcoords)
        out: "np.ndarray | None" = None
        for plan in schedule.plans:
            store = self.store_of(plan.src_core)
            # Find this owner's payload objects for the variable.
            objs = [
                o for o in store.objects()
                if o.var == var and (version is None or o.version == version)
            ]
            if version is None and objs:
                newest = max(o.version for o in objs)
                objs = [o for o in objs if o.version == newest]
            for obj in objs:
                if obj.payload is None:
                    raise SpaceError(
                        f"object {obj.key()} has no payload; fetch_seq needs "
                        "data stored with put_seq(..., data=...)"
                    )
                inter = [
                    q.intersection(r) for q, r in zip(qregion, obj.region)
                ]
                if any(not s for s in inter):
                    continue
                if out is None:
                    out = np.zeros(shape, dtype=np.asarray(obj.payload).dtype)
                icoords = [s.to_array() for s in inter]
                qpos = [
                    np.searchsorted(qc, ic) for qc, ic in zip(qcoords, icoords)
                ]
                ocoords = [s.to_array() for s in obj.region]
                opos = [
                    np.searchsorted(oc, ic) for oc, ic in zip(ocoords, icoords)
                ]
                out[np.ix_(*qpos)] = np.asarray(obj.payload)[np.ix_(*opos)]
        if out is None:
            raise SpaceError(f"no payload data found for {var!r}")
        return out, schedule, records

    # -- concurrent coupling -----------------------------------------------------------

    def put_cont(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int = 8,
    ) -> None:
        """Expose a producer task's region of ``var`` for direct transfer."""
        tracer = self.dart.tracer
        if tracer.enabled:
            self._put_spans[(var, core)] = tracer.instant(
                "cods.put_cont", var=var, core=core
            )
        known = self._producer_esize.setdefault(var, element_size)
        if known != element_size:
            raise SpaceError(
                f"element size mismatch for {var!r}: {element_size} != {known}"
            )
        entry = (core, self._as_region(region))
        sources = self._producers.setdefault(var, [])
        # Latest wins: a re-enacted producer re-declares its region from a
        # fresh core; keeping the old declaration would double the coverage.
        kept = [s for s in sources if s[1] != entry[1]]
        if self.provenance.enabled:
            self.provenance.record(
                "object.expose", var=var, core=core,
                replaced=len(kept) != len(sources),
            )
        sources[:] = kept + [entry]

    def get_cont(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        app_id: int = -1,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        """Pull a region of ``var`` directly from the producer tasks."""
        tracer = self.dart.tracer
        if not tracer.enabled:
            return self._get_cont(core, var, region, app_id, NULL_TRACER)
        with tracer.span("cods.get_cont", var=var, core=core) as span:
            schedule, records = self._get_cont(
                core, var, region, app_id, tracer, span
            )
            span.set(plans=len(schedule.plans), nbytes=schedule.total_bytes)
            return schedule, records

    def _get_cont(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        app_id: int,
        tracer,
        span=None,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        qregion = self._as_region(region)
        self._check_box(region_bounding_box(qregion))
        sources = self._producers.get(var)
        if not sources:
            raise SpaceError(f"no concurrent producer declared for {var!r}")
        schedule: CommSchedule | None = None
        if self.schedule_cache is not None:
            schedule = self.schedule_cache.get(var, core, qregion)
        if span is not None:
            span.set(cache_hit=schedule is not None)
        if schedule is None:
            if tracer.enabled:
                with tracer.span("schedule.compute", var=var, core=core):
                    schedule = producer_schedule(
                        var, core, qregion, sources, self._producer_esize[var]
                    )
            else:
                schedule = producer_schedule(
                    var, core, qregion, sources, self._producer_esize[var]
                )
            if self.schedule_cache is not None:
                self.schedule_cache.put(schedule)
        return schedule, self._execute(schedule, app_id)

    # -- bundle retrieval --------------------------------------------------------------

    def get_bundle(
        self,
        var: str,
        requests: "list[tuple[int, Box | RegionProduct]]",
        app_id: int = -1,
        mode: str = "cont",
        version: "int | None" = None,
    ) -> "list[tuple[CommSchedule, list[TransferRecord]]]":
        """Retrieve one whole coupling bundle: every consumer rank's region
        in one call, in request order.

        With the bundle cache enabled (``use_bundle_cache=True``), the full
        set of schedules is keyed by (bundle topology, placement) and a
        repeat coupling skips the per-rank DHT-query/schedule path in a
        single probe. Without it, this is exactly a loop over
        :meth:`get_seq` / :meth:`get_cont`.
        """
        if mode not in ("seq", "cont"):
            raise SpaceError(f"unknown bundle mode {mode!r}")
        if self.bundle_cache is None:
            if mode == "seq":
                return [
                    self.get_seq(core, var, region, version, app_id)
                    for core, region in requests
                ]
            return [
                self.get_cont(core, var, region, app_id)
                for core, region in requests
            ]
        reqs = tuple((core, self._as_region(r)) for core, r in requests)
        if mode == "cont":
            # Placement signature: the producer declarations feeding this
            # coupling. A producer landing elsewhere (re-enactment after a
            # crash) changes the signature and misses cleanly.
            sources_sig = tuple(self._producers.get(var, ()))
        else:
            sources_sig = version
        key = BundleScheduleCache.key_for(var, mode, reqs, sources_sig)
        scheds = self.bundle_cache.get(key)
        if scheds is not None and mode == "seq" and not all(
            self._schedule_alive(s) for s in scheds
        ):
            scheds = None  # sources evicted/crashed since; recompute
        if scheds is None:
            if mode == "seq":
                out = [
                    self.get_seq(core, var, region, version, app_id)
                    for core, region in reqs
                ]
            else:
                out = [
                    self.get_cont(core, var, region, app_id)
                    for core, region in reqs
                ]
            self.bundle_cache.put(key, tuple(s for s, _ in out))
            return out
        return [(s, self._execute(s, app_id)) for s in scheds]

    # -- fault recovery ----------------------------------------------------------------

    def fail_dht_core(self, core: int) -> int:
        """Fail one DHT core and fail over to its successor.

        The failed core's Hilbert interval is reassigned to the successor
        DHT core and every location table is rebuilt from the surviving
        per-core object stores, so subsequent ``get_seq`` queries keep
        resolving (the data itself was never on the DHT core). The schedule
        cache is cleared: cached schedules may reference pre-failover
        routing. Returns the successor's global core id.
        """
        successor = self.dht.fail_core(core)
        self.dht.rebuild(
            obj for store in self._stores.values() for obj in store.objects()
        )
        if self.schedule_cache is not None:
            self.schedule_cache.clear()
        if self.bundle_cache is not None:
            self.bundle_cache.clear()
        return successor

    def mark_node_dead(self, node: int) -> int:
        """The *physical* effect of a node crash, at crash time.

        Objects in the node's in-memory stores vanish and its concurrent-
        producer declarations are withdrawn — that is what actually happens
        the instant a node dies. DHT failover, cache invalidation, and
        re-replication are *recovery* actions that wait for the failure
        detector (:meth:`recover_node_crash`); until then, reads that touch
        the dead node fail over through :meth:`_select_copies`. Returns the
        number of data objects lost from the node's stores.
        """
        if not 0 <= node < self.cluster.num_nodes:
            raise SpaceError(f"node {node} out of range")
        crashed_cores = set(self.cluster.cores_of_node(node))
        self._dead_nodes.add(node)
        lost = 0
        for core in crashed_cores:
            store = self._stores.get(core)
            if store is not None:
                lost += len(store)
                store.clear()
        tier = self._spill.get(node)
        if tier is not None:
            # The deep-memory tier is node-local; it dies with the node.
            # The _spilled keys stay so restore attempts surface the loss.
            lost += tier.clear()
        self._withdraw_producers(crashed_cores)
        return lost

    def _withdraw_producers(self, crashed_cores: set[int]) -> None:
        for var, sources in list(self._producers.items()):
            kept = [(c, r) for c, r in sources if c not in crashed_cores]
            if kept:
                self._producers[var] = kept
            else:
                del self._producers[var]
                self._producer_esize.pop(var, None)

    def recover_node_crash(self, node: int) -> None:
        """Recovery actions once a node crash has been *detected*.

        The node's DHT core fails over to its successor (unless it is the
        last one standing), location tables rebuild from the surviving
        stores, the schedule cache drops (cached schedules may route via the
        dead node), and replica bookkeeping forgets copies that died with
        the node.
        """
        if not 0 <= node < self.cluster.num_nodes:
            raise SpaceError(f"node {node} out of range")
        crashed_cores = set(self.cluster.cores_of_node(node))
        node_dht_cores = crashed_cores & set(self.dht.dht_cores)
        for core in sorted(node_dht_cores):
            if len(self.dht.dht_cores) > 1:
                self.dht.fail_core(core)
        self.dht.rebuild(
            obj for store in self._stores.values() for obj in store.objects()
        )
        for key, cores in list(self._replicas.items()):
            kept = tuple(c for c in cores if c not in crashed_cores)
            if kept != cores:
                self._replicas[key] = kept
        if self.schedule_cache is not None:
            self.schedule_cache.clear()
        if self.bundle_cache is not None:
            self.bundle_cache.clear()

    def on_node_crash(self, node: int) -> int:
        """Crash plus immediate recovery, in one call.

        Legacy entry point for runs without a failure detector: the crash's
        physical effects and the recovery actions happen at the same
        simulated instant (zero detection latency). Returns the number of
        data objects lost.
        """
        lost = self.mark_node_dead(node)
        self.recover_node_crash(node)
        return lost

    def restore_replication(self) -> tuple[int, int]:
        """Re-replicate under-replicated objects after crashes.

        The logical owner core is an *identity*, not a location: it never
        changes, even once dead (re-keying a logical object under a new
        primary would collide with the new core's own primary of the same
        variable). Re-replication simply places additional copies — sourced
        from a surviving one, the primary if alive, else the lowest-core
        replica — until ``replication`` copies exist again, each costing one
        REPLICATION transfer. Objects with *no* surviving copy are not
        handled here; :meth:`lost_objects` reports them for the
        re-enactment rung of the recovery ladder.

        Returns ``(copies_created, bytes_copied)``.
        """
        if self.replication <= 1:
            return (0, 0)
        partitions = self._partitions_armed()
        # Survey the surviving copies of every logical object.
        groups: dict[tuple[str, int, int], list[DataObject]] = {}
        for store in self._stores.values():
            for obj in store.objects():
                key = (obj.var, obj.version, obj.logical_owner)
                groups.setdefault(key, []).append(obj)
        created = 0
        nbytes = 0
        for (var, version, owner), copies in sorted(groups.items()):
            copies.sort(key=lambda o: o.owner_core)
            holders = [o.owner_core for o in copies]
            missing = self.replication - len(holders)
            if missing <= 0:
                continue
            src = next((o for o in copies if not o.is_replica), copies[0])
            targets = self.placer.replica_cores(
                owner,
                missing,
                alive=self._node_alive,
                exclude_nodes=[self.cluster.node_of_core(c) for c in holders],
            )
            for t in targets:
                rep = _dc_replace(src, owner_core=t, primary_core=owner)
                if self.enforce_memory and not self._admit_replica(t, rep):
                    continue
                if partitions:
                    # Transfer first (cf. _replicate): a target across a
                    # still-open cut is skipped, never half-written.
                    try:
                        rec = self.dart.transfer(
                            src_core=src.owner_core,
                            dst_core=t,
                            nbytes=rep.nbytes,
                            kind=TransferKind.REPLICATION,
                            var=var,
                            link_from=self._put_spans.get((var, src.owner_core)),
                        )
                    except NetworkPartitionError:
                        self._partition_count("quorum.replicas_skipped")
                        continue
                    self.store_of(t).insert(rep)
                else:
                    self.store_of(t).insert(rep)
                    rec = self.dart.transfer(
                        src_core=src.owner_core,
                        dst_core=t,
                        nbytes=rep.nbytes,
                        kind=TransferKind.REPLICATION,
                        var=var,
                        link_from=self._put_spans.get((var, src.owner_core)),
                    )
                if rec.corrupted:
                    self._poison_copy(rep)
                sp = self._put_spans.get((var, src.owner_core))
                if sp is not None:  # new copy inherits its producer's span
                    self._put_spans[(var, t)] = sp
                holders.append(t)
                created += 1
                nbytes += rep.nbytes
            self._replicas[(var, version, owner)] = tuple(
                sorted(c for c in holders if c != owner)
            )
        if created:
            self.dht.rebuild(
                obj for store in self._stores.values() for obj in store.objects()
            )
            if self.schedule_cache is not None:
                self.schedule_cache.clear()
            if self.bundle_cache is not None:
                self.bundle_cache.clear()
        return created, nbytes

    def reconcile_partition(self) -> tuple[int, int]:
        """Heal-time reconciliation of replica sets divergent across a cut.

        While a partition is open, replica holders unreachable from their
        primary keep stale copies (see :meth:`_drop_replicas`) and quorum
        writes may land short of full replication (see :meth:`_replicate`).
        Once the cut heals, the resilience manager calls this to walk the
        replica bookkeeping and (1) rewrite every copy whose content
        checksum disagrees with its primary's — one REPLICATION transfer
        each, (2) top missing copies back up via
        :meth:`restore_replication`.

        Returns ``(divergent_copies_repaired, missing_copies_created)``.
        """
        repaired = 0
        for (var, version, owner), reps in sorted(self._replicas.items()):
            pstore = self._stores.get(owner)
            prim = pstore.get(var, version) if pstore is not None else None
            if prim is None:
                continue  # dead primary: restore_replication's concern
            for rc in reps:
                rstore = self._stores.get(rc)
                rep = (
                    rstore.get(var, version, of=owner)
                    if rstore is not None else None
                )
                if rep is None or rep.checksum == prim.checksum:
                    continue
                try:
                    self.dart.transfer(
                        src_core=owner,
                        dst_core=rc,
                        nbytes=prim.nbytes,
                        kind=TransferKind.REPLICATION,
                        var=var,
                        link_from=self._put_spans.get((var, owner)),
                    )
                except NetworkPartitionError:
                    continue  # still cut off; the next heal pass retries
                rstore.evict(var, version, of=owner)
                self.dht.unregister(var, version, rc, of=owner)
                fresh = _dc_replace(prim, owner_core=rc, primary_core=owner)
                rstore.insert(fresh)
                self.dht.register(fresh)
                repaired += 1
                self._partition_count("partition.reconciled")
        if self.dht.deferred_registrations:
            # Registrations that could not cross the cut left holes in the
            # location tables; the heal-time rebuild closes them (accounted
            # as real anti-entropy control traffic).
            self._partition_count(
                "partition.deferred_registrations",
                self.dht.deferred_registrations,
            )
            self.dht.deferred_registrations = 0
            self.dht.rebuild(
                obj for store in self._stores.values() for obj in store.objects()
            )
            if self.schedule_cache is not None:
                self.schedule_cache.clear()
            if self.bundle_cache is not None:
                self.bundle_cache.clear()
        created, _nbytes = self.restore_replication()
        if repaired and self.schedule_cache is not None:
            self.schedule_cache.clear()
        if repaired and self.bundle_cache is not None:
            self.bundle_cache.clear()
        return repaired, created

    def scrub(self, repair: bool = True) -> tuple[int, int, int]:
        """Re-verify every stored copy's checksum; repair from a clean copy.

        The integrity scrubber (:class:`repro.resilience.integrity.
        IntegrityScrubber`) calls this periodically on the sim clock so
        latent corruption — a replica poisoned by a corrupted REPLICATION
        write — is found *before* a consumer trips over it. A corrupt copy
        is repaired in place from any clean copy of the same logical object
        (one REPLICATION transfer); with no clean copy reachable it is left
        for the recovery ladder's re-enactment rung.

        Returns ``(copies_checked, corrupt_found, repaired)``.
        """
        checked = corrupt = repaired = 0
        for core in sorted(self._stores):
            store = self._stores[core]
            for obj in sorted(store.objects(), key=lambda o: o.key()):
                checked += 1
                if obj.verify_checksum():
                    continue
                corrupt += 1
                self._gray_count("integrity.scrub.corrupt_found")
                if not repair:
                    continue
                owner = obj.logical_owner
                clean = None
                for c in (owner, *self._replicas.get(
                        (obj.var, obj.version, owner), ())):
                    if c == core:
                        continue
                    cstore = self._stores.get(c)
                    cand = (
                        cstore.get(obj.var, obj.version, of=owner)
                        if cstore is not None else None
                    )
                    if cand is not None and cand.verify_checksum():
                        clean = cand
                        break
                if clean is None:
                    continue  # no clean source; lost_objects handles it
                store.evict(obj.var, obj.version, of=owner)
                rec = self.dart.transfer(
                    src_core=clean.owner_core,
                    dst_core=core,
                    nbytes=clean.nbytes,
                    kind=TransferKind.REPLICATION,
                    var=obj.var,
                )
                fixed = _dc_replace(
                    clean,
                    owner_core=core,
                    primary_core=None if core == owner else owner,
                )
                if rec.corrupted:
                    # The repair write itself was damaged; the next scrub
                    # pass sees it again.
                    fixed = _dc_replace(fixed, checksum=fixed.checksum ^ 0x1)
                else:
                    repaired += 1
                    self._gray_count("integrity.scrub.repaired")
                store.insert(fixed)
        return checked, corrupt, repaired

    def lost_objects(self) -> "list[tuple[str, int, int]]":
        """Logical objects with *zero* surviving copies.

        Returns ``(var, version, producing app id)`` triples — the last rung
        of the recovery ladder re-enacts those apps' bundles. App id is -1
        when the producer did not identify itself.
        """
        alive: set[tuple[str, int, int]] = set()
        for store in self._stores.values():
            for obj in store.objects():
                alive.add((obj.var, obj.version, obj.logical_owner))
        for tier in self._spill.values():
            # A spilled primary still logically exists: it restores on
            # demand, so it is not lost.
            for obj in tier.objects():
                alive.add((obj.var, obj.version, obj.logical_owner))
        lost = []
        for (var, version, core), app_id in sorted(self._produced_by.items()):
            if (var, version, core) not in alive:
                lost.append((var, version, app_id))
        return lost

    # -- checkpoint manifest ---------------------------------------------------------

    def manifest(self) -> dict:
        """JSON-serializable snapshot of the space's logical state.

        Captures object descriptors (not payloads — checkpointing raw data
        arrays is out of scope and raises), producer declarations, replica
        bookkeeping, and failure state. :meth:`restore_manifest` rebuilds an
        equivalent space from it without re-accounting any transfers.
        """
        if any(len(t) for t in self._spill.values()):
            raise CheckpointError(
                "objects are parked in the deep-memory spill tier; "
                "checkpointing a space mid-spill is not supported — restore "
                "or drain the tier first"
            )
        objects = []
        for store in self._stores.values():
            for obj in store.objects():
                if obj.payload is not None:
                    raise CheckpointError(
                        f"object {obj.key()} carries a payload; checkpointing "
                        "value-bearing spaces is not supported"
                    )
                objects.append({
                    "var": obj.var,
                    "version": obj.version,
                    "owner_core": obj.owner_core,
                    "element_size": obj.element_size,
                    "primary_core": obj.primary_core,
                    "region": [list(s.intervals) for s in obj.region],
                })
        return {
            "replication": self.replication,
            "dead_nodes": sorted(self._dead_nodes),
            "failed_dht_cores": sorted(
                set(self.cluster.cores_of_node(n)[0] for n in self.cluster.nodes())
                - set(self.dht.dht_cores)
            ),
            "objects": objects,
            "producers": {
                var: [
                    [core, [list(s.intervals) for s in region]]
                    for core, region in sources
                ]
                for var, sources in self._producers.items()
            },
            "producer_esize": dict(self._producer_esize),
            "produced_by": [
                [var, version, core, app_id]
                for (var, version, core), app_id in sorted(
                    self._produced_by.items()
                )
            ],
            "replicas": [
                [var, version, core, list(cores)]
                for (var, version, core), cores in sorted(self._replicas.items())
            ],
        }

    def restore_manifest(self, manifest: dict) -> None:
        """Rebuild logical state from :meth:`manifest` (fresh space only)."""
        if any(len(s) for s in self._stores.values()) or self._producers:
            raise CheckpointError("restore_manifest needs an empty space")
        if manifest.get("replication", 1) != self.replication:
            raise CheckpointError(
                f"checkpoint was taken at replication="
                f"{manifest.get('replication', 1)}, space is at "
                f"{self.replication}"
            )
        # Failure state first, so DHT routing matches the checkpoint's.
        for core in manifest.get("failed_dht_cores", ()):
            if core in self.dht.dht_cores and len(self.dht.dht_cores) > 1:
                self.dht.fail_core(core)
        self._dead_nodes = set(manifest.get("dead_nodes", ()))
        objs = []
        for rec in manifest["objects"]:
            region = tuple(
                IntervalSet([tuple(p) for p in pairs])
                for pairs in rec["region"]
            )
            obj = DataObject(
                var=rec["var"],
                version=rec["version"],
                region=region,
                owner_core=rec["owner_core"],
                element_size=rec["element_size"],
                primary_core=rec.get("primary_core"),
            )
            self.store_of(obj.owner_core).insert(obj)
            objs.append(obj)
        self.dht.rebuild(objs, account=False)
        self._producers = {
            var: [
                (
                    core,
                    tuple(
                        IntervalSet([tuple(p) for p in pairs])
                        for pairs in region
                    ),
                )
                for core, region in sources
            ]
            for var, sources in manifest.get("producers", {}).items()
        }
        self._producer_esize = dict(manifest.get("producer_esize", {}))
        self._produced_by = {
            (var, version, core): app_id
            for var, version, core, app_id in manifest.get("produced_by", ())
        }
        self._replicas = {
            (var, version, core): tuple(cores)
            for var, version, core, cores in manifest.get("replicas", ())
        }

    # -- maintenance ----------------------------------------------------------------------

    def evict(self, core: int, var: str, version: int = 0) -> DataObject:
        """Drop an object from its store and the DHT location tables.

        Evicting a primary also drops its replicas and retires the
        producer bookkeeping — an evicted object is gone on purpose, not
        lost. Cached schedules that referenced the object are rejected on
        their next cache hit (``_schedule_alive``), so a ``get_seq`` after
        the last covering object is evicted raises :class:`ScheduleError`
        instead of silently pulling from an empty store.
        """
        obj = self.store_of(core).evict(var, version)
        self.dht.unregister(var, version, core)
        self._drop_replicas(var, version, core)
        self._produced_by.pop((var, version, core), None)
        return obj

    def reset_concurrent(self, var: str | None = None) -> None:
        """Forget concurrent producer declarations (all vars by default)."""
        if var is None:
            self._producers.clear()
            self._producer_esize.clear()
        else:
            self._producers.pop(var, None)
            self._producer_esize.pop(var, None)

    def stored_bytes(self) -> int:
        return sum(s.used_bytes for s in self._stores.values())
