"""CoDS — the co-located DataSpaces shared-space facade.

Implements the paper's four data-sharing operators (Table I):

=================  ============================================================
``put_seq``        store coupled data in the distributed in-memory space
                   (sequential coupling; data outlives the producer app)
``get_seq``        retrieve a region from the space — DHT lookup, schedule
                   computation (cached), receiver-driven pulls
``put_cont``       expose a producer task's region for direct transfer to a
                   concurrently running consumer
``get_cont``       pull a region directly from the producer tasks' memory
                   (no staging through the space)
=================  ============================================================

All pulls go through HybridDART, which picks shared memory for intra-node
endpoints and the network otherwise — so the in-situ benefit of a good task
mapping appears directly in the transfer metrics.
"""

from __future__ import annotations

from repro.cods.dht import SpatialDHT
from repro.cods.lookup import DataLookupService
from repro.cods.objects import (
    DataObject,
    ObjectStore,
    RegionProduct,
    region_bounding_box,
    region_from_box,
)
from repro.cods.schedule import (
    CommSchedule,
    ScheduleCache,
    compute_schedule,
    producer_schedule,
)
from repro.domain.box import Box
from repro.errors import SpaceError
from repro.hardware.cluster import Cluster
from repro.obs.tracer import NULL_TRACER
from repro.sfc.linearize import DomainLinearizer
from repro.transport.hybriddart import HybridDART
from repro.transport.message import TransferKind, TransferRecord

__all__ = ["CoDS"]


class CoDS:
    """A shared space spanning all cores of a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        domain_extents: tuple[int, ...],
        dart: HybridDART | None = None,
        linearizer: DomainLinearizer | None = None,
        use_schedule_cache: bool = True,
        enforce_memory: bool = False,
    ) -> None:
        self.cluster = cluster
        self.dart = dart if dart is not None else HybridDART(cluster)
        if self.dart.cluster is not cluster:
            raise SpaceError("DART and CoDS must share the same cluster")
        self.linearizer = (
            linearizer
            if linearizer is not None
            else DomainLinearizer(domain_extents)
        )
        if self.linearizer.extents != tuple(domain_extents):
            raise SpaceError("linearizer extents do not match domain extents")
        self.domain = Box.from_extents(domain_extents)
        # One DHT core per compute node: the node's first core.
        dht_cores = [cluster.cores_of_node(n)[0] for n in cluster.nodes()]
        self.dht = SpatialDHT(self.linearizer, dht_cores, self.dart)
        self.lookup = DataLookupService(self.dht, cluster)
        self.schedule_cache: ScheduleCache | None = (
            ScheduleCache(registry=self.dart.registry)
            if use_schedule_cache
            else None
        )
        per_core_capacity = (
            cluster.machine.node.memory_bytes // cluster.cores_per_node
            if enforce_memory
            else None
        )
        self._stores: dict[int, ObjectStore] = {
            core: ObjectStore(core, per_core_capacity) for core in cluster.cores()
        }
        # var -> [(core, region)], element size; for the concurrent path.
        self._producers: dict[str, list[tuple[int, RegionProduct]]] = {}
        self._producer_esize: dict[str, int] = {}

    # -- helpers ----------------------------------------------------------------

    @property
    def tracer(self):
        """The span tracer shared with the transport (no-op by default)."""
        return self.dart.tracer

    def store_of(self, core: int) -> ObjectStore:
        try:
            return self._stores[core]
        except KeyError:
            raise SpaceError(f"core {core} is not part of this space") from None

    def _as_region(self, region: "Box | RegionProduct") -> RegionProduct:
        if isinstance(region, Box):
            if not self.domain.contains_box(region):
                raise SpaceError(f"region {region} outside domain {self.domain}")
            return region_from_box(region)
        return tuple(region)

    def _check_box(self, box: Box) -> None:
        if not self.domain.contains_box(box):
            raise SpaceError(f"requested box {box} outside domain {self.domain}")

    def _execute(
        self, schedule: CommSchedule, app_id: int
    ) -> list[TransferRecord]:
        """Receiver-driven pulls: one transfer per plan entry."""
        return [
            self.dart.transfer(
                src_core=p.src_core,
                dst_core=p.dst_core,
                nbytes=p.nbytes,
                kind=TransferKind.COUPLING,
                app_id=app_id,
                var=p.var,
            )
            for p in schedule.plans
        ]

    # -- sequential coupling ---------------------------------------------------------

    def put_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int = 8,
        version: int = 0,
        data: "object | None" = None,
    ) -> DataObject:
        """Store a region of ``var`` in the space (owner = ``core``).

        ``data`` optionally attaches the actual values (an array shaped like
        the region); consumers can then :meth:`fetch_seq` assembled arrays.
        When given, its itemsize overrides ``element_size``.

        Re-putting an existing ``(var, version)`` from the same core
        replaces the stored object (latest wins) — bundle re-enactment after
        a fault re-issues its puts idempotently.
        """
        tracer = self.dart.tracer
        if not tracer.enabled:
            return self._put_seq(core, var, region, element_size, version, data)
        with tracer.span("cods.put_seq", var=var, core=core, version=version):
            return self._put_seq(core, var, region, element_size, version, data)

    def _put_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int,
        version: int,
        data: "object | None",
    ) -> DataObject:
        if data is not None:
            import numpy as np

            data = np.asarray(data)
            element_size = data.itemsize
        obj = DataObject(
            var=var,
            version=version,
            region=self._as_region(region),
            owner_core=core,
            element_size=element_size,
            payload=data,
        )
        store = self.store_of(core)
        if store.get(var, version) is not None:
            store.evict(var, version)
            self.dht.unregister(var, version, core)
        store.insert(obj)
        self.dht.register(obj)
        return obj

    def get_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None = None,
        app_id: int = -1,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        """Retrieve a region of ``var`` from the space onto ``core``.

        ``region`` may be a bounding box or an exact interval product (the
        paper's geometric descriptors). Returns the (possibly cached)
        communication schedule and the transfer records of the pulls it
        issued.
        """
        tracer = self.dart.tracer
        if not tracer.enabled:
            return self._get_seq(
                core, var, region, version, app_id, NULL_TRACER
            )
        with tracer.span("cods.get_seq", var=var, core=core) as span:
            schedule, records = self._get_seq(
                core, var, region, version, app_id, tracer, span
            )
            span.set(plans=len(schedule.plans), nbytes=schedule.total_bytes)
            return schedule, records

    def _get_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None,
        app_id: int,
        tracer,
        span=None,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        from repro.cods.objects import region_cells

        qregion = self._as_region(region)
        if region_cells(qregion) == 0:
            # Nothing requested: empty schedule, no lookup, no transfers.
            return CommSchedule(var=var, dst_core=core, region=qregion), []
        bbox = region_bounding_box(qregion)
        self._check_box(bbox)
        schedule: CommSchedule | None = None
        if self.schedule_cache is not None:
            schedule = self.schedule_cache.get(var, core, qregion)
        if span is not None:
            span.set(cache_hit=schedule is not None)
        if schedule is None:
            if tracer.enabled:
                with tracer.span("schedule.compute", var=var, core=core):
                    locations = self.lookup.locate(core, var, bbox, version)
                    schedule = compute_schedule(var, core, qregion, locations)
            else:
                locations = self.lookup.locate(core, var, bbox, version)
                schedule = compute_schedule(var, core, qregion, locations)
            if self.schedule_cache is not None:
                self.schedule_cache.put(schedule)
        return schedule, self._execute(schedule, app_id)

    def fetch_seq(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        version: int | None = None,
        app_id: int = -1,
    ):
        """Like :meth:`get_seq`, but also assembles and returns the values.

        Every contributing object must carry a payload (stored with
        ``put_seq(..., data=...)``). Returns ``(array, schedule, records)``
        where ``array`` has the region's per-dimension measures as its shape.

        Assembly materializes per-dimension index arrays, so this is meant
        for demo/validation domains (up to ~10^6 cells), not the paper-scale
        accounting runs — those never touch values.
        """
        import numpy as np

        qregion = self._as_region(region)
        schedule, records = self.get_seq(core, var, qregion, version, app_id)

        qcoords = [s.to_array() for s in qregion]
        shape = tuple(len(c) for c in qcoords)
        out: "np.ndarray | None" = None
        for plan in schedule.plans:
            store = self.store_of(plan.src_core)
            # Find this owner's payload objects for the variable.
            objs = [
                o for o in store.objects()
                if o.var == var and (version is None or o.version == version)
            ]
            if version is None and objs:
                newest = max(o.version for o in objs)
                objs = [o for o in objs if o.version == newest]
            for obj in objs:
                if obj.payload is None:
                    raise SpaceError(
                        f"object {obj.key()} has no payload; fetch_seq needs "
                        "data stored with put_seq(..., data=...)"
                    )
                inter = [
                    q.intersection(r) for q, r in zip(qregion, obj.region)
                ]
                if any(not s for s in inter):
                    continue
                if out is None:
                    out = np.zeros(shape, dtype=np.asarray(obj.payload).dtype)
                icoords = [s.to_array() for s in inter]
                qpos = [
                    np.searchsorted(qc, ic) for qc, ic in zip(qcoords, icoords)
                ]
                ocoords = [s.to_array() for s in obj.region]
                opos = [
                    np.searchsorted(oc, ic) for oc, ic in zip(ocoords, icoords)
                ]
                out[np.ix_(*qpos)] = np.asarray(obj.payload)[np.ix_(*opos)]
        if out is None:
            raise SpaceError(f"no payload data found for {var!r}")
        return out, schedule, records

    # -- concurrent coupling -----------------------------------------------------------

    def put_cont(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        element_size: int = 8,
    ) -> None:
        """Expose a producer task's region of ``var`` for direct transfer."""
        tracer = self.dart.tracer
        if tracer.enabled:
            tracer.instant("cods.put_cont", var=var, core=core)
        known = self._producer_esize.setdefault(var, element_size)
        if known != element_size:
            raise SpaceError(
                f"element size mismatch for {var!r}: {element_size} != {known}"
            )
        self._producers.setdefault(var, []).append((core, self._as_region(region)))

    def get_cont(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        app_id: int = -1,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        """Pull a region of ``var`` directly from the producer tasks."""
        tracer = self.dart.tracer
        if not tracer.enabled:
            return self._get_cont(core, var, region, app_id, NULL_TRACER)
        with tracer.span("cods.get_cont", var=var, core=core) as span:
            schedule, records = self._get_cont(
                core, var, region, app_id, tracer, span
            )
            span.set(plans=len(schedule.plans), nbytes=schedule.total_bytes)
            return schedule, records

    def _get_cont(
        self,
        core: int,
        var: str,
        region: "Box | RegionProduct",
        app_id: int,
        tracer,
        span=None,
    ) -> tuple[CommSchedule, list[TransferRecord]]:
        qregion = self._as_region(region)
        self._check_box(region_bounding_box(qregion))
        sources = self._producers.get(var)
        if not sources:
            raise SpaceError(f"no concurrent producer declared for {var!r}")
        schedule: CommSchedule | None = None
        if self.schedule_cache is not None:
            schedule = self.schedule_cache.get(var, core, qregion)
        if span is not None:
            span.set(cache_hit=schedule is not None)
        if schedule is None:
            if tracer.enabled:
                with tracer.span("schedule.compute", var=var, core=core):
                    schedule = producer_schedule(
                        var, core, qregion, sources, self._producer_esize[var]
                    )
            else:
                schedule = producer_schedule(
                    var, core, qregion, sources, self._producer_esize[var]
                )
            if self.schedule_cache is not None:
                self.schedule_cache.put(schedule)
        return schedule, self._execute(schedule, app_id)

    # -- fault recovery ----------------------------------------------------------------

    def fail_dht_core(self, core: int) -> int:
        """Fail one DHT core and fail over to its successor.

        The failed core's Hilbert interval is reassigned to the successor
        DHT core and every location table is rebuilt from the surviving
        per-core object stores, so subsequent ``get_seq`` queries keep
        resolving (the data itself was never on the DHT core). The schedule
        cache is cleared: cached schedules may reference pre-failover
        routing. Returns the successor's global core id.
        """
        successor = self.dht.fail_core(core)
        self.dht.rebuild(
            obj for store in self._stores.values() for obj in store.objects()
        )
        if self.schedule_cache is not None:
            self.schedule_cache.clear()
        return successor

    def on_node_crash(self, node: int) -> int:
        """Handle a compute-node crash: its stores and DHT core are lost.

        Objects stored on the node's cores disappear (in-memory storage),
        the node's DHT core fails over to its successor, location tables are
        rebuilt from the surviving stores, and concurrent-producer
        declarations on the crashed cores are withdrawn. Returns the number
        of data objects lost.
        """
        if not 0 <= node < self.cluster.num_nodes:
            raise SpaceError(f"node {node} out of range")
        crashed_cores = set(self.cluster.cores_of_node(node))
        lost = 0
        for core in crashed_cores:
            store = self._stores.get(core)
            if store is not None:
                lost += len(store)
                store.clear()
        # Every node hosts one DHT core (its first core); fail it over
        # unless it is the last one standing.
        node_dht_cores = crashed_cores & set(self.dht.dht_cores)
        for core in sorted(node_dht_cores):
            if len(self.dht.dht_cores) > 1:
                self.dht.fail_core(core)
        self.dht.rebuild(
            obj for store in self._stores.values() for obj in store.objects()
        )
        for var, sources in list(self._producers.items()):
            kept = [(c, r) for c, r in sources if c not in crashed_cores]
            if kept:
                self._producers[var] = kept
            else:
                del self._producers[var]
                self._producer_esize.pop(var, None)
        if self.schedule_cache is not None:
            self.schedule_cache.clear()
        return lost

    # -- maintenance ----------------------------------------------------------------------

    def evict(self, core: int, var: str, version: int = 0) -> DataObject:
        """Drop an object from its store and the DHT location tables."""
        obj = self.store_of(core).evict(var, version)
        self.dht.unregister(var, version, core)
        return obj

    def reset_concurrent(self, var: str | None = None) -> None:
        """Forget concurrent producer declarations (all vars by default)."""
        if var is None:
            self._producers.clear()
            self._producer_esize.clear()
        else:
            self._producers.pop(var, None)
            self._producer_esize.pop(var, None)

    def stored_bytes(self) -> int:
        return sum(s.used_bytes for s in self._stores.values())
