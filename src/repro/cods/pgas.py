"""A PGAS-style global-array view over the shared space (§VII future work).

"We will also explore supporting other programming models such as
Partitioned Global Address Space (PGAS)." A :class:`GlobalArray` presents
one CoDS variable as a partitioned global array: it is created with an
owning decomposition (each task/core owns its partition, as in UPC or
Global Arrays), and any core can read or write arbitrary rectangular
sections with numpy-slice syntax. Reads and writes are one-sided — they go
straight to the owning cores' stores through the usual transfer accounting,
no owner-side code involved — which is exactly the PGAS promise.
"""

from __future__ import annotations

import numpy as np

from repro.cods.space import CoDS
from repro.core.mapping.base import MappingResult
from repro.core.task import AppSpec
from repro.domain.box import Box
from repro.errors import SpaceError

__all__ = ["GlobalArray"]


class GlobalArray:
    """A distributed array owned partition-wise by an application's tasks."""

    def __init__(
        self,
        space: CoDS,
        spec: AppSpec,
        mapping: MappingResult,
        dtype: "np.dtype | type" = np.float64,
        fill: float = 0.0,
    ) -> None:
        self.space = space
        self.spec = spec
        self.mapping = mapping
        self.dtype = np.dtype(dtype)
        self.shape = spec.descriptor.domain_size
        self._version = 0
        # Allocate every partition up front (blocked ownership).
        decomp = spec.decomposition
        for rank in range(spec.ntasks):
            box = decomp.task_bounding_box(rank)
            if box.is_empty:
                continue
            block = np.full(box.shape, fill, dtype=self.dtype)
            space.put_seq(
                mapping.core_of(spec.app_id, rank), spec.var, box,
                data=block, version=0,
            )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def _box_from_key(self, key) -> Box:
        """Translate a numpy-style slice tuple into a Box."""
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != self.ndim:
            raise SpaceError(
                f"need {self.ndim} indices/slices, got {len(key)}"
            )
        lo, hi = [], []
        for k, extent in zip(key, self.shape):
            if isinstance(k, slice):
                if k.step not in (None, 1):
                    raise SpaceError("strided slices are not supported")
                start = 0 if k.start is None else k.start
                stop = extent if k.stop is None else k.stop
                if start < 0:
                    start += extent
                if stop < 0:
                    stop += extent
            else:
                start = int(k)
                if start < 0:
                    start += extent
                stop = start + 1
            if not 0 <= start < stop <= extent:
                raise SpaceError(f"index out of range for extent {extent}")
            lo.append(start)
            hi.append(stop)
        return Box(lo=tuple(lo), hi=tuple(hi))

    # -- one-sided access (from any core) --------------------------------------

    def read(self, core: int, key) -> np.ndarray:
        """One-sided get of a section, pulled from the owning cores."""
        box = self._box_from_key(key)
        values, _, _ = self.space.fetch_seq(
            core, self.spec.var, box, app_id=self.spec.app_id
        )
        return values

    def write(self, core: int, key, values: "np.ndarray | float") -> None:
        """One-sided put: update the overlapped parts of each owner's block.

        Implemented as read-modify-write on the owning partitions; each
        owner's store keeps a single versioned object per partition, so the
        array stays consistent for subsequent reads.
        """
        box = self._box_from_key(key)
        arr = np.broadcast_to(
            np.asarray(values, dtype=self.dtype), box.shape
        )
        decomp = self.spec.decomposition
        from repro.transport.message import TransferKind

        for rank, _cells in decomp.owner_ranks_of_box(box):
            owner_core = self.mapping.core_of(self.spec.app_id, rank)
            pbox = decomp.task_bounding_box(rank)
            store = self.space.store_of(owner_core)
            obj = store.get(self.spec.var, self._version)
            if obj is None or obj.payload is None:
                raise SpaceError(f"partition of rank {rank} has no payload")
            inter = box.intersection(pbox)
            assert inter is not None
            block = np.asarray(obj.payload)
            block[
                tuple(
                    slice(il - pl, ih - pl)
                    for il, ih, pl in zip(inter.lo, inter.hi, pbox.lo)
                )
            ] = arr[
                tuple(
                    slice(il - bl, ih - bl)
                    for il, ih, bl in zip(inter.lo, inter.hi, box.lo)
                )
            ]
            # Account the one-sided put to the owner.
            self.space.dart.transfer(
                src_core=core, dst_core=owner_core,
                nbytes=inter.volume * self.dtype.itemsize,
                kind=TransferKind.COUPLING,
                app_id=self.spec.app_id, var=self.spec.var,
            )

    def to_numpy(self, core: int) -> np.ndarray:
        """Materialize the whole array on ``core`` (convenience)."""
        return self.read(core, tuple(slice(None) for _ in self.shape))
