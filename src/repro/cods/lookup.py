"""The Data Lookup service.

A thin facade over the spatial DHT exposing the two queries the framework
needs:

* :meth:`DataLookupService.locate` — exact object locations for a region
  (drives communication-schedule computation), and
* :meth:`DataLookupService.bytes_by_node` — how many bytes of a requested
  region each compute node holds, which is exactly the quantity the
  client-side data-centric mapping maximizes when it re-dispatches a task
  ("selects only one compute node ... by maximizing the amount of coupled
  data that can be locally retrieved").
"""

from __future__ import annotations

from collections import defaultdict

from repro.cods.dht import ObjectLocation, SpatialDHT
from repro.cods.objects import (
    RegionProduct,
    region_bounding_box,
    region_from_box,
    region_overlap_cells,
)
from repro.domain.box import Box
from repro.hardware.cluster import Cluster

__all__ = ["DataLookupService"]


class DataLookupService:
    """Query interface over the DHT location tables.

    ``liveness`` (set by the resilience manager when replication is on)
    filters the *byte-count* queries to nodes still alive — between a crash
    and its detection the DHT still lists copies on the dead node, and
    mapping decisions must not count unreachable bytes. ``reachability``
    (set by the resilience manager when a fault plan declares network
    partitions) additionally drops nodes across an active cut: their bytes
    exist but cannot be pulled, so counting them would map tasks onto data
    they cannot reach. :meth:`locate` is deliberately unfiltered: the
    space's copy selection needs to see dead and cut-off copies to tell
    replica failover apart from true data loss. ``None`` (the default)
    keeps every query byte-identical to the unfiltered path.
    """

    def __init__(self, dht: SpatialDHT, cluster: Cluster) -> None:
        self.dht = dht
        self.cluster = cluster
        self.liveness: "Callable[[int], bool] | None" = None
        self.reachability: "Callable[[int], bool] | None" = None

    def locate(
        self,
        src_core: int,
        var: str,
        box: Box,
        version: int | None = None,
    ) -> list[ObjectLocation]:
        """Exact locations of stored data overlapping ``box``."""
        return self.dht.query(src_core, var, box, version)

    def _node_live(self, core: int) -> bool:
        node = self.cluster.node_of_core(core)
        if self.liveness is not None and not self.liveness(node):
            return False
        return self.reachability is None or self.reachability(node)

    def bytes_by_node(
        self,
        src_core: int,
        var: str,
        box: Box,
        version: int | None = None,
    ) -> dict[int, int]:
        """Bytes of the requested region held by each compute node."""
        tracer = self.dht.dart.tracer if self.dht.dart is not None else None
        if tracer is None or not tracer.enabled:
            return self._bytes_by_node(src_core, var, box, version)
        with tracer.span("lookup.bytes_by_node", var=var, src=src_core) as span:
            per_node = self._bytes_by_node(src_core, var, box, version)
            span.set(nodes=len(per_node), nbytes=sum(per_node.values()))
            return per_node

    def _bytes_by_node(
        self,
        src_core: int,
        var: str,
        box: Box,
        version: int | None = None,
    ) -> dict[int, int]:
        qregion = region_from_box(box)
        per_node: dict[int, int] = defaultdict(int)
        for loc in self.locate(src_core, var, box, version):
            if not self._node_live(loc.owner_core):
                continue
            cells = region_overlap_cells(qregion, loc.region)
            if cells:
                node = self.cluster.node_of_core(loc.owner_core)
                per_node[node] += cells * loc.element_size
        return dict(per_node)

    def bytes_by_node_for_region(
        self,
        src_core: int,
        var: str,
        region: RegionProduct,
        version: int | None = None,
    ) -> dict[int, int]:
        """Like :meth:`bytes_by_node`, but for an exact interval-product
        region (needed for cyclic consumer decompositions). The bounding box
        routes the DHT query; overlaps use the exact region."""
        bbox = region_bounding_box(region)
        if bbox.is_empty:
            return {}
        per_node: dict[int, int] = defaultdict(int)
        for loc in self.locate(src_core, var, bbox, version):
            if not self._node_live(loc.owner_core):
                continue
            cells = region_overlap_cells(region, loc.region)
            if cells:
                node = self.cluster.node_of_core(loc.owner_core)
                per_node[node] += cells * loc.element_size
        return dict(per_node)

    def best_node(
        self,
        src_core: int,
        var: str,
        box: Box,
        version: int | None = None,
    ) -> tuple[int, int] | None:
        """``(node, local_bytes)`` of the node holding most of the region,
        or ``None`` when nothing is stored. Ties break to the lowest node id
        (determinism)."""
        per_node = self.bytes_by_node(src_core, var, box, version)
        if not per_node:
            return None
        node = min(per_node, key=lambda n: (-per_node[n], n))
        return node, per_node[node]
