"""Heavy-edge matching for multilevel coarsening.

Visits vertices in a (seeded) random order; each unmatched vertex matches the
unmatched neighbor connected by the heaviest edge — the classic METIS HEM
heuristic, which tends to hide heavy edges inside coarse vertices so they can
never be cut.
"""

from __future__ import annotations

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["heavy_edge_matching"]


def heavy_edge_matching(
    graph: CSRGraph,
    rng: np.random.Generator,
    max_vwgt: int | None = None,
) -> np.ndarray:
    """Return ``match`` where ``match[v]`` is v's partner (or v if unmatched).

    The matching is symmetric: ``match[match[v]] == v``. When ``max_vwgt`` is
    given, pairs whose combined vertex weight would exceed it are skipped, so
    coarse vertices stay placeable under the partitioner's capacity bounds.
    """
    n = graph.nvertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        vw = int(graph.vwgt[v])
        nbrs, wgts = graph.neighbors(v)
        best = -1
        best_w = -1
        for u, w in zip(nbrs.tolist(), wgts.tolist()):
            if match[u] != -1 or w <= best_w:
                continue
            if max_vwgt is not None and vw + int(graph.vwgt[u]) > max_vwgt:
                continue
            best, best_w = u, w
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match
