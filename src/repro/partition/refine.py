"""K-way boundary refinement with hard capacity constraints.

Greedy refinement in the style of METIS's k-way pass: sweep boundary
vertices, moving each to the adjacent part with the best edgecut gain when
the target has room. Zero-gain moves are taken only when they improve
balance; a separate repair pass evicts vertices (least-loss first) from any
over-capacity part so the final partition is always feasible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.partition.csr import CSRGraph

__all__ = ["refine_kway", "enforce_capacities"]


def _part_connectivity(graph: CSRGraph, parts: np.ndarray, v: int, nparts: int) -> np.ndarray:
    """Edge weight from ``v`` into each part."""
    conn = np.zeros(nparts, dtype=np.int64)
    nbrs, wgts = graph.neighbors(v)
    np.add.at(conn, parts[nbrs], wgts)
    return conn


def refine_kway(
    graph: CSRGraph,
    parts: np.ndarray,
    capacities: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 8,
) -> np.ndarray:
    """Improve ``parts`` in place (also returned) without violating capacities.

    Capacity violations present on entry are tolerated (moves may only reduce
    them); call :func:`enforce_capacities` first for a feasibility guarantee.
    """
    n = graph.nvertices
    nparts = capacities.size
    loads = graph.part_loads(parts, nparts)

    for _ in range(max_passes):
        moved = 0
        # Boundary vertices: any vertex with a neighbor in another part.
        src = np.repeat(np.arange(n), np.diff(graph.xadj))
        boundary = np.unique(src[parts[src] != parts[graph.adjncy]])
        if boundary.size == 0:
            break
        for v in rng.permutation(boundary):
            own = int(parts[v])
            w = int(graph.vwgt[v])
            conn = _part_connectivity(graph, parts, v, nparts)
            internal = conn[own]
            gains = conn - internal
            gains[own] = np.iinfo(np.int64).min
            room = loads + w <= capacities
            room[own] = False
            over_capacity = loads[own] > capacities[own]
            candidates = np.flatnonzero(room)
            if candidates.size == 0:
                continue
            best = candidates[np.lexsort((loads[candidates], -gains[candidates]))][0]
            gain = int(gains[best])
            better_balance = loads[own] - (loads[best] + w) > 0
            if gain > 0 or (gain == 0 and (over_capacity or better_balance)):
                parts[v] = best
                loads[own] -= w
                loads[best] += w
                moved += 1
        if moved == 0:
            break
    return parts


def enforce_capacities(
    graph: CSRGraph,
    parts: np.ndarray,
    capacities: np.ndarray,
) -> np.ndarray:
    """Repair capacity violations by evicting least-loss vertices.

    From every over-capacity part, repeatedly move the vertex whose eviction
    costs the least edgecut to the part (with room) it is most connected to.
    Raises :class:`PartitionError` if total weight exceeds total capacity.
    """
    nparts = capacities.size
    loads = graph.part_loads(parts, nparts)
    if graph.total_vwgt > int(capacities.sum()):
        raise PartitionError(
            f"total vertex weight {graph.total_vwgt} exceeds "
            f"total capacity {int(capacities.sum())}"
        )
    for p in range(nparts):
        while loads[p] > capacities[p]:
            members = np.flatnonzero(parts == p)
            best_move: tuple[int, int, int] | None = None  # (loss, v, target)
            for v in members.tolist():
                w = int(graph.vwgt[v])
                conn = _part_connectivity(graph, parts, v, nparts)
                room = loads + w <= capacities
                room[p] = False
                candidates = np.flatnonzero(room)
                if candidates.size == 0:
                    continue
                tgt = candidates[np.lexsort((loads[candidates], -conn[candidates]))][0]
                loss = int(conn[p] - conn[tgt])
                if best_move is None or loss < best_move[0]:
                    best_move = (loss, v, int(tgt))
            if best_move is None:
                raise PartitionError(
                    f"cannot repair part {p}: no vertex fits elsewhere"
                )
            _, v, tgt = best_move
            w = int(graph.vwgt[v])
            parts[v] = tgt
            loads[p] -= w
            loads[tgt] += w
    return parts
