"""Graph contraction for the multilevel partitioner.

Given a matching, contracts each matched pair into a single coarse vertex:
vertex weights add, parallel coarse edges combine by summing weights, and
edges internal to a pair disappear (they can no longer be cut).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["CoarseLevel", "contract"]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of the coarsening hierarchy."""

    graph: CSRGraph            # the coarse graph
    cmap: np.ndarray           # fine vertex -> coarse vertex


def contract(graph: CSRGraph, match: np.ndarray) -> CoarseLevel:
    """Contract ``graph`` along ``match`` (as from heavy_edge_matching)."""
    n = graph.nvertices
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        u = int(match[v])
        cmap[v] = next_id
        cmap[u] = next_id  # u == v when unmatched
        next_id += 1
    cn = next_id

    cvwgt = np.zeros(cn, dtype=np.int64)
    np.add.at(cvwgt, cmap, graph.vwgt)

    # Aggregate coarse edges: map every fine edge to (cmap[src], cmap[dst]).
    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    csrc = cmap[src]
    cdst = cmap[graph.adjncy]
    keep = csrc < cdst  # one canonical direction, drops internal edges
    if not np.any(keep):
        empty = np.zeros(0, dtype=np.int64)
        coarse = CSRGraph(
            xadj=np.zeros(cn + 1, dtype=np.int64),
            adjncy=empty, adjwgt=empty, vwgt=cvwgt,
        )
        return CoarseLevel(graph=coarse, cmap=cmap)
    keys = csrc[keep] * cn + cdst[keep]
    wgts = graph.adjwgt[keep]
    uniq, inverse = np.unique(keys, return_inverse=True)
    agg = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(agg, inverse, wgts)
    cu = uniq // cn
    cv = uniq % cn

    # Symmetrize into CSR.
    all_src = np.concatenate([cu, cv])
    all_dst = np.concatenate([cv, cu])
    all_wgt = np.concatenate([agg, agg])
    order = np.lexsort((all_dst, all_src))
    all_src, all_dst, all_wgt = all_src[order], all_dst[order], all_wgt[order]
    xadj = np.zeros(cn + 1, dtype=np.int64)
    np.add.at(xadj, all_src + 1, 1)
    np.cumsum(xadj, out=xadj)
    coarse = CSRGraph(xadj=xadj, adjncy=all_dst, adjwgt=all_wgt, vwgt=cvwgt)
    return CoarseLevel(graph=coarse, cmap=cmap)
