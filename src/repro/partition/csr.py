"""Compressed-sparse-row weighted graphs for the partitioner.

The partitioner consumes undirected graphs with integer vertex and edge
weights (edge weights are coupled-data bytes, so they can be large — int64
throughout). The CSR layout mirrors METIS's ``xadj``/``adjncy``/``adjwgt``
arrays, which keeps the coarsening and refinement kernels cache-friendly
numpy code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import PartitionError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An undirected weighted graph in CSR form.

    Invariants: adjacency is symmetric, no self-loops, no duplicate edges
    (parallel edges are combined by summing weights at construction).
    """

    __slots__ = ("xadj", "adjncy", "adjwgt", "vwgt")

    def __init__(
        self,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        adjwgt: np.ndarray,
        vwgt: np.ndarray,
    ) -> None:
        self.xadj = np.asarray(xadj, dtype=np.int64)
        self.adjncy = np.asarray(adjncy, dtype=np.int64)
        self.adjwgt = np.asarray(adjwgt, dtype=np.int64)
        self.vwgt = np.asarray(vwgt, dtype=np.int64)
        if self.xadj.ndim != 1 or self.xadj.size == 0 or self.xadj[0] != 0:
            raise PartitionError("xadj must be 1-D, non-empty, starting at 0")
        if self.xadj[-1] != self.adjncy.size or self.adjwgt.size != self.adjncy.size:
            raise PartitionError("adjacency arrays inconsistent with xadj")
        if self.vwgt.size != self.xadj.size - 1:
            raise PartitionError("vwgt size must equal vertex count")

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        nvertices: int,
        edges: Iterable[tuple[int, int, int]],
        vwgt: "Sequence[int] | np.ndarray | None" = None,
    ) -> "CSRGraph":
        """Build from ``(u, v, weight)`` triples.

        Edges are symmetrized; duplicates (including reversed duplicates) sum
        their weights; self-loops are dropped.
        """
        if nvertices <= 0:
            raise PartitionError(f"nvertices must be positive, got {nvertices}")
        edge_list = [(int(u), int(v), int(w)) for u, v, w in edges]
        for u, v, w in edge_list:
            if not (0 <= u < nvertices and 0 <= v < nvertices):
                raise PartitionError(f"edge ({u},{v}) out of range [0,{nvertices})")
            if w <= 0:
                raise PartitionError(f"edge ({u},{v}) has non-positive weight {w}")
        # Combine duplicates on canonical (min,max) keys, drop self-loops.
        combined: dict[tuple[int, int], int] = {}
        for u, v, w in edge_list:
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            combined[key] = combined.get(key, 0) + w
        m = len(combined)
        src = np.empty(2 * m, dtype=np.int64)
        dst = np.empty(2 * m, dtype=np.int64)
        wgt = np.empty(2 * m, dtype=np.int64)
        for i, ((u, v), w) in enumerate(combined.items()):
            src[2 * i], dst[2 * i], wgt[2 * i] = u, v, w
            src[2 * i + 1], dst[2 * i + 1], wgt[2 * i + 1] = v, u, w
        order = np.lexsort((dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        xadj = np.zeros(nvertices + 1, dtype=np.int64)
        np.add.at(xadj, src + 1, 1)
        np.cumsum(xadj, out=xadj)
        if vwgt is None:
            vwgt_arr = np.ones(nvertices, dtype=np.int64)
        else:
            vwgt_arr = np.asarray(vwgt, dtype=np.int64)
            if vwgt_arr.shape != (nvertices,):
                raise PartitionError("vwgt length must equal nvertices")
            if np.any(vwgt_arr < 0):
                raise PartitionError("vertex weights must be non-negative")
        return cls(xadj=xadj, adjncy=dst, adjwgt=wgt, vwgt=vwgt_arr)

    # -- accessors -------------------------------------------------------------------

    @property
    def nvertices(self) -> int:
        return self.xadj.size - 1

    @property
    def nedges(self) -> int:
        """Undirected edge count."""
        return self.adjncy.size // 2

    @property
    def total_vwgt(self) -> int:
        return int(self.vwgt.sum())

    @property
    def total_adjwgt(self) -> int:
        """Sum of edge weights (each undirected edge counted once)."""
        return int(self.adjwgt.sum()) // 2

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbor ids and edge weights of vertex ``v`` (views, not copies)."""
        lo, hi = self.xadj[v], self.xadj[v + 1]
        return self.adjncy[lo:hi], self.adjwgt[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def __repr__(self) -> str:
        return f"CSRGraph(nvertices={self.nvertices}, nedges={self.nedges})"

    # -- partition metrics --------------------------------------------------------------

    def edgecut(self, parts: np.ndarray) -> int:
        """Total weight of edges whose endpoints are in different parts."""
        parts = np.asarray(parts)
        if parts.shape != (self.nvertices,):
            raise PartitionError("parts length must equal nvertices")
        src = np.repeat(np.arange(self.nvertices), np.diff(self.xadj))
        cut = parts[src] != parts[self.adjncy]
        return int(self.adjwgt[cut].sum()) // 2

    def part_loads(self, parts: np.ndarray, nparts: int) -> np.ndarray:
        """Vertex-weight load of each part."""
        loads = np.zeros(nparts, dtype=np.int64)
        np.add.at(loads, np.asarray(parts), self.vwgt)
        return loads

    def validate(self) -> None:
        """Check structural invariants (symmetry, no self-loops). For tests."""
        n = self.nvertices
        seen: set[tuple[int, int, int]] = set()
        for v in range(n):
            nbrs, wgts = self.neighbors(v)
            if np.any(nbrs == v):
                raise PartitionError(f"self-loop at vertex {v}")
            if len(np.unique(nbrs)) != len(nbrs):
                raise PartitionError(f"duplicate neighbors at vertex {v}")
            for u, w in zip(nbrs.tolist(), wgts.tolist()):
                seen.add((v, u, w))
        for v, u, w in seen:
            if (u, v, w) not in seen:
                raise PartitionError(f"asymmetric edge ({v},{u},{w})")
