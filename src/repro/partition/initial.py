"""Initial partition of the coarsest graph: greedy graph growing.

Grows each part from a seed vertex by repeatedly absorbing the frontier
vertex most strongly connected to the part, stopping at the part's share of
the total vertex weight. Leftover vertices are placed by best connectivity
among parts with room — so the result always respects capacities when they
are feasible.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import PartitionError
from repro.partition.csr import CSRGraph

__all__ = ["greedy_graph_growing"]


def greedy_graph_growing(
    graph: CSRGraph,
    nparts: int,
    capacities: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return a parts array of shape (nvertices,) respecting ``capacities``.

    Raises :class:`PartitionError` if the instance is infeasible (some vertex
    heavier than every remaining capacity).
    """
    n = graph.nvertices
    total = graph.total_vwgt
    if total > int(capacities.sum()):
        raise PartitionError(
            f"total vertex weight {total} exceeds total capacity {capacities.sum()}"
        )
    parts = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(nparts, dtype=np.int64)
    # Per-part growth target proportional to its capacity share.
    targets = capacities.astype(np.float64) * (total / max(capacities.sum(), 1))

    unassigned = set(range(n))
    order = rng.permutation(n)

    for p in range(nparts):
        if not unassigned:
            break
        # Seed: first unassigned vertex in random order.
        seed = next(v for v in order if parts[v] == -1)
        heap: list[tuple[int, int]] = []  # (-connectivity, vertex)
        heapq.heappush(heap, (0, int(seed)))
        while heap and loads[p] < targets[p]:
            _, v = heapq.heappop(heap)
            if parts[v] != -1:
                continue
            w = int(graph.vwgt[v])
            if loads[p] + w > capacities[p]:
                continue
            parts[v] = p
            loads[p] += w
            unassigned.discard(v)
            nbrs, wgts = graph.neighbors(v)
            for u, ew in zip(nbrs.tolist(), wgts.tolist()):
                if parts[u] == -1:
                    heapq.heappush(heap, (-ew, u))

    # Place leftovers: max connectivity to an already-loaded part with room.
    # If nothing has room (lumpy coarse weights), fall back to the
    # least-loaded part — the multilevel driver repairs violations at the
    # finest level, where weights are small enough for repair to succeed.
    for v in sorted(unassigned, key=lambda v: -int(graph.vwgt[v])):
        w = int(graph.vwgt[v])
        nbrs, wgts = graph.neighbors(v)
        conn = np.zeros(nparts, dtype=np.int64)
        for u, ew in zip(nbrs.tolist(), wgts.tolist()):
            if parts[u] != -1:
                conn[parts[u]] += ew
        room = loads + w <= capacities
        candidates = np.flatnonzero(room) if np.any(room) else np.arange(nparts)
        best = candidates[np.lexsort((loads[candidates], -conn[candidates]))][0]
        parts[v] = best
        loads[best] += w
    return parts
