"""Multilevel k-way graph partitioning — the METIS substitute.

The paper's server-side mapping "uses graph partitioning tools (e.g. METIS)
to group and map data-intensive communicating tasks onto the same compute
node". METIS is not available here, so this module implements the same
multilevel scheme from scratch:

1. **Coarsen** with heavy-edge matching until the graph is small.
2. **Initial partition** by greedy graph growing on the coarsest graph.
3. **Uncoarsen**: project the partition to each finer level and improve it
   with capacity-constrained k-way boundary refinement.

Unlike stock METIS, capacities are *hard* bounds (a part is one compute node
and holds at most ``cores_per_node`` tasks), so every stage is
capacity-aware and a repair pass guarantees feasibility of the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.partition.coarsen import CoarseLevel, contract
from repro.partition.csr import CSRGraph
from repro.partition.initial import greedy_graph_growing
from repro.partition.matching import heavy_edge_matching
from repro.partition.refine import enforce_capacities, refine_kway

__all__ = ["PartitionResult", "MultilevelKWay", "partition_graph"]

# Stop coarsening when the graph is this many times the part count …
_COARSEN_FACTOR = 8
# … or when a matching pass shrinks the graph by less than this fraction.
_MIN_SHRINK = 0.05


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a k-way partitioning run."""

    parts: np.ndarray          # vertex -> part id
    edgecut: int               # total weight of cut edges
    loads: np.ndarray          # vertex-weight load per part
    capacities: np.ndarray     # the capacity bounds used
    nlevels: int               # coarsening levels used

    @property
    def nparts(self) -> int:
        return self.capacities.size

    @property
    def is_feasible(self) -> bool:
        return bool(np.all(self.loads <= self.capacities))

    def groups(self) -> list[list[int]]:
        """Vertices of each part, in ascending vertex order."""
        out: list[list[int]] = [[] for _ in range(self.nparts)]
        for v, p in enumerate(self.parts.tolist()):
            out[p].append(v)
        return out


class MultilevelKWay:
    """Reusable multilevel k-way partitioner.

    Parameters
    ----------
    seed:
        RNG seed — results are deterministic for a given seed.
    max_passes:
        Refinement passes per level.
    """

    def __init__(self, seed: int = 0, max_passes: int = 8) -> None:
        self.seed = seed
        self.max_passes = max_passes

    def partition(
        self,
        graph: CSRGraph,
        nparts: int,
        capacities: "np.ndarray | list[int] | int | None" = None,
    ) -> PartitionResult:
        """Partition ``graph`` into ``nparts`` parts under ``capacities``.

        ``capacities`` may be a scalar (same bound for every part), an array
        of per-part bounds, or ``None`` for the balanced default
        ``ceil(total_vwgt / nparts)``.
        """
        if nparts <= 0:
            raise PartitionError(f"nparts must be positive, got {nparts}")
        caps = self._resolve_capacities(graph, nparts, capacities)
        rng = np.random.default_rng(self.seed)

        if nparts == 1:
            parts = np.zeros(graph.nvertices, dtype=np.int64)
            return self._result(graph, parts, caps, nlevels=0)

        if nparts > graph.nvertices:
            raise PartitionError(
                f"nparts {nparts} exceeds vertex count {graph.nvertices}"
            )

        # -- coarsening phase ------------------------------------------------
        max_cvwgt = int(caps.min())
        levels: list[tuple[CSRGraph, CoarseLevel]] = []
        g = graph
        while g.nvertices > _COARSEN_FACTOR * nparts:
            match = heavy_edge_matching(g, rng, max_vwgt=max_cvwgt)
            level = contract(g, match)
            if level.graph.nvertices > (1 - _MIN_SHRINK) * g.nvertices:
                break  # matching stalled (e.g. isolated/heavy vertices)
            levels.append((g, level))
            g = level.graph

        # Coarse vertices are lumpy (weight up to max_cvwgt), so capacity is
        # relaxed by that slack at coarse levels; the hard bound is enforced
        # only on the finest (task-weight) graph, where repair is feasible.
        relaxed = caps + max_cvwgt

        # -- initial partition on the coarsest graph ---------------------------
        parts = greedy_graph_growing(g, nparts, relaxed, rng)
        parts = refine_kway(g, parts, relaxed, rng, self.max_passes)

        # -- uncoarsening + refinement ------------------------------------------
        for fine_graph, level in reversed(levels):
            parts = parts[level.cmap]
            level_caps = relaxed if fine_graph is not graph else caps
            if fine_graph is graph:
                parts = enforce_capacities(fine_graph, parts, caps)
            parts = refine_kway(fine_graph, parts, level_caps, rng, self.max_passes)

        if not levels:  # graph was already small enough: enforce directly
            parts = enforce_capacities(graph, parts, caps)
            parts = refine_kway(graph, parts, caps, rng, self.max_passes)

        return self._result(graph, parts, caps, nlevels=len(levels))

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _resolve_capacities(
        graph: CSRGraph,
        nparts: int,
        capacities: "np.ndarray | list[int] | int | None",
    ) -> np.ndarray:
        if capacities is None:
            bound = -(-graph.total_vwgt // nparts)
            caps = np.full(nparts, bound, dtype=np.int64)
        elif isinstance(capacities, (int, np.integer)):
            caps = np.full(nparts, int(capacities), dtype=np.int64)
        else:
            caps = np.asarray(capacities, dtype=np.int64)
            if caps.shape != (nparts,):
                raise PartitionError(
                    f"capacities shape {caps.shape} != ({nparts},)"
                )
        if np.any(caps <= 0):
            raise PartitionError("capacities must be positive")
        if graph.total_vwgt > int(caps.sum()):
            raise PartitionError(
                f"infeasible: total weight {graph.total_vwgt} > "
                f"total capacity {int(caps.sum())}"
            )
        return caps

    @staticmethod
    def _result(
        graph: CSRGraph, parts: np.ndarray, caps: np.ndarray, nlevels: int
    ) -> PartitionResult:
        return PartitionResult(
            parts=parts,
            edgecut=graph.edgecut(parts),
            loads=graph.part_loads(parts, caps.size),
            capacities=caps,
            nlevels=nlevels,
        )


def partition_graph(
    graph: CSRGraph,
    nparts: int,
    capacities: "np.ndarray | list[int] | int | None" = None,
    seed: int = 0,
) -> PartitionResult:
    """One-shot convenience wrapper around :class:`MultilevelKWay`."""
    return MultilevelKWay(seed=seed).partition(graph, nparts, capacities)
