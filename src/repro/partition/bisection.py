"""Recursive-bisection k-way partitioning — the classic alternative driver.

METIS offers two k-way schemes: direct multilevel k-way (our
:class:`~repro.partition.multilevel.MultilevelKWay`) and recursive
bisection, which splits the vertex set in two balanced halves (each half a
multilevel 2-way problem) and recurses. Bisection often wins on small part
counts and gives the ablation bench a second internal baseline.

Capacity semantics match the multilevel driver: per-part hard bounds; the
recursion splits the capacity vector between the two halves so every leaf
part inherits its exact bound.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.partition.csr import CSRGraph
from repro.partition.multilevel import MultilevelKWay, PartitionResult

__all__ = ["RecursiveBisection"]


class RecursiveBisection:
    """k-way partitioning by recursive balanced 2-way cuts."""

    def __init__(self, seed: int = 0, max_passes: int = 8) -> None:
        self.seed = seed
        self.max_passes = max_passes

    def partition(
        self,
        graph: CSRGraph,
        nparts: int,
        capacities: "np.ndarray | list[int] | int | None" = None,
    ) -> PartitionResult:
        caps = MultilevelKWay._resolve_capacities(graph, nparts, capacities)
        parts = np.zeros(graph.nvertices, dtype=np.int64)
        self._bisect(graph, np.arange(graph.nvertices), caps, 0, parts, self.seed)
        loads = graph.part_loads(parts, nparts)
        return PartitionResult(
            parts=parts,
            edgecut=graph.edgecut(parts),
            loads=loads,
            capacities=caps,
            nlevels=0,
        )

    # -- recursion -------------------------------------------------------------------

    def _bisect(
        self,
        graph: CSRGraph,
        vertices: np.ndarray,
        caps: np.ndarray,
        part_offset: int,
        parts: np.ndarray,
        seed: int,
    ) -> None:
        k = caps.size
        if k == 1:
            if int(graph.vwgt[vertices].sum()) > int(caps[0]):
                raise PartitionError(
                    "bisection leaf exceeds its capacity bound"
                )
            parts[vertices] = part_offset
            return
        k_left = k // 2
        caps_left, caps_right = caps[:k_left], caps[k_left:]

        sub = self._subgraph(graph, vertices)
        two_way = MultilevelKWay(seed=seed, max_passes=self.max_passes).partition(
            sub, 2, capacities=[int(caps_left.sum()), int(caps_right.sum())]
        )
        left_mask = two_way.parts == 0
        left = vertices[left_mask]
        right = vertices[~left_mask]
        if left.size == 0 or right.size == 0:
            # Degenerate split (tiny graphs): fall back to a size split.
            order = np.argsort(graph.vwgt[vertices], kind="stable")[::-1]
            left_list, right_list = [], []
            wl = wr = 0
            for v in vertices[order]:
                if wl + graph.vwgt[v] <= caps_left.sum() and (
                    wl <= wr or wr + graph.vwgt[v] > caps_right.sum()
                ):
                    left_list.append(v)
                    wl += graph.vwgt[v]
                else:
                    right_list.append(v)
                    wr += graph.vwgt[v]
            left = np.asarray(left_list, dtype=np.int64)
            right = np.asarray(right_list, dtype=np.int64)
        self._bisect(graph, left, caps_left, part_offset, parts, seed + 1)
        self._bisect(graph, right, caps_right, part_offset + k_left, parts, seed + 2)

    @staticmethod
    def _subgraph(graph: CSRGraph, vertices: np.ndarray) -> CSRGraph:
        """Induced subgraph on ``vertices`` with local ids 0..len-1."""
        to_local = {int(v): i for i, v in enumerate(vertices)}
        edges = []
        for v in vertices.tolist():
            nbrs, wgts = graph.neighbors(v)
            for u, w in zip(nbrs.tolist(), wgts.tolist()):
                if u in to_local and v < u:
                    edges.append((to_local[v], to_local[u], w))
        return CSRGraph.from_edges(
            len(vertices), edges, vwgt=graph.vwgt[vertices]
        )
