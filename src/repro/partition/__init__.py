"""Multilevel k-way graph partitioner (METIS substitute)."""

from repro.partition.bisection import RecursiveBisection
from repro.partition.coarsen import CoarseLevel, contract
from repro.partition.csr import CSRGraph
from repro.partition.initial import greedy_graph_growing
from repro.partition.matching import heavy_edge_matching
from repro.partition.multilevel import MultilevelKWay, PartitionResult, partition_graph
from repro.partition.refine import enforce_capacities, refine_kway

__all__ = [
    "CSRGraph",
    "CoarseLevel",
    "contract",
    "heavy_edge_matching",
    "greedy_graph_growing",
    "refine_kway",
    "enforce_capacities",
    "MultilevelKWay",
    "RecursiveBisection",
    "PartitionResult",
    "partition_graph",
]
