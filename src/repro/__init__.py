"""repro — in-situ execution of coupled scientific workflows.

A from-scratch Python reproduction of "Enabling In-situ Execution of Coupled
Scientific Workflow on Multi-core Platform" (Zhang, Docan, Parashar, Klasky,
Podhorszki, Abbasi — IPDPS 2012): the CoDS shared-space substrate, HybridDART
transport model, data-centric task mapping, and the DAG/bundle workflow
engine, evaluated on a simulated Cray XT5-class platform.

Quickstart::

    from repro import InSituFramework, AppSpec, DecompositionDescriptor, Coupling

    fw = InSituFramework(num_nodes=48)
    cap1 = AppSpec(1, "CAP1", DecompositionDescriptor.uniform((1024,)*3, (8,)*3))
    cap2 = AppSpec(2, "CAP2", DecompositionDescriptor.uniform((1024,)*3, (4,)*3))
    mapping = fw.map_concurrent([cap1, cap2], [Coupling(cap1, cap2)])
"""

from repro._version import __version__
from repro.cods import CoDS
from repro.core import (
    AppSpec,
    ClientSideMapper,
    CommGraph,
    ComputationTask,
    Coupling,
    InSituFramework,
    MappingResult,
    RoundRobinMapper,
    ServerSideMapper,
    TaskMapper,
    build_comm_graph,
)
from repro.domain import (
    Box,
    Decomposition,
    DecompositionDescriptor,
    DistType,
    IntervalSet,
)
from repro.errors import ReproError
from repro.hardware import Cluster, MachineSpec, jaguar_xt5
from repro.workflow import Bundle, WorkflowDAG, WorkflowEngine

__all__ = [
    "__version__",
    "ReproError",
    "Box",
    "IntervalSet",
    "DistType",
    "Decomposition",
    "DecompositionDescriptor",
    "Cluster",
    "MachineSpec",
    "jaguar_xt5",
    "CoDS",
    "AppSpec",
    "ComputationTask",
    "Coupling",
    "CommGraph",
    "build_comm_graph",
    "MappingResult",
    "TaskMapper",
    "RoundRobinMapper",
    "ServerSideMapper",
    "ClientSideMapper",
    "InSituFramework",
    "Bundle",
    "WorkflowDAG",
    "WorkflowEngine",
]
