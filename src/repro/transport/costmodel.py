"""Analytic transfer-cost estimates.

A contention-free latency + size/bandwidth model. The benches use the fluid
flow simulator for headline timings (it models link sharing); this model
provides quick estimates for schedule heuristics, sanity checks, and the
examples, where running a full simulation would be noise.
"""

from __future__ import annotations

from repro.hardware.network import NetworkModel
from repro.hardware.spec import MachineSpec

__all__ = ["CostModel", "SPILL_BANDWIDTH_FACTOR"]

#: deep-memory (burst-buffer / NVRAM) bandwidth as a fraction of the node's
#: shared-memory bandwidth — spill writes and read-backs are cost-modelled
#: as slowed-down intra-node transfers (Wilkins/SENSEI staging tiers sit
#: roughly an order of magnitude below DRAM)
SPILL_BANDWIDTH_FACTOR = 0.1


class CostModel:
    """Contention-free transfer time estimates on a machine."""

    def __init__(self, machine: MachineSpec, network: NetworkModel | None = None) -> None:
        self.machine = machine
        self.network = network

    def shm_time(self, nbytes: int) -> float:
        """Intra-node transfer through shared memory."""
        node = self.machine.node
        return node.shm_latency + nbytes / node.shm_bandwidth

    def network_time(self, nbytes: int, hops: int = 1) -> float:
        """Inter-node transfer, bottlenecked by the slowest resource on the
        path (NIC or torus link) and delayed by per-hop latency."""
        net = self.machine.network
        bw = min(net.nic_bandwidth, net.link_bandwidth)
        return net.base_latency + hops * net.per_hop_latency + nbytes / bw

    def transfer_time(self, nbytes: int, src_node: int, dst_node: int) -> float:
        """Time for one transfer between two nodes (shm when equal)."""
        if src_node == dst_node:
            return self.shm_time(nbytes)
        if self.network is not None:
            hops = self.network.topology.hop_distance(src_node, dst_node)
        else:
            hops = 1
        return self.network_time(nbytes, hops=hops)

    def spill_time(self, nbytes: int) -> float:
        """One spill write or read-back through the node's deep-memory tier."""
        node = self.machine.node
        return node.shm_latency + nbytes / (
            node.shm_bandwidth * SPILL_BANDWIDTH_FACTOR
        )

    def speedup_shm_over_network(self, nbytes: int) -> float:
        """How much faster shared memory moves ``nbytes`` than the network —
        the gap that makes in-situ placement worthwhile."""
        return self.network_time(nbytes) / self.shm_time(nbytes)
