"""HybridDART transport substitute: records, metrics, cost model, RPC."""

from repro.transport.costmodel import CostModel
from repro.transport.hybriddart import CONTROL_MSG_BYTES, HybridDART
from repro.transport.message import TransferKind, TransferRecord, Transport
from repro.transport.metrics import TransferMetrics

__all__ = [
    "Transport",
    "TransferKind",
    "TransferRecord",
    "TransferMetrics",
    "CostModel",
    "HybridDART",
    "CONTROL_MSG_BYTES",
]
