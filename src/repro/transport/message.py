"""Transfer records: what moved, between which cores, over which transport.

Every data movement in the framework produces a :class:`TransferRecord`.
The evaluation figures are aggregations over these records — e.g. Fig 8 is
"bytes of ``COUPLING`` transfers whose transport is ``NETWORK``".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TransportError

__all__ = ["Transport", "TransferKind", "TransferRecord"]


class Transport(enum.Enum):
    """How a transfer physically moved."""

    SHM = "shm"          # intra-node shared memory
    NETWORK = "network"  # RDMA over the interconnect


class TransferKind(enum.Enum):
    """Why a transfer happened."""

    COUPLING = "coupling"        # inter-application coupled-data redistribution
    INTRA_APP = "intra_app"      # intra-application exchange (e.g. stencil halos)
    CONTROL = "control"          # DHT queries, registrations, RPCs
    REPLICATION = "replication"  # resilience copies (replica writes, re-replication)
    SPILL = "spill"              # deep-memory tier traffic (spill writes, restores)


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One data movement between two cores."""

    src_core: int
    dst_core: int
    nbytes: int
    kind: TransferKind
    transport: Transport
    #: application id of the *consumer* (receiving) side; -1 for control traffic
    app_id: int = -1
    #: variable name for coupling traffic, "" otherwise
    var: str = ""
    #: failed attempts re-issued before this transfer succeeded
    retries: int = 0
    #: the delivered payload arrived bit-flipped (gray failure); the
    #: receiver's checksum verification is expected to catch it
    corrupted: bool = False
    #: the link replayed this delivery (the same payload arrived twice);
    #: the receiver must deduplicate idempotently
    duplicated: bool = False

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise TransportError(
                f"transfer size must be non-negative, got {self.nbytes}"
            )
        if self.retries < 0:
            raise TransportError(
                f"retry count must be non-negative, got {self.retries}"
            )
