"""HybridDART: transport selection + asynchronous RPC abstraction.

The paper's HybridDART layer "creates remotely accessible data buffers using
either shared memory segments or RDMA memory regions, depending on whether
the end-points of the data transfer are on the same node or on different
nodes" and "provides an RPC-like abstraction". This module reproduces both
behaviours for the simulated platform:

* :meth:`HybridDART.transfer` classifies a core-to-core movement as SHM or
  NETWORK from the cluster's core->node map, records it in the metrics
  accumulator, and returns the record (the fluid simulator can then turn
  records into timed flows).
* :meth:`HybridDART.rpc` delivers small control messages to per-core
  handlers — the mechanism the DHT uses for queries and registrations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    NetworkPartitionError,
    TransferDroppedError,
    TransportError,
)
from repro.hardware.cluster import Cluster
from repro.obs.tracer import NULL_TRACER
from repro.transport.message import TransferKind, TransferRecord, Transport
from repro.transport.metrics import TransferMetrics

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import NullTracer, Tracer

__all__ = ["HybridDART", "CONTROL_MSG_BYTES", "BACKOFF_BUCKETS"]

#: nominal size of one control (RPC) message — a header plus a small payload.
CONTROL_MSG_BYTES = 256

#: per-link backoff-wait histogram bounds (seconds): the retry ladder starts
#: around ``retry_timeout`` (1e-4 s default) and doubles, so decades from a
#: microsecond to ten seconds cover every reachable wait.
BACKOFF_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class HybridDART:
    """Transport layer bound to a cluster and a metrics accumulator.

    With a :class:`~repro.faults.injector.FaultInjector` attached, network
    transfers become unreliable: each attempt may be dropped or corrupted
    per the fault plan, failed attempts are re-issued after an exponential
    backoff, and the successful record carries the retry count (failed
    attempts also show up in the metrics as retransmitted bytes). A transfer
    that exhausts its retry budget raises :class:`TransferDroppedError`.
    """

    def __init__(
        self,
        cluster: Cluster,
        metrics: TransferMetrics | None = None,
        injector: "FaultInjector | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        self.cluster = cluster
        self.metrics = metrics if metrics is not None else TransferMetrics()
        self.injector = injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if injector is not None and injector.tracer is NULL_TRACER:
            injector.tracer = self.tracer
        # Backoff waits live in a per-link histogram (created lazily on the
        # first wait so clean runs register nothing); ``backoff_seconds``
        # keeps the historical scalar view as a facade over its cells.
        self._backoff_hist = None
        # Gray-failure delivery counters (also lazy).
        self._m_corrupted = None
        self._m_duplicated = None
        # Partition-aborted transfer counter (lazy for the same reason).
        self._m_partitioned = None
        #: optional :class:`~repro.obs.timeline.TimelineCollector`; when set,
        #: every delivery is counted into the in-flight/throughput telemetry
        #: (one attribute check on the disabled path, like the tracer).
        self.timeline: Any = None
        self._handlers: dict[tuple[int, str], Callable[..., Any]] = {}

    @property
    def backoff_seconds(self) -> float:
        """Cumulative simulated seconds spent in retry backoff waits.

        Facade over the ``transport.backoff_seconds`` per-link histogram so
        pre-histogram summaries stay byte-identical."""
        if self._backoff_hist is None:
            return 0.0
        return sum(cell[-2] for cell in self._backoff_hist.cells.values())

    def _observe_backoff(self, src_node: int, dst_node: int, delay: float) -> None:
        if self._backoff_hist is None:
            self._backoff_hist = self.registry.histogram(
                "transport.backoff_seconds",
                buckets=BACKOFF_BUCKETS,
                labelnames=("src_node", "dst_node"),
            )
        self._backoff_hist.observe(delay, src_node=src_node, dst_node=dst_node)

    @property
    def registry(self) -> "MetricsRegistry":
        """The metrics registry behind this transport's accumulator."""
        return self.metrics.registry

    # -- transport selection ------------------------------------------------------

    def classify(self, src_core: int, dst_core: int) -> Transport:
        """SHM when the endpoints share a node, NETWORK otherwise."""
        return (
            Transport.SHM
            if self.cluster.same_node(src_core, dst_core)
            else Transport.NETWORK
        )

    def transfer(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        kind: TransferKind,
        app_id: int = -1,
        var: str = "",
        link_from: "object | None" = None,
    ) -> TransferRecord:
        """Perform (record) one data transfer and return its record.

        Under fault injection, network attempts that fail are re-issued with
        exponential backoff up to the plan's retry budget.

        ``link_from`` (tracing only) is the span that made this movement
        necessary — the producer's put for a coupling pull — and becomes a
        ``data`` flow link into the transfer span. Ignored when untraced.
        """
        if nbytes < 0:
            raise TransportError(f"negative transfer size {nbytes}")
        transport = self.classify(src_core, dst_core)
        tracer = self.tracer
        if not tracer.enabled:
            return self._deliver(src_core, dst_core, nbytes, kind, transport,
                                 app_id, var)
        with tracer.span(
            "dart.transfer",
            src=src_core, dst=dst_core, nbytes=nbytes,
            kind=kind.value, transport=transport.value, var=var,
        ) as span:
            if link_from is not None:
                tracer.link(link_from, span, "data")
            rec = self._deliver(src_core, dst_core, nbytes, kind, transport,
                                app_id, var)
            if rec.retries:
                span.set(retries=rec.retries)
            if rec.corrupted:
                span.set(corrupted=True)
            if rec.duplicated:
                span.set(duplicated=True)
            return rec

    def _deliver(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        kind: TransferKind,
        transport: Transport,
        app_id: int,
        var: str,
    ) -> TransferRecord:
        retries = 0
        corrupted = False
        duplicated = False
        if self.injector is not None and transport is Transport.NETWORK:
            if self.injector.plan.has_partitions:
                self._check_partition(src_core, dst_core, nbytes)
            retries = self._deliver_with_retries(src_core, dst_core, nbytes)
            # Gray failures degrade the *data* path: the delivered payload
            # may arrive bit-flipped or replayed. Control round-trips carry
            # no checksummed payload, so they stay clean.
            if kind is not TransferKind.CONTROL and self.injector.plan.has_gray_faults:
                src_node = self.cluster.node_of_core(src_core)
                dst_node = self.cluster.node_of_core(dst_core)
                corrupted = self.injector.delivery_corrupted(src_node, dst_node)
                duplicated = self.injector.delivery_duplicated(src_node, dst_node)
                if corrupted:
                    self._count_gray("corrupted")
                if duplicated:
                    self._count_gray("duplicated")
        rec = TransferRecord(
            src_core=src_core,
            dst_core=dst_core,
            nbytes=nbytes,
            kind=kind,
            transport=transport,
            app_id=app_id,
            var=var,
            retries=retries,
            corrupted=corrupted,
            duplicated=duplicated,
        )
        # A replayed delivery moves the same bytes twice on the wire, but the
        # metrics count *delivered* (deduplicated) traffic exactly once —
        # the delivered-bytes totals are invariant under duplication.
        self.metrics.record(rec)
        if self.timeline is not None:
            self.timeline.note_transfer(nbytes)
        return rec

    def _check_partition(
        self, src_core: int, dst_core: int, nbytes: int
    ) -> None:
        """Abort a network movement that would cross an active cut.

        Only reached when the plan declares partitions, so partition-free
        runs never consult reachability. The raised
        :class:`NetworkPartitionError` is *not* a data-loss error — the
        engine waits the cut out under its deadline instead of re-enacting.
        """
        injector = self.injector
        src_node = self.cluster.node_of_core(src_core)
        dst_node = self.cluster.node_of_core(dst_core)
        if injector.reachable(src_node, dst_node):
            return
        if self._m_partitioned is None:
            self._m_partitioned = self.registry.counter(
                "transport.partitioned_transfers"
            )
        self._m_partitioned.inc()
        injector.record(
            "transfer_partitioned",
            f"{src_core}->{dst_core} {nbytes}B "
            f"(node {src_node} cannot reach node {dst_node})",
        )
        raise NetworkPartitionError(
            f"transfer {src_core}->{dst_core} ({nbytes} bytes) crosses an "
            f"active network cut: node {src_node} cannot reach node "
            f"{dst_node}"
        )

    def _count_gray(self, which: str) -> None:
        """Lazily materialize and bump one gray-delivery counter."""
        if which == "corrupted":
            if self._m_corrupted is None:
                self._m_corrupted = self.registry.counter(
                    "transport.corrupted_deliveries"
                )
            self._m_corrupted.inc()
        else:
            if self._m_duplicated is None:
                self._m_duplicated = self.registry.counter(
                    "transport.duplicate_deliveries"
                )
            self._m_duplicated.inc()

    def _deliver_with_retries(
        self, src_core: int, dst_core: int, nbytes: int
    ) -> int:
        """Attempt an unreliable network delivery; returns the retry count."""
        injector = self.injector
        assert injector is not None
        src_node = self.cluster.node_of_core(src_core)
        dst_node = self.cluster.node_of_core(dst_core)
        max_retries = injector.retry_policy.max_retries
        attempt = 0
        while injector.attempt_fails(src_node, dst_node):
            attempt += 1
            if attempt > max_retries:
                injector.record(
                    "transfer_dropped",
                    f"{src_core}->{dst_core} {nbytes}B after {max_retries} retries",
                )
                raise TransferDroppedError(
                    f"transfer {src_core}->{dst_core} ({nbytes} bytes) dropped "
                    f"after {max_retries} retries"
                )
            delay = injector.backoff_delay(attempt)
            self._observe_backoff(src_node, dst_node, delay)
            injector.retries_issued += 1
            injector.record(
                "transfer_retry",
                f"{src_core}->{dst_core} {nbytes}B attempt={attempt} "
                f"backoff={delay:.6g}s",
            )
        return attempt

    # -- RPC ------------------------------------------------------------------------

    def register_handler(
        self, core: int, name: str, handler: Callable[..., Any]
    ) -> None:
        """Expose ``handler`` as RPC endpoint ``name`` on ``core``."""
        if not 0 <= core < self.cluster.total_cores:
            raise TransportError(f"core {core} out of range")
        key = (core, name)
        if key in self._handlers:
            raise TransportError(f"handler {name!r} already registered on core {core}")
        self._handlers[key] = handler

    def unregister_handler(self, core: int, name: str) -> None:
        if self._handlers.pop((core, name), None) is None:
            raise TransportError(f"no handler {name!r} on core {core}")

    def rpc(
        self,
        src_core: int,
        dst_core: int,
        name: str,
        *args: Any,
        payload_bytes: int = CONTROL_MSG_BYTES,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``name`` on ``dst_core``; accounts one control round-trip."""
        handler = self._handlers.get((dst_core, name))
        if handler is None:
            raise TransportError(f"no handler {name!r} on core {dst_core}")
        tracer = self.tracer
        if not tracer.enabled:
            return self._invoke(
                handler, src_core, dst_core, payload_bytes, args, kwargs
            )
        with tracer.span("dart.rpc", endpoint=name, src=src_core, dst=dst_core):
            return self._invoke(
                handler, src_core, dst_core, payload_bytes, args, kwargs
            )

    def _invoke(
        self,
        handler: Callable[..., Any],
        src_core: int,
        dst_core: int,
        payload_bytes: int,
        args: tuple,
        kwargs: dict,
    ) -> Any:
        self.transfer(src_core, dst_core, payload_bytes, TransferKind.CONTROL)
        result = handler(*args, **kwargs)
        # Response message back to the caller.
        self.transfer(dst_core, src_core, CONTROL_MSG_BYTES, TransferKind.CONTROL)
        return result
