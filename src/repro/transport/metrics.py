"""Aggregated transfer metrics.

Accumulates byte and message counters keyed by (app, kind, transport) as
records stream in — memory stays O(#distinct keys) however many transfers a
scenario performs. The evaluation benches read their figures straight off
these counters.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.transport.message import TransferKind, TransferRecord, Transport

__all__ = ["TransferMetrics"]


class TransferMetrics:
    """Byte/count accumulator over transfer records."""

    def __init__(self) -> None:
        # (app_id, kind, transport) -> [bytes, count, retries, retransmitted bytes]
        self._agg: dict[tuple[int, TransferKind, Transport], list[int]] = defaultdict(
            lambda: [0, 0, 0, 0]
        )

    # -- recording ---------------------------------------------------------------

    def record(self, rec: TransferRecord) -> None:
        cell = self._agg[(rec.app_id, rec.kind, rec.transport)]
        cell[0] += rec.nbytes
        cell[1] += 1
        cell[2] += rec.retries
        cell[3] += rec.retries * rec.nbytes

    def record_all(self, recs: Iterable[TransferRecord]) -> None:
        for rec in recs:
            self.record(rec)

    def clear(self) -> None:
        self._agg.clear()

    # -- queries ---------------------------------------------------------------

    def bytes(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Total bytes matching the given filters (None = any)."""
        total = 0
        for (a, k, t), (b, *_) in self._agg.items():
            if kind is not None and k is not kind:
                continue
            if transport is not None and t is not transport:
                continue
            if app_id is not None and a != app_id:
                continue
            total += b
        return total

    def count(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Number of transfers matching the given filters."""
        total = 0
        for (a, k, t), (_, c, *_) in self._agg.items():
            if kind is not None and k is not kind:
                continue
            if transport is not None and t is not transport:
                continue
            if app_id is not None and a != app_id:
                continue
            total += c
        return total

    def retries(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Failed attempts re-issued for the matching transfers."""
        total = 0
        for (a, k, t), (_, _, r, _) in self._agg.items():
            if kind is not None and k is not kind:
                continue
            if transport is not None and t is not transport:
                continue
            if app_id is not None and a != app_id:
                continue
            total += r
        return total

    def retransmitted_bytes(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Bytes that crossed the wire again because an attempt failed."""
        total = 0
        for (a, k, t), (_, _, _, rb) in self._agg.items():
            if kind is not None and k is not kind:
                continue
            if transport is not None and t is not transport:
                continue
            if app_id is not None and a != app_id:
                continue
            total += rb
        return total

    # -- convenience shorthands used by the benches ---------------------------------

    def network_bytes(
        self, kind: TransferKind | None = None, app_id: int | None = None
    ) -> int:
        return self.bytes(kind=kind, transport=Transport.NETWORK, app_id=app_id)

    def shm_bytes(
        self, kind: TransferKind | None = None, app_id: int | None = None
    ) -> int:
        return self.bytes(kind=kind, transport=Transport.SHM, app_id=app_id)

    def network_fraction(self, kind: TransferKind | None = None) -> float:
        """Fraction of bytes (of a kind) that crossed the network."""
        net = self.network_bytes(kind=kind)
        total = net + self.shm_bytes(kind=kind)
        return net / total if total else 0.0

    def app_ids(self) -> list[int]:
        return sorted({a for (a, _, _) in self._agg})

    # -- comparison / snapshots ------------------------------------------------------

    def as_dict(self) -> dict[tuple[int, str, str], tuple[int, int, int, int]]:
        """Plain snapshot ``(app, kind, transport) -> (bytes, count, retries,
        retransmitted bytes)`` — the replayability tests compare these."""
        return {
            (a, k.value, t.value): tuple(cell)
            for (a, k, t), cell in self._agg.items()
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransferMetrics):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable per-app table (bytes in MiB)."""
        lines = [
            f"{'app':>5} {'kind':>10} {'transport':>9} {'MiB':>12} {'msgs':>8}"
        ]
        for (a, k, t) in sorted(
            self._agg, key=lambda key: (key[0], key[1].value, key[2].value)
        ):
            b, c, *_ = self._agg[(a, k, t)]
            lines.append(
                f"{a:>5} {k.value:>10} {t.value:>9} {b / 2**20:>12.2f} {c:>8}"
            )
        return "\n".join(lines)
