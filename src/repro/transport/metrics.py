"""Aggregated transfer metrics.

Accumulates byte and message counters keyed by (app, kind, transport) as
records stream in — memory stays O(#distinct keys) however many transfers a
scenario performs. The evaluation benches read their figures straight off
these counters.

Since the observability layer landed, :class:`TransferMetrics` is a thin
façade over a :class:`~repro.obs.metrics.MetricsRegistry`: the byte/count/
retry accumulation lives in labelled registry counters
(``transfer.bytes``, ``transfer.count``, ``transfer.retries``,
``transfer.retransmitted_bytes``), so a ``--metrics-out`` snapshot sees the
same numbers the benches read, while every query and export below is
byte-identical to the pre-registry implementation.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.transport.message import TransferKind, TransferRecord, Transport

__all__ = ["TransferMetrics"]

#: registry label names shared by all transfer counters
_LABELS = ("app", "kind", "transport")


class TransferMetrics:
    """Byte/count accumulator over transfer records, backed by a registry."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._bytes = self.registry.counter("transfer.bytes", _LABELS)
        self._count = self.registry.counter("transfer.count", _LABELS)
        self._retries = self.registry.counter("transfer.retries", _LABELS)
        self._rebytes = self.registry.counter(
            "transfer.retransmitted_bytes", _LABELS
        )

    # -- recording ---------------------------------------------------------------

    def record(self, rec: TransferRecord) -> None:
        # Hot path: update the counter cells directly with one shared key
        # (cell layout is the registry's documented storage contract).
        key = (rec.app_id, rec.kind, rec.transport)
        cells = self._bytes.cells
        cells[key] = cells.get(key, 0) + rec.nbytes
        cells = self._count.cells
        cells[key] = cells.get(key, 0) + 1
        cells = self._retries.cells
        cells[key] = cells.get(key, 0) + rec.retries
        cells = self._rebytes.cells
        cells[key] = cells.get(key, 0) + rec.retries * rec.nbytes

    def record_all(self, recs: Iterable[TransferRecord]) -> None:
        for rec in recs:
            self.record(rec)

    def clear(self) -> None:
        for counter in (self._bytes, self._count, self._retries, self._rebytes):
            counter.cells.clear()

    def merge(self, other: "TransferMetrics") -> "TransferMetrics":
        """Fold another accumulator's counters into this one (in place).

        Combines metrics from independently-run scenarios — the report
        module and benchmark aggregation sum per-run accumulators this way.
        Returns ``self`` for chaining.
        """
        pairs = (
            (self._bytes, other._bytes),
            (self._count, other._count),
            (self._retries, other._retries),
            (self._rebytes, other._rebytes),
        )
        for mine, theirs in pairs:
            for key, value in theirs.cells.items():
                mine.cells[key] = mine.cells.get(key, 0) + value
        return self

    # -- queries ---------------------------------------------------------------

    def _sum(
        self,
        counter,
        kind: TransferKind | None,
        transport: Transport | None,
        app_id: int | None,
    ) -> int:
        total = 0
        for (a, k, t), v in counter.cells.items():
            if kind is not None and k is not kind:
                continue
            if transport is not None and t is not transport:
                continue
            if app_id is not None and a != app_id:
                continue
            total += v
        return total

    def bytes(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Total bytes matching the given filters (None = any)."""
        return self._sum(self._bytes, kind, transport, app_id)

    def count(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Number of transfers matching the given filters."""
        return self._sum(self._count, kind, transport, app_id)

    def retries(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Failed attempts re-issued for the matching transfers."""
        return self._sum(self._retries, kind, transport, app_id)

    def retransmitted_bytes(
        self,
        kind: TransferKind | None = None,
        transport: Transport | None = None,
        app_id: int | None = None,
    ) -> int:
        """Bytes that crossed the wire again because an attempt failed."""
        return self._sum(self._rebytes, kind, transport, app_id)

    # -- convenience shorthands used by the benches ---------------------------------

    def network_bytes(
        self, kind: TransferKind | None = None, app_id: int | None = None
    ) -> int:
        return self.bytes(kind=kind, transport=Transport.NETWORK, app_id=app_id)

    def shm_bytes(
        self, kind: TransferKind | None = None, app_id: int | None = None
    ) -> int:
        return self.bytes(kind=kind, transport=Transport.SHM, app_id=app_id)

    def network_fraction(self, kind: TransferKind | None = None) -> float:
        """Fraction of bytes (of a kind) that crossed the network."""
        net = self.network_bytes(kind=kind)
        total = net + self.shm_bytes(kind=kind)
        return net / total if total else 0.0

    def app_ids(self) -> list[int]:
        return sorted({a for (a, _, _) in self._bytes.cells})

    # -- comparison / snapshots ------------------------------------------------------

    def as_dict(self) -> dict[tuple[int, str, str], tuple[int, int, int, int]]:
        """Plain snapshot ``(app, kind, transport) -> (bytes, count, retries,
        retransmitted bytes)`` — the replayability tests compare these."""
        return {
            (a, k.value, t.value): (
                b,
                self._count.cells.get((a, k, t), 0),
                self._retries.cells.get((a, k, t), 0),
                self._rebytes.cells.get((a, k, t), 0),
            )
            for (a, k, t), b in self._bytes.cells.items()
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransferMetrics):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable per-app table (bytes in MiB)."""
        lines = [
            f"{'app':>5} {'kind':>10} {'transport':>9} {'MiB':>12} {'msgs':>8}"
        ]
        for (a, k, t) in sorted(
            self._bytes.cells, key=lambda key: (key[0], key[1].value, key[2].value)
        ):
            b = self._bytes.cells[(a, k, t)]
            c = self._count.cells.get((a, k, t), 0)
            lines.append(
                f"{a:>5} {k.value:>10} {t.value:>9} {b / 2**20:>12.2f} {c:>8}"
            )
        return "\n".join(lines)
