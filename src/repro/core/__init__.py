"""The paper's primary contribution: tasks, comm graph, mappers, framework."""

from repro.core.commgraph import CommGraph, Coupling, build_comm_graph
from repro.core.framework import InSituFramework
from repro.core.mapping import (
    ClientSideMapper,
    MappingResult,
    RoundRobinMapper,
    ServerSideMapper,
    TaskMapper,
)
from repro.core.task import AppSpec, ComputationTask, TaskKey

__all__ = [
    "AppSpec",
    "ComputationTask",
    "TaskKey",
    "Coupling",
    "CommGraph",
    "build_comm_graph",
    "MappingResult",
    "TaskMapper",
    "RoundRobinMapper",
    "ServerSideMapper",
    "ClientSideMapper",
    "InSituFramework",
]
