"""Applications and computation tasks.

An :class:`AppSpec` describes one data-parallel application of the workflow:
its unique application id, its decomposition descriptor (paper §III-B), and
the element size of its coupled variable. A :class:`ComputationTask` is one
unit of the app — "application id, process rank, and its requested data
region" (paper §IV-B) — the thing the mappers place onto cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.cods.objects import RegionProduct, region_cells, region_restrict
from repro.domain.box import Box
from repro.domain.decomposition import Decomposition
from repro.domain.descriptor import DecompositionDescriptor
from repro.errors import MappingError

__all__ = ["AppSpec", "ComputationTask", "TaskKey"]

#: Identifies one task across the workflow: (app_id, rank).
TaskKey = tuple[int, int]


@dataclass(frozen=True)
class AppSpec:
    """One parallel application of the coupled workflow."""

    app_id: int
    name: str
    descriptor: DecompositionDescriptor
    element_size: int = 8
    #: name of the coupled variable this app produces or consumes
    var: str = "data"

    def __post_init__(self) -> None:
        if self.app_id < 0:
            raise MappingError(f"app_id must be non-negative, got {self.app_id}")
        if self.element_size <= 0:
            raise MappingError("element_size must be positive")
        if not self.name:
            raise MappingError("application name must be non-empty")

    @property
    def ntasks(self) -> int:
        return self.descriptor.ntasks

    @cached_property
    def decomposition(self) -> Decomposition:
        return self.descriptor.build()

    def task(self, rank: int, coupled_region: Box | None = None) -> "ComputationTask":
        """Build the computation task of ``rank``."""
        decomp = self.decomposition
        region = decomp.task_intervals(rank)
        if coupled_region is not None:
            requested = region_restrict(region, coupled_region)
        else:
            requested = region
        return ComputationTask(
            app_id=self.app_id,
            rank=rank,
            region=region,
            requested_region=requested,
            element_size=self.element_size,
            var=self.var,
        )

    def tasks(self, coupled_region: Box | None = None) -> list["ComputationTask"]:
        return [self.task(r, coupled_region) for r in range(self.ntasks)]


@dataclass(frozen=True)
class ComputationTask:
    """One placeable unit of work."""

    app_id: int
    rank: int
    #: the task's share of the global domain (interval product)
    region: RegionProduct
    #: the coupled data it needs (region clipped to the coupled area)
    requested_region: RegionProduct
    element_size: int = 8
    var: str = "data"

    @property
    def key(self) -> TaskKey:
        return (self.app_id, self.rank)

    @property
    def owned_cells(self) -> int:
        return region_cells(self.region)

    @property
    def requested_cells(self) -> int:
        return region_cells(self.requested_region)

    @property
    def requested_bytes(self) -> int:
        return self.requested_cells * self.element_size

    @property
    def bounding_box(self) -> Box:
        from repro.cods.objects import region_bounding_box

        return region_bounding_box(self.requested_region)
