"""The top-level facade a downstream user programs against.

Ties together the pieces of Fig 4: one cluster, one HybridDART transport
(with its metrics), CoDS spaces, the task mappers, and the workflow engine.
The three-step programming model of §III-B maps to:

1. compose the DAG — :meth:`InSituFramework.workflow_from_description` or a
   hand-built :class:`~repro.workflow.dag.WorkflowDAG`;
2. expose decompositions — :class:`~repro.core.task.AppSpec` /
   :class:`~repro.domain.descriptor.DecompositionDescriptor`;
3. express data sharing with the CoDS operators —
   :meth:`InSituFramework.create_space` then ``put_seq``/``get_seq``/
   ``put_cont``/``get_cont``.
"""

from __future__ import annotations

from repro.cods.space import CoDS
from repro.core.commgraph import Coupling
from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.mapping.serverside import ServerSideMapper
from repro.core.task import AppSpec
from repro.domain.box import Box
from repro.errors import ReproError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import MachineSpec
from repro.transport.hybriddart import HybridDART
from repro.transport.metrics import TransferMetrics
from repro.workflow.dag import WorkflowDAG
from repro.workflow.engine import WorkflowEngine
from repro.workflow.parser import build_workflow, parse_dag

__all__ = ["InSituFramework"]


class InSituFramework:
    """One instance per (simulated) machine allocation."""

    def __init__(
        self,
        num_nodes: int | None = None,
        machine: MachineSpec | None = None,
        cluster: Cluster | None = None,
    ) -> None:
        if cluster is not None:
            self.cluster = cluster
        elif num_nodes is not None:
            self.cluster = Cluster(num_nodes, machine)
        else:
            raise ReproError("provide either a cluster or num_nodes")
        self.metrics = TransferMetrics()
        self.dart = HybridDART(self.cluster, self.metrics)
        self._spaces: dict[tuple[int, ...], CoDS] = {}

    # -- spaces ------------------------------------------------------------------

    def create_space(self, domain_extents: tuple[int, ...], **kwargs) -> CoDS:
        """Create (or return the existing) CoDS for a data domain."""
        key = tuple(int(s) for s in domain_extents)
        space = self._spaces.get(key)
        if space is None:
            space = CoDS(self.cluster, key, dart=self.dart, **kwargs)
            self._spaces[key] = space
        return space

    # -- mapping -----------------------------------------------------------------

    def map_concurrent(
        self,
        apps: list[AppSpec],
        couplings: list[Coupling],
        strategy: str = "data-centric",
        seed: int = 0,
        available_cores: "list[int] | None" = None,
    ) -> MappingResult:
        """Place a concurrently coupled bundle (server-side mapping)."""
        mapper: TaskMapper
        if strategy == "data-centric":
            mapper = ServerSideMapper(seed=seed)
            return mapper.map_bundle(
                apps, self.cluster, couplings=couplings,
                available_cores=available_cores,
            )
        if strategy == "round-robin":
            return RoundRobinMapper().map_bundle(
                apps, self.cluster, available_cores=available_cores
            )
        raise ReproError(f"unknown mapping strategy {strategy!r}")

    def map_sequential_consumers(
        self,
        apps: list[AppSpec],
        space: CoDS,
        coupled_region: Box | None = None,
        strategy: str = "data-centric",
        available_cores: "list[int] | None" = None,
    ) -> MappingResult:
        """Place consumer apps next to data already stored in ``space``."""
        if strategy == "data-centric":
            return ClientSideMapper().map_bundle(
                apps, self.cluster, lookup=space.lookup,
                coupled_region=coupled_region, available_cores=available_cores,
            )
        if strategy == "round-robin":
            return RoundRobinMapper().map_bundle(
                apps, self.cluster, available_cores=available_cores
            )
        raise ReproError(f"unknown mapping strategy {strategy!r}")

    # -- workflows ------------------------------------------------------------------

    def workflow_from_description(
        self, text: str, specs: "dict[int, AppSpec] | None" = None
    ) -> WorkflowDAG:
        """Parse a Listing-1 description file into a workflow DAG."""
        return build_workflow(parse_dag(text), specs)

    def engine(self, dag: WorkflowDAG) -> WorkflowEngine:
        """Workflow engine bound to this framework's cluster."""
        return WorkflowEngine(dag, self.cluster)

    # -- reporting ----------------------------------------------------------------------

    def transfer_summary(self) -> str:
        return self.metrics.summary()
