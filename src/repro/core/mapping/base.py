"""Task mapping interfaces and the mapping result type."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.task import AppSpec, TaskKey
from repro.errors import MappingError
from repro.hardware.cluster import Cluster

__all__ = ["MappingResult", "TaskMapper"]


@dataclass
class MappingResult:
    """A placement of computation tasks onto processor cores.

    Within one concurrently scheduled set of applications every core runs at
    most one task (one execution client per core); validation enforces this.
    """

    cluster: Cluster
    placement: dict[TaskKey, int] = field(default_factory=dict)

    def assign(self, key: TaskKey, core: int) -> None:
        if key in self.placement:
            raise MappingError(f"task {key} already mapped")
        if not 0 <= core < self.cluster.total_cores:
            raise MappingError(f"core {core} out of range")
        self.placement[key] = core

    def core_of(self, app_id: int, rank: int) -> int:
        try:
            return self.placement[(app_id, rank)]
        except KeyError:
            raise MappingError(f"task ({app_id}, {rank}) is not mapped") from None

    def node_of(self, app_id: int, rank: int) -> int:
        return self.cluster.node_of_core(self.core_of(app_id, rank))

    def cores_of_app(self, app_id: int) -> dict[int, int]:
        """rank -> core for one application."""
        return {
            rank: core for (a, rank), core in self.placement.items() if a == app_id
        }

    def validate(self, apps: list[AppSpec]) -> None:
        """Check the mapping is complete and one-task-per-core."""
        for app in apps:
            for rank in range(app.ntasks):
                if (app.app_id, rank) not in self.placement:
                    raise MappingError(f"task ({app.app_id}, {rank}) unmapped")
        keys = [k for k in self.placement if k[0] in {a.app_id for a in apps}]
        cores = [self.placement[k] for k in keys]
        if len(set(cores)) != len(cores):
            raise MappingError("two concurrent tasks mapped to the same core")

    def nodes_used(self) -> set[int]:
        return {self.cluster.node_of_core(c) for c in self.placement.values()}

    def cores_used(self) -> set[int]:
        return set(self.placement.values())

    def overlaps_cores(self, cores: "set[int]") -> bool:
        """True if any task is placed on one of ``cores`` (fault checks)."""
        return not cores.isdisjoint(self.placement.values())

    def __len__(self) -> int:
        return len(self.placement)


class TaskMapper(abc.ABC):
    """Strategy interface: place a bundle's tasks onto a cluster."""

    #: identifier used in reports
    name: str = "mapper"

    @abc.abstractmethod
    def map_bundle(
        self,
        apps: list[AppSpec],
        cluster: Cluster,
        **context: object,
    ) -> MappingResult:
        """Place every task of every app in the bundle."""

    @staticmethod
    def _resolve_available(
        cluster: Cluster, available_cores: "list[int] | None"
    ) -> list[int]:
        """Normalize the schedulable core set (defaults to every core).

        Concurrent bundles launched at the same simulated instant must not
        collide, so the workflow engine passes the server's idle cores here.
        """
        if available_cores is None:
            return list(cluster.cores())
        cores = sorted(set(available_cores))
        for c in cores:
            if not 0 <= c < cluster.total_cores:
                raise MappingError(f"available core {c} out of range")
        return cores

    @staticmethod
    def _check_capacity(
        apps: list[AppSpec], cluster: Cluster, available: "list[int] | None" = None
    ) -> int:
        total = sum(a.ntasks for a in apps)
        limit = cluster.total_cores if available is None else len(available)
        if total > limit:
            raise MappingError(f"{total} tasks exceed {limit} schedulable cores")
        return total
