"""Task mappers: round-robin baseline and the two data-centric strategies."""

from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.mapping.serverside import ServerSideMapper

__all__ = [
    "MappingResult",
    "TaskMapper",
    "RoundRobinMapper",
    "ServerSideMapper",
    "ClientSideMapper",
]
