"""Decentralized client-side data-centric mapping (paper §IV-B).

Used for sequentially coupled applications: the producer already stored its
data in CoDS, so the best placement for a consumer task is next to its
input. The algorithm mirrors the paper:

1. The management server distributes tasks to execution clients round-robin
   (the "initial task distribution").
2. Each client queries the Data Lookup service for the storage locations of
   its task's requested region.
3. The client re-dispatches its task to the compute node from which the
   largest portion of the coupled data can be retrieved locally.

Node core capacity is finite, so clients whose preferred node has filled up
fall through to the next-best node by local byte count. Clients are
processed in descending requested volume, which keeps the mapping
deterministic and gives the largest pulls first pick.
"""

from __future__ import annotations

from repro.cods.lookup import DataLookupService
from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.task import AppSpec, ComputationTask
from repro.domain.box import Box
from repro.errors import MappingError
from repro.hardware.cluster import Cluster

__all__ = ["ClientSideMapper"]


class ClientSideMapper(TaskMapper):
    """Lookup-driven greedy placement of data-consumer applications."""

    name = "data-centric/client"

    def __init__(self, initial_strategy: str = "block") -> None:
        self._initial = RoundRobinMapper(strategy=initial_strategy)

    def map_bundle(
        self,
        apps: list[AppSpec],
        cluster: Cluster,
        lookup: "DataLookupService | None" = None,
        coupled_region: "Box | None" = None,
        available_cores: "list[int] | None" = None,
        **context: object,
    ) -> MappingResult:
        if lookup is None:
            raise MappingError(
                "client-side mapping needs the Data Lookup service"
            )
        available = self._resolve_available(cluster, available_cores)
        self._check_capacity(apps, cluster, available)
        # Step 1: initial round-robin distribution — this decides which
        # execution client (core) issues each task's lookup query.
        initial = self._initial.map_bundle(apps, cluster, available_cores=available)

        tasks: list[ComputationTask] = []
        for app in apps:
            tasks.extend(app.tasks(coupled_region))
        # Largest consumers pick first; ties broken by task key (determinism).
        tasks.sort(key=lambda t: (-t.requested_bytes, t.key))

        free: dict[int, list[int]] = {node: [] for node in cluster.nodes()}
        for core in available:
            free[cluster.node_of_core(core)].append(core)
        result = MappingResult(cluster=cluster)
        for task in tasks:
            query_core = initial.core_of(*task.key)
            per_node = lookup.bytes_by_node_for_region(
                query_core, task.var, task.requested_region
            )
            core = self._pick_core(per_node, free, query_core, cluster)
            result.assign(task.key, core)
        result.validate(apps)
        return result

    @staticmethod
    def _pick_core(
        per_node: dict[int, int],
        free: dict[int, list[int]],
        fallback_core: int,
        cluster: Cluster,
    ) -> int:
        """Best node by local bytes with a free core; else keep the initial
        placement if still free; else any node with room."""
        for node in sorted(per_node, key=lambda n: (-per_node[n], n)):
            if free[node]:
                return free[node].pop(0)
        fb_node = cluster.node_of_core(fallback_core)
        if fallback_core in free[fb_node]:
            free[fb_node].remove(fallback_core)
            return fallback_core
        for node in sorted(free, key=lambda n: (-len(free[n]), n)):
            if free[node]:
                return free[node].pop(0)
        raise MappingError("no free core left for task placement")
