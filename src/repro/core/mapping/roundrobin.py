"""Round-robin task mapping — the paper's baseline.

"We compared our data-centric task mapping strategy with the round-robin
task mapping that employed by many MPI job launchers." Two launcher
conventions are provided:

* ``block`` (default, aprun/SMP-style): ranks fill a node's cores before
  moving to the next node. Apps in a bundle are laid out back-to-back in
  (app, rank) order.
* ``cyclic``: consecutive ranks go to consecutive *nodes*, wrapping around.
"""

from __future__ import annotations

from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.task import AppSpec
from repro.errors import MappingError
from repro.hardware.cluster import Cluster

__all__ = ["RoundRobinMapper"]


class RoundRobinMapper(TaskMapper):
    """Placement oblivious to data location."""

    name = "round-robin"

    def __init__(self, strategy: str = "block") -> None:
        if strategy not in ("block", "cyclic"):
            raise MappingError(
                f"unknown round-robin strategy {strategy!r}; "
                "expected 'block' or 'cyclic'"
            )
        self.strategy = strategy

    def map_bundle(
        self,
        apps: list[AppSpec],
        cluster: Cluster,
        available_cores: "list[int] | None" = None,
        **context: object,
    ) -> MappingResult:
        available = self._resolve_available(cluster, available_cores)
        total = self._check_capacity(apps, cluster, available)
        result = MappingResult(cluster=cluster)
        if self.strategy == "block":
            core_order = available[:total]
        else:
            core_order = self._cyclic_order(cluster, available, total)
        i = 0
        for app in apps:
            for rank in range(app.ntasks):
                result.assign((app.app_id, rank), core_order[i])
                i += 1
        result.validate(apps)
        return result

    @staticmethod
    def _cyclic_order(cluster: Cluster, available: list[int], total: int) -> list[int]:
        """First free core of node 0, node 1, ..., then second free core, etc."""
        by_node: dict[int, list[int]] = {}
        for core in available:
            by_node.setdefault(cluster.node_of_core(core), []).append(core)
        order: list[int] = []
        slot = 0
        while len(order) < total:
            advanced = False
            for node in sorted(by_node):
                cores = by_node[node]
                if slot < len(cores):
                    order.append(cores[slot])
                    advanced = True
                    if len(order) == total:
                        return order
            if not advanced:
                break
            slot += 1
        return order
