"""Server-side data-centric mapping for concurrent bundles (paper §IV-B).

Two steps, as in the paper:

1. Generate the inter-application communication graph offline from the
   decomposition descriptors (:func:`repro.core.commgraph.build_comm_graph`).
2. At launch, partition the ``num_tasks`` tasks into
   ``num_tasks / core_count`` node-sized groups with the multilevel
   partitioner (the METIS substitute), map each group onto a distinct
   compute node, and hand the group's tasks to that node's cores
   round-robin.

The partition objective — minimum weighted edgecut under a hard
``cores_per_node`` capacity — removes as much inter-application traffic from
the network as the decompositions allow.
"""

from __future__ import annotations

from repro.core.commgraph import Coupling, build_comm_graph
from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.task import AppSpec
from repro.errors import MappingError
from repro.hardware.cluster import Cluster
from repro.partition.multilevel import MultilevelKWay

__all__ = ["ServerSideMapper"]


class ServerSideMapper(TaskMapper):
    """Graph-partitioning placement of concurrently coupled applications."""

    name = "data-centric/server"

    def __init__(self, seed: int = 0, max_passes: int = 8) -> None:
        self.partitioner = MultilevelKWay(seed=seed, max_passes=max_passes)

    def map_bundle(
        self,
        apps: list[AppSpec],
        cluster: Cluster,
        couplings: "list[Coupling] | None" = None,
        available_cores: "list[int] | None" = None,
        **context: object,
    ) -> MappingResult:
        if not couplings:
            raise MappingError(
                "server-side mapping needs the bundle's coupling list"
            )
        available = self._resolve_available(cluster, available_cores)
        total = self._check_capacity(apps, cluster, available)
        # Schedulable cores grouped by node (full nodes when unconstrained).
        by_node: dict[int, list[int]] = {}
        for core in available:
            by_node.setdefault(cluster.node_of_core(core), []).append(core)
        # Prefer the emptiest nodes first; take just enough to hold the tasks.
        nodes = sorted(by_node, key=lambda n: (-len(by_node[n]), n))
        chosen: list[int] = []
        cap = 0
        for node in nodes:
            chosen.append(node)
            cap += len(by_node[node])
            if cap >= total:
                break
        if cap < total:
            raise MappingError(f"{total} tasks exceed {cap} schedulable cores")
        capacities = [len(by_node[n]) for n in chosen]

        comm = build_comm_graph(apps, couplings)
        partition = self.partitioner.partition(
            comm.graph, len(chosen), capacities=capacities
        )
        if not partition.is_feasible:
            raise MappingError("partitioner produced an over-capacity group")

        result = MappingResult(cluster=cluster)
        for group_id, members in enumerate(partition.groups()):
            cores = by_node[chosen[group_id]]
            # Round-robin the group's tasks over the node's cores (§IV-B).
            for slot, vertex in enumerate(members):
                result.assign(comm.tasks[vertex], cores[slot])
        result.validate(apps)
        return result
