"""The inter-application communication graph (paper §IV-B).

For a "bundle" of concurrently coupled applications the server-side mapper
needs a graph whose vertices are the computation tasks of every app in the
bundle and whose edges connect tasks of *different* applications that
exchange coupled data, weighted by the byte volume of the exchange — derived
entirely offline from the decomposition descriptors, exactly as the paper
does ("this step is performed offline before the workflow starts running").

Edge discovery uses per-dimension candidate filtering
(:meth:`~repro.domain.decomposition.Decomposition.overlapping_ranks`), so the
cost is proportional to the number of actual edges, not the task-count
product.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.task import AppSpec, TaskKey
from repro.domain.box import Box
from repro.errors import MappingError
from repro.partition.csr import CSRGraph

__all__ = ["Coupling", "CommGraph", "build_comm_graph"]


@dataclass(frozen=True)
class Coupling:
    """A producer -> consumer data exchange over (part of) the domain."""

    producer: AppSpec
    consumer: AppSpec
    #: coupled region; None couples the apps' full shared domain
    region: Box | None = None

    def __post_init__(self) -> None:
        if self.producer.app_id == self.consumer.app_id:
            raise MappingError("an application cannot couple with itself")
        pd = self.producer.descriptor.domain_size
        cd = self.consumer.descriptor.domain_size
        if pd != cd:
            raise MappingError(
                f"coupled apps must share a domain: {pd} vs {cd}"
            )


@dataclass(frozen=True)
class CommGraph:
    """Task-level communication graph of a bundle."""

    graph: CSRGraph
    #: vertex id -> (app_id, rank)
    tasks: tuple[TaskKey, ...]
    #: (app_id, rank) -> vertex id
    vertex_of: dict[TaskKey, int]

    @property
    def ntasks(self) -> int:
        return len(self.tasks)

    def total_coupled_bytes(self) -> int:
        return self.graph.total_adjwgt


def build_comm_graph(
    apps: list[AppSpec],
    couplings: list[Coupling],
) -> CommGraph:
    """Build the bundle's communication graph from its decompositions."""
    if not apps:
        raise MappingError("bundle must contain at least one application")
    ids = [a.app_id for a in apps]
    if len(set(ids)) != len(ids):
        raise MappingError(f"duplicate app ids in bundle: {ids}")
    by_id = {a.app_id: a for a in apps}

    # Vertex numbering: apps in given order, ranks ascending.
    tasks: list[TaskKey] = []
    vertex_of: dict[TaskKey, int] = {}
    for app in apps:
        for rank in range(app.ntasks):
            vertex_of[(app.app_id, rank)] = len(tasks)
            tasks.append((app.app_id, rank))

    edges: list[tuple[int, int, int]] = []
    for coupling in couplings:
        prod, cons = coupling.producer, coupling.consumer
        if prod.app_id not in by_id or cons.app_id not in by_id:
            raise MappingError(
                f"coupling references app outside the bundle: "
                f"{prod.app_id} -> {cons.app_id}"
            )
        pdec = prod.decomposition
        cdec = cons.decomposition
        esize = prod.element_size
        for prank in range(prod.ntasks):
            u = vertex_of[(prod.app_id, prank)]
            for crank, cells in pdec.overlapping_ranks(
                cdec, prank, region=coupling.region
            ):
                v = vertex_of[(cons.app_id, crank)]
                edges.append((u, v, cells * esize))

    graph = CSRGraph.from_edges(len(tasks), edges)
    return CommGraph(graph=graph, tasks=tuple(tasks), vertex_of=vertex_of)
