"""Machine specifications for the simulated platform.

The paper evaluates on the Jaguar Cray XT5: dual hex-core AMD Opteron nodes
(12 cores, 16 GB) connected by SeaStar2+ routers in a fast 3-D torus. We
model a machine as (node spec, network spec); the numbers in the Jaguar
preset are published SeaStar2+/Opteron ballparks — absolute values only set
the time scale, while the figures' *shapes* come from where data moves
(shared memory vs network) and from link contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError

__all__ = ["NodeSpec", "NetworkSpec", "MachineSpec", "jaguar_xt5", "generic_multicore"]

GiB = 1024 ** 3
MiB = 1024 ** 2


@dataclass(frozen=True)
class NodeSpec:
    """A multi-core compute node."""

    cores: int = 12
    memory_bytes: int = 16 * GiB
    #: sustained intra-node shared-memory copy bandwidth (bytes/s)
    shm_bandwidth: float = 12.0 * GiB
    #: latency of an intra-node shared-memory handoff (s)
    shm_latency: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise HardwareError(f"cores must be positive, got {self.cores}")
        if self.memory_bytes <= 0 or self.shm_bandwidth <= 0 or self.shm_latency < 0:
            raise HardwareError("node spec values must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """The inter-node interconnect (NICs + torus links)."""

    #: per-direction bandwidth of one torus link (bytes/s)
    link_bandwidth: float = 9.6 * GiB
    #: NIC injection/ejection bandwidth per node (bytes/s)
    nic_bandwidth: float = 6.4 * GiB
    #: base end-to-end message latency (s)
    base_latency: float = 6.0e-6
    #: additional latency per torus hop (s)
    per_hop_latency: float = 0.1e-6

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise HardwareError("network bandwidths must be positive")
        if self.base_latency < 0 or self.per_hop_latency < 0:
            raise HardwareError("latencies must be non-negative")


@dataclass(frozen=True)
class MachineSpec:
    """A complete platform description."""

    name: str = "generic"
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)

    @property
    def cores_per_node(self) -> int:
        return self.node.cores


def jaguar_xt5() -> MachineSpec:
    """Jaguar Cray XT5-like preset (the paper's evaluation platform)."""
    return MachineSpec(
        name="jaguar-xt5",
        node=NodeSpec(
            cores=12,
            memory_bytes=16 * GiB,
            shm_bandwidth=12.0 * GiB,
            shm_latency=1.0e-6,
        ),
        network=NetworkSpec(
            link_bandwidth=9.6 * GiB,
            nic_bandwidth=6.4 * GiB,
            base_latency=6.0e-6,
            per_hop_latency=0.1e-6,
        ),
    )


def generic_multicore(cores: int = 8) -> MachineSpec:
    """A small generic preset for examples and tests."""
    return MachineSpec(name=f"generic-{cores}core", node=NodeSpec(cores=cores))
