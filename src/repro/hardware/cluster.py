"""Cluster model: nodes of cores, and the core <-> node mapping.

Execution clients run one per core ("one MPI process is created per core on
a multicore compute node"). All placement logic in the framework speaks in
terms of *global core ids*; the cluster resolves them to nodes, which is what
decides whether a transfer crosses the network.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import HardwareError
from repro.hardware.spec import MachineSpec, jaguar_xt5

__all__ = ["Cluster"]


class Cluster:
    """``num_nodes`` identical nodes of ``machine.cores_per_node`` cores.

    Global core ids are dense: node ``n`` owns cores
    ``[n*cpn, (n+1)*cpn)``.
    """

    def __init__(self, num_nodes: int, machine: MachineSpec | None = None) -> None:
        if num_nodes <= 0:
            raise HardwareError(f"num_nodes must be positive, got {num_nodes}")
        self.machine = machine if machine is not None else jaguar_xt5()
        self.num_nodes = int(num_nodes)

    # -- shape -----------------------------------------------------------------

    @property
    def cores_per_node(self) -> int:
        return self.machine.cores_per_node

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    def __repr__(self) -> str:
        return (
            f"Cluster(num_nodes={self.num_nodes}, "
            f"cores_per_node={self.cores_per_node}, machine={self.machine.name!r})"
        )

    # -- core <-> node ------------------------------------------------------------

    def node_of_core(self, core: int) -> int:
        if not 0 <= core < self.total_cores:
            raise HardwareError(f"core {core} out of range [0, {self.total_cores})")
        return core // self.cores_per_node

    def cores_of_node(self, node: int) -> range:
        if not 0 <= node < self.num_nodes:
            raise HardwareError(f"node {node} out of range [0, {self.num_nodes})")
        cpn = self.cores_per_node
        return range(node * cpn, (node + 1) * cpn)

    def same_node(self, core_a: int, core_b: int) -> bool:
        return self.node_of_core(core_a) == self.node_of_core(core_b)

    def cores(self) -> range:
        return range(self.total_cores)

    def nodes(self) -> range:
        return range(self.num_nodes)

    # -- allocation helpers ----------------------------------------------------------

    @classmethod
    def for_cores(
        cls, num_cores: int, machine: MachineSpec | None = None
    ) -> "Cluster":
        """Smallest cluster providing at least ``num_cores`` cores."""
        machine = machine if machine is not None else jaguar_xt5()
        if num_cores <= 0:
            raise HardwareError(f"num_cores must be positive, got {num_cores}")
        nodes = -(-num_cores // machine.cores_per_node)
        return cls(num_nodes=nodes, machine=machine)

    def node_blocks(self, cores: Sequence[int]) -> Iterator[tuple[int, list[int]]]:
        """Group a core list by node, yielding ``(node, cores_on_node)``."""
        by_node: dict[int, list[int]] = {}
        for c in cores:
            by_node.setdefault(self.node_of_core(c), []).append(c)
        for node in sorted(by_node):
            yield node, sorted(by_node[node])
