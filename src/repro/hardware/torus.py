"""3-D torus topology with dimension-ordered routing.

Jaguar's SeaStar2+ interconnect is a 3-D torus with dimension-ordered (X then
Y then Z) routing. We reproduce exactly that: node coordinates live on a
``dims`` grid with wrap-around links; a route walks each dimension in turn,
always taking the shorter wrap direction.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import HardwareError

__all__ = ["TorusTopology", "balanced_dims"]


def balanced_dims(n: int, ndim: int = 3) -> tuple[int, ...]:
    """Factor ``n`` into ``ndim`` near-equal factors (largest first).

    Used to shape a torus around a node count: ``balanced_dims(64) == (4,4,4)``.
    Falls back gracefully for primes (e.g. ``(7,1,1)``).
    """
    if n <= 0:
        raise HardwareError(f"node count must be positive, got {n}")
    if ndim <= 0:
        raise HardwareError(f"ndim must be positive, got {ndim}")
    dims = [1] * ndim
    remaining = n
    for i in range(ndim - 1):
        # Largest factor of `remaining` not exceeding its (ndim-i)-th root.
        target = round(remaining ** (1.0 / (ndim - i)))
        best = 1
        for f in range(1, remaining + 1):
            if remaining % f == 0 and f <= max(target, 1):
                best = f
        dims[i] = best
        remaining //= best
    dims[ndim - 1] = remaining
    dims.sort(reverse=True)
    return tuple(dims)


class TorusTopology:
    """A ``dims[0] x dims[1] x ... `` torus of nodes.

    Node ids are row-major over the coordinate grid. Links are directed:
    ``(node, neighbor)`` pairs; each node has ``2 * ndim`` outgoing links
    (fewer when a dimension has extent 1 or 2 collapses wrap pairs).
    """

    def __init__(self, dims: Sequence[int]) -> None:
        self.dims = tuple(int(d) for d in dims)
        if not self.dims or any(d <= 0 for d in self.dims):
            raise HardwareError(f"invalid torus dims {dims!r}")

    @property
    def nnodes(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def __repr__(self) -> str:
        return f"TorusTopology(dims={self.dims})"

    # -- coordinates ---------------------------------------------------------

    def node_to_coords(self, node: int) -> tuple[int, ...]:
        if not 0 <= node < self.nnodes:
            raise HardwareError(f"node {node} out of range [0, {self.nnodes})")
        coords = []
        for d in reversed(self.dims):
            coords.append(node % d)
            node //= d
        return tuple(reversed(coords))

    def coords_to_node(self, coords: Sequence[int]) -> int:
        if len(coords) != self.ndim:
            raise HardwareError("coords rank mismatch")
        node = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise HardwareError(f"coordinate {c} out of range [0, {d})")
            node = node * d + c
        return node

    # -- links and routes ------------------------------------------------------

    def links(self) -> Iterator[tuple[int, int]]:
        """All directed links, deduplicated (a 2-extent dim has one wrap pair)."""
        seen: set[tuple[int, int]] = set()
        for node in range(self.nnodes):
            coords = self.node_to_coords(node)
            for dim, extent in enumerate(self.dims):
                if extent == 1:
                    continue
                for step in (1, -1):
                    nbr = list(coords)
                    nbr[dim] = (coords[dim] + step) % extent
                    link = (node, self.coords_to_node(nbr))
                    if link not in seen:
                        seen.add(link)
                        yield link

    def hop_distance(self, a: int, b: int) -> int:
        """Torus (wrap-aware) Manhattan distance."""
        ca, cb = self.node_to_coords(a), self.node_to_coords(b)
        dist = 0
        for x, y, extent in zip(ca, cb, self.dims):
            delta = abs(x - y)
            dist += min(delta, extent - delta)
        return dist

    def route_crosses(self, src: int, dst: int, cut_links) -> bool:
        """True when the dimension-ordered route ``src -> dst`` uses any of
        ``cut_links`` (directed ``(a, b)`` pairs).

        Routing is deterministic, so a set of cut links induces a fixed set
        of severed node pairs — which is what makes torus link-group
        partitions replayable."""
        cut = set(cut_links)
        if not cut:
            return False
        return any(hop in cut for hop in self.route(src, dst))

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-ordered route as a list of directed links.

        Each dimension is traversed fully before the next, taking the
        shorter wrap direction (ties go the positive way) — SeaStar-style
        deterministic routing, so every (src, dst) pair always loads the
        same links.
        """
        if src == dst:
            return []
        cur = list(self.node_to_coords(src))
        target = self.node_to_coords(dst)
        hops: list[tuple[int, int]] = []
        for dim, extent in enumerate(self.dims):
            while cur[dim] != target[dim]:
                fwd = (target[dim] - cur[dim]) % extent
                bwd = (cur[dim] - target[dim]) % extent
                step = 1 if fwd <= bwd else -1
                here = self.coords_to_node(cur)
                cur[dim] = (cur[dim] + step) % extent
                hops.append((here, self.coords_to_node(cur)))
        return hops
