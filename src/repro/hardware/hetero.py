"""Heterogeneous clusters — the paper's future-work platform (§VII).

"Our directions for future work include extending the framework to enable
task mapping and execution on emerging heterogeneous multicore platforms."
This module provides a cluster whose nodes have *different* core counts
(e.g. fat accelerator-host nodes next to thin ones). All mappers already
speak in terms of ``node_of_core`` / ``cores_of_node`` and per-node free
lists, so they work unchanged; the server-side mapper's partition capacities
are per-node free-core counts, which become naturally heterogeneous here.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.errors import HardwareError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import MachineSpec, jaguar_xt5

__all__ = ["HeterogeneousCluster"]


class HeterogeneousCluster(Cluster):
    """A cluster with per-node core counts.

    Core ids remain dense and node-contiguous: node ``n`` owns the id range
    ``[offset[n], offset[n] + core_counts[n])``.
    """

    def __init__(
        self,
        core_counts: Sequence[int],
        machine: MachineSpec | None = None,
    ) -> None:
        counts = [int(c) for c in core_counts]
        if not counts or any(c <= 0 for c in counts):
            raise HardwareError(f"invalid per-node core counts {core_counts!r}")
        # Deliberately skip Cluster.__init__ bookkeeping and set fields here;
        # every Cluster method we don't override is re-implemented below.
        self.machine = machine if machine is not None else jaguar_xt5()
        self.num_nodes = len(counts)
        self.core_counts = tuple(counts)
        self._offsets = [0]
        for c in counts:
            self._offsets.append(self._offsets[-1] + c)

    # -- shape ------------------------------------------------------------------

    @property
    def cores_per_node(self) -> int:
        """The *largest* node size (used only for sizing heuristics)."""
        return max(self.core_counts)

    @property
    def total_cores(self) -> int:
        return self._offsets[-1]

    @property
    def is_uniform(self) -> bool:
        return len(set(self.core_counts)) == 1

    def __repr__(self) -> str:
        return (
            f"HeterogeneousCluster(core_counts={list(self.core_counts)}, "
            f"machine={self.machine.name!r})"
        )

    # -- core <-> node ------------------------------------------------------------

    def node_of_core(self, core: int) -> int:
        if not 0 <= core < self.total_cores:
            raise HardwareError(f"core {core} out of range [0, {self.total_cores})")
        return bisect.bisect_right(self._offsets, core) - 1

    def cores_of_node(self, node: int) -> range:
        if not 0 <= node < self.num_nodes:
            raise HardwareError(f"node {node} out of range [0, {self.num_nodes})")
        return range(self._offsets[node], self._offsets[node + 1])
