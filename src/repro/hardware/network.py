"""Link-graph network model over a cluster + torus.

The fluid-flow simulator (:mod:`repro.sim.flows`) needs, for every inter-node
transfer, the set of capacity-limited resources it occupies. This module
builds that link table: per-node NIC injection and ejection links plus the
directed torus links, with dimension-ordered routes between nodes. Intra-node
transfers never touch the network model — HybridDART sends them through
shared memory.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hardware.cluster import Cluster
from repro.hardware.torus import TorusTopology, balanced_dims

__all__ = ["NetworkModel"]


class NetworkModel:
    """Capacity-annotated link graph for a cluster.

    Link ids are dense ints:
      * ``2*node``     — NIC injection of ``node`` (into the network)
      * ``2*node + 1`` — NIC ejection of ``node`` (out of the network)
      * torus links follow, one id per directed neighbor pair.
    """

    def __init__(self, cluster: Cluster, topology: TorusTopology | None = None) -> None:
        self.cluster = cluster
        if topology is None:
            topology = TorusTopology(balanced_dims(cluster.num_nodes))
        if topology.nnodes != cluster.num_nodes:
            raise HardwareError(
                f"topology has {topology.nnodes} nodes, cluster has {cluster.num_nodes}"
            )
        self.topology = topology
        net = cluster.machine.network
        self._nic_links = 2 * cluster.num_nodes
        self._torus_index: dict[tuple[int, int], int] = {}
        capacities = [net.nic_bandwidth] * self._nic_links
        for link in topology.links():
            self._torus_index[link] = self._nic_links + len(self._torus_index)
            capacities.append(net.link_bandwidth)
        self.capacities = capacities
        self._route_cache: dict[tuple[int, int], tuple[int, ...]] = {}

    # -- shape -------------------------------------------------------------------

    @property
    def num_links(self) -> int:
        return len(self.capacities)

    def injection_link(self, node: int) -> int:
        return 2 * node

    def ejection_link(self, node: int) -> int:
        return 2 * node + 1

    def torus_link(self, src_node: int, dst_node: int) -> int:
        try:
            return self._torus_index[(src_node, dst_node)]
        except KeyError:
            raise HardwareError(
                f"({src_node}, {dst_node}) is not a torus link"
            ) from None

    # -- fault wiring ----------------------------------------------------------------

    def bind_injector(self, injector) -> None:
        """Share this model's torus with a fault injector.

        Link-group partition cuts are resolved over dimension-ordered
        routes; binding here guarantees the injector severs exactly the
        routes whose links the fluid-flow model loads."""
        injector.set_topology(self.topology)

    # -- paths ----------------------------------------------------------------------

    def node_path(self, src_node: int, dst_node: int) -> tuple[int, ...]:
        """Link ids a flow between two *nodes* occupies (cached).

        Same node -> empty path (the caller should use shared memory).
        """
        if src_node == dst_node:
            return ()
        key = (src_node, dst_node)
        cached = self._route_cache.get(key)
        if cached is None:
            links = [self.injection_link(src_node)]
            for hop in self.topology.route(src_node, dst_node):
                links.append(self._torus_index[hop])
            links.append(self.ejection_link(dst_node))
            cached = tuple(links)
            self._route_cache[key] = cached
        return cached

    def core_path(self, src_core: int, dst_core: int) -> tuple[int, ...]:
        """Link ids for a core-to-core transfer (empty when intra-node)."""
        return self.node_path(
            self.cluster.node_of_core(src_core),
            self.cluster.node_of_core(dst_core),
        )

    def path_latency(self, src_node: int, dst_node: int) -> float:
        """End-to-end base latency of a node-to-node message."""
        net = self.cluster.machine.network
        if src_node == dst_node:
            return self.cluster.machine.node.shm_latency
        hops = self.topology.hop_distance(src_node, dst_node)
        return net.base_latency + hops * net.per_hop_latency
