"""Simulated platform: machine specs, cluster, torus topology, link graph."""

from repro.hardware.cluster import Cluster
from repro.hardware.hetero import HeterogeneousCluster
from repro.hardware.network import NetworkModel
from repro.hardware.spec import (
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    generic_multicore,
    jaguar_xt5,
)
from repro.hardware.torus import TorusTopology, balanced_dims

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "MachineSpec",
    "jaguar_xt5",
    "generic_multicore",
    "Cluster",
    "HeterogeneousCluster",
    "TorusTopology",
    "balanced_dims",
    "NetworkModel",
]
