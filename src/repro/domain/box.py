"""n-dimensional half-open bounding boxes.

A :class:`Box` is the geometric descriptor used throughout the framework: the
paper's CoDS operators take "a simple geometric descriptor, for example a
bounding box (i.e. ``<0,0,0; 10,10,20>``)". We use half-open bounds
``[lo, hi)`` per dimension, which compose cleanly with interval sets and
numpy index arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.domain.intervals import IntervalSet
from repro.errors import DomainError

__all__ = ["Box"]


@dataclass(frozen=True, slots=True)
class Box:
    """A half-open axis-aligned box: ``lo[d] <= x[d] < hi[d]`` in every dim.

    Boxes are immutable and hashable so they can key caches (e.g. the
    communication-schedule cache).
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        lo = tuple(int(v) for v in self.lo)
        hi = tuple(int(v) for v in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != len(hi):
            raise DomainError(f"lo/hi rank mismatch: {len(lo)} vs {len(hi)}")
        if len(lo) == 0:
            raise DomainError("box must have at least one dimension")
        if any(h < l for l, h in zip(lo, hi)):
            raise DomainError(f"box has hi < lo: lo={lo} hi={hi}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_extents(cls, extents: Sequence[int]) -> "Box":
        """Box anchored at the origin with the given per-dim sizes."""
        ext = tuple(int(e) for e in extents)
        return cls(lo=(0,) * len(ext), hi=ext)

    @classmethod
    def from_corners(cls, corners: str) -> "Box":
        """Parse the paper's ``<l0,l1,...; h0,h1,...>`` descriptor syntax.

        The paper's descriptors use *inclusive* upper corners
        (``<0,0,0; 10,10,20>`` spans 11x11x21 cells); we convert to half-open.
        """
        text = corners.strip()
        if text.startswith("<") and text.endswith(">"):
            text = text[1:-1]
        parts = text.split(";")
        if len(parts) != 2:
            raise DomainError(f"expected '<lo...; hi...>' descriptor, got {corners!r}")
        try:
            lo = tuple(int(v) for v in parts[0].split(",") if v.strip())
            hi_incl = tuple(int(v) for v in parts[1].split(",") if v.strip())
        except ValueError as exc:
            raise DomainError(f"non-integer corner in {corners!r}") from exc
        return cls(lo=lo, hi=tuple(h + 1 for h in hi_incl))

    # -- accessors ----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        v = 1
        for l, h in zip(self.lo, self.hi):
            v *= h - l
        return v

    @property
    def is_empty(self) -> bool:
        return any(h <= l for l, h in zip(self.lo, self.hi))

    def side(self, dim: int) -> tuple[int, int]:
        """The ``[lo, hi)`` interval along one dimension."""
        return (self.lo[dim], self.hi[dim])

    def to_corners(self) -> str:
        """Render in the paper's inclusive ``<lo...; hi...>`` syntax."""
        lo = ",".join(str(v) for v in self.lo)
        hi = ",".join(str(v - 1) for v in self.hi)
        return f"<{lo};{hi}>"

    def __repr__(self) -> str:
        return f"Box(lo={self.lo}, hi={self.hi})"

    # -- geometry -----------------------------------------------------------

    def _check_rank(self, other: "Box") -> None:
        if self.ndim != other.ndim:
            raise DomainError(f"rank mismatch: {self.ndim} vs {other.ndim}")

    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise DomainError(f"point rank {len(point)} != box rank {self.ndim}")
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    def contains_box(self, other: "Box") -> bool:
        self._check_rank(other)
        if other.is_empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersects(self, other: "Box") -> bool:
        self._check_rank(other)
        return all(
            max(sl, ol) < min(sh, oh)
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or ``None`` if the boxes are disjoint."""
        self._check_rank(other)
        lo = tuple(max(sl, ol) for sl, ol in zip(self.lo, other.lo))
        hi = tuple(min(sh, oh) for sh, oh in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo=lo, hi=hi)

    def intersection_volume(self, other: "Box") -> int:
        self._check_rank(other)
        v = 1
        for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            length = min(sh, oh) - max(sl, ol)
            if length <= 0:
                return 0
            v *= length
        return v

    def subtract(self, other: "Box") -> list["Box"]:
        """``self`` minus ``other`` as a list of disjoint boxes.

        Standard axis-sweep decomposition: peel slabs off each dimension in
        turn; at most ``2 * ndim`` result boxes.
        """
        self._check_rank(other)
        inter = self.intersection(other)
        if inter is None:
            return [] if self.is_empty else [self]
        out: list[Box] = []
        lo = list(self.lo)
        hi = list(self.hi)
        for d in range(self.ndim):
            if lo[d] < inter.lo[d]:
                out.append(Box(lo=tuple(lo[:d] + [lo[d]] + lo[d + 1:]),
                               hi=tuple(hi[:d] + [inter.lo[d]] + hi[d + 1:])))
            if inter.hi[d] < hi[d]:
                out.append(Box(lo=tuple(lo[:d] + [inter.hi[d]] + lo[d + 1:]),
                               hi=tuple(hi[:d] + [hi[d]] + hi[d + 1:])))
            lo[d], hi[d] = inter.lo[d], inter.hi[d]
        return [b for b in out if not b.is_empty]

    def union_bound(self, other: "Box") -> "Box":
        """Smallest box containing both (not a set union)."""
        self._check_rank(other)
        return Box(
            lo=tuple(min(sl, ol) for sl, ol in zip(self.lo, other.lo)),
            hi=tuple(max(sh, oh) for sh, oh in zip(self.hi, other.hi)),
        )

    def translate(self, offset: Sequence[int]) -> "Box":
        if len(offset) != self.ndim:
            raise DomainError("offset rank mismatch")
        return Box(
            lo=tuple(l + o for l, o in zip(self.lo, offset)),
            hi=tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def clip(self, bound: "Box") -> "Box | None":
        """Alias of :meth:`intersection`, reads better at call sites."""
        return self.intersection(bound)

    def expand(self, margin: int, bound: "Box | None" = None) -> "Box":
        """Grow by ``margin`` cells on every side, optionally clipped."""
        grown = Box(
            lo=tuple(l - margin for l in self.lo),
            hi=tuple(h + margin for h in self.hi),
        )
        if bound is None:
            return grown
        clipped = grown.intersection(bound)
        if clipped is None:
            raise DomainError(f"expanded box {grown} does not meet bound {bound}")
        return clipped

    # -- interval-set interop ------------------------------------------------

    def interval_sets(self) -> tuple[IntervalSet, ...]:
        """Per-dimension interval sets (each a single interval)."""
        return tuple(IntervalSet.single(l, h) for l, h in zip(self.lo, self.hi))

    @staticmethod
    def product_volume(sets: Iterable[IntervalSet]) -> int:
        """Volume of a Cartesian product of per-dimension interval sets."""
        v = 1
        for s in sets:
            v *= s.measure
            if v == 0:
                return 0
        return v

    def corners_iter(self) -> Iterator[tuple[int, ...]]:
        """All 2^ndim corner points (hi corners are inclusive cell coords)."""
        def rec(d: int, acc: list[int]) -> Iterator[tuple[int, ...]]:
            if d == self.ndim:
                yield tuple(acc)
                return
            for v in (self.lo[d], self.hi[d] - 1):
                acc.append(v)
                yield from rec(d + 1, acc)
                acc.pop()
        if self.is_empty:
            return iter(())
        return rec(0, [])
