"""Sorted disjoint integer interval sets.

An :class:`IntervalSet` represents a subset of the integers as a union of
half-open intervals ``[lo, hi)``. It is the 1-D building block for data
decompositions: a task's assignment along one dimension of the domain is an
interval set (a single interval for a blocked distribution, a strided union
for cyclic / block-cyclic distributions).

Keeping everything at interval granularity means overlap volumes between two
tasks are products of per-dimension intersection *measures* — cells are never
enumerated, so cyclic distributions over large domains stay cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DomainError

__all__ = ["IntervalSet"]

# Memo for intersection measures of large interval-set pairs (see
# IntervalSet.intersection_measure). Key: the pair ordered by size.
_MEASURE_MEMO: dict[tuple["IntervalSet", "IntervalSet"], int] = {}
_MEASURE_MEMO_CAP = 1 << 20


def _normalize(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort, drop empties, and coalesce touching/overlapping intervals."""
    cleaned = [(int(lo), int(hi)) for lo, hi in pairs if hi > lo]
    cleaned.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1]:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


class IntervalSet:
    """An immutable union of half-open integer intervals ``[lo, hi)``.

    Construction normalizes the input: empty intervals are dropped and
    overlapping or adjacent intervals are merged, so two interval sets covering
    the same integers always compare equal.
    """

    __slots__ = ("_ivals", "_hash")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self._ivals: tuple[tuple[int, int], ...] = tuple(_normalize(intervals))
        self._hash: int | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def single(cls, lo: int, hi: int) -> "IntervalSet":
        """The single interval ``[lo, hi)`` (empty if ``hi <= lo``)."""
        return cls(((lo, hi),))

    @classmethod
    def strided(
        cls, start: int, block: int, stride: int, domain_hi: int
    ) -> "IntervalSet":
        """Blocks of length ``block`` starting at ``start``, every ``stride``,
        clipped to ``[0, domain_hi)``.

        This is the shape produced by cyclic (``block == 1``) and block-cyclic
        distributions along one dimension.
        """
        if block <= 0:
            raise DomainError(f"strided block must be positive, got {block}")
        if stride <= 0:
            raise DomainError(f"stride must be positive, got {stride}")
        if stride < block:
            raise DomainError(
                f"stride ({stride}) must be >= block ({block}); blocks may not overlap"
            )
        pairs = []
        lo = start
        while lo < domain_hi:
            if lo + block > lo:  # guard is trivially true; kept for clarity
                pairs.append((max(lo, 0), min(lo + block, domain_hi)))
            lo += stride
        return cls(pairs)

    # -- basic accessors ---------------------------------------------------

    @property
    def intervals(self) -> tuple[tuple[int, int], ...]:
        return self._ivals

    @property
    def measure(self) -> int:
        """Total number of integers covered."""
        return sum(hi - lo for lo, hi in self._ivals)

    @property
    def span(self) -> tuple[int, int]:
        """Tightest single interval ``[lo, hi)`` covering the set.

        Raises :class:`DomainError` on an empty set.
        """
        if not self._ivals:
            raise DomainError("empty interval set has no span")
        return (self._ivals[0][0], self._ivals[-1][1])

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __len__(self) -> int:
        return len(self._ivals)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._ivals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        # Cached: regular decompositions reuse a handful of interval sets in
        # millions of overlap computations.
        if self._hash is None:
            self._hash = hash(self._ivals)
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"[{lo},{hi})" for lo, hi in self._ivals)
        return f"IntervalSet({inner})"

    # -- membership --------------------------------------------------------

    def contains(self, x: int) -> bool:
        """True if integer ``x`` is covered (binary search)."""
        ivals = self._ivals
        lo_i, hi_i = 0, len(ivals)
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            lo, hi = ivals[mid]
            if x < lo:
                hi_i = mid
            elif x >= hi:
                lo_i = mid + 1
            else:
                return True
        return False

    def __contains__(self, x: int) -> bool:
        return self.contains(x)

    # -- set algebra (linear merges over sorted interval lists) -------------

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        a, b = self._ivals, other._ivals
        i = j = 0
        out: list[tuple[int, int]] = []
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                out.append((lo, hi))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        result = IntervalSet.__new__(IntervalSet)
        result._ivals = tuple(out)  # already sorted & disjoint
        result._hash = None
        return result

    def intersection_measure(self, other: "IntervalSet") -> int:
        """``self.intersection(other).measure`` without building the result.

        Results for large operand pairs are memoized: regular decompositions
        draw their per-dimension sets from a small population, so the same
        pairs recur millions of times in comm-graph and schedule computation.
        """
        a, b = self._ivals, other._ivals
        if len(a) + len(b) > 16:
            key = (self, other) if len(a) <= len(b) else (other, self)
            cached = _MEASURE_MEMO.get(key)
            if cached is not None:
                return cached
            result = self._measure_scan(a, b)
            if len(_MEASURE_MEMO) >= _MEASURE_MEMO_CAP:
                _MEASURE_MEMO.clear()
            _MEASURE_MEMO[key] = result
            return result
        return self._measure_scan(a, b)

    @staticmethod
    def _measure_scan(
        a: tuple[tuple[int, int], ...], b: tuple[tuple[int, int], ...]
    ) -> int:
        if len(a) + len(b) > 64:
            return IntervalSet._intersection_measure_vec(a, b)
        i = j = 0
        total = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total

    @staticmethod
    def _intersection_measure_vec(
        a: tuple[tuple[int, int], ...], b: tuple[tuple[int, int], ...]
    ) -> int:
        """Event-sweep intersection measure, vectorized for large sets.

        Each set is internally disjoint, so at any point the coverage depth
        is 0..2; the intersection is exactly the length where depth == 2.
        """
        if not a or not b:
            return 0
        arr_a = np.asarray(a, dtype=np.int64)
        arr_b = np.asarray(b, dtype=np.int64)
        points = np.concatenate([arr_a[:, 0], arr_a[:, 1], arr_b[:, 0], arr_b[:, 1]])
        deltas = np.concatenate([
            np.ones(len(a), dtype=np.int64), -np.ones(len(a), dtype=np.int64),
            np.ones(len(b), dtype=np.int64), -np.ones(len(b), dtype=np.int64),
        ])
        order = np.argsort(points, kind="stable")
        pts = points[order]
        depth = np.cumsum(deltas[order])
        # Count closing events before opening ones at equal points: sorting is
        # by point only, so within a tie the depth may transiently dip — but
        # segment lengths between equal points are zero, so it cannot affect
        # the sum.
        seg = np.diff(pts)
        return int(np.sum(seg[depth[:-1] == 2]))

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._ivals + other._ivals)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Integers in ``self`` but not in ``other``."""
        out: list[tuple[int, int]] = []
        b = other._ivals
        j = 0
        for lo, hi in self._ivals:
            cur = lo
            while j < len(b) and b[j][1] <= cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] < hi:
                blo, bhi = b[k]
                if blo > cur:
                    out.append((cur, blo))
                cur = max(cur, bhi)
                if cur >= hi:
                    break
                k += 1
            if cur < hi:
                out.append((cur, hi))
        result = IntervalSet.__new__(IntervalSet)
        result._ivals = tuple(out)
        result._hash = None
        return result

    def isdisjoint(self, other: "IntervalSet") -> bool:
        return self.intersection_measure(other) == 0

    def issubset(self, other: "IntervalSet") -> bool:
        return self.intersection_measure(other) == self.measure

    # -- numpy interop -----------------------------------------------------

    def to_array(self) -> np.ndarray:
        """All covered integers as a 1-D array (small sets only — for tests)."""
        if not self._ivals:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(lo, hi, dtype=np.int64) for lo, hi in self._ivals])

    @classmethod
    def from_array(cls, values: Sequence[int] | np.ndarray) -> "IntervalSet":
        """Build from a collection of integers (e.g. test oracles)."""
        arr = np.unique(np.asarray(values, dtype=np.int64))
        if arr.size == 0:
            return cls.empty()
        breaks = np.flatnonzero(np.diff(arr) != 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [arr.size - 1]))
        return cls((int(arr[s]), int(arr[e]) + 1) for s, e in zip(starts, ends))
