"""Regular multidimensional data decompositions.

The paper (§III-B) supports data-parallel applications over regular
multidimensional domains whose decomposition is given by a domain size
``(s1..sn)``, a process layout ``(p1..pn)``, a distribution type and a block
size. Three distribution types are supported: **blocked**, **cyclic** and
**block-cyclic** — the same triple the evaluation sweeps in Figs 8–9.

A task's assignment is the Cartesian product of per-dimension
:class:`~repro.domain.intervals.IntervalSet` s, so overlap volumes between
tasks of two different decompositions are products of per-dimension
intersection measures. Nothing ever enumerates cells.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.domain.box import Box
from repro.domain.intervals import IntervalSet
from repro.errors import DecompositionError

__all__ = ["DistType", "DimDistribution", "Decomposition"]


class DistType(enum.Enum):
    """Per-dimension data distribution type."""

    BLOCKED = "blocked"
    CYCLIC = "cyclic"
    BLOCK_CYCLIC = "block_cyclic"

    @classmethod
    def parse(cls, value: "DistType | str") -> "DistType":
        if isinstance(value, DistType):
            return value
        key = str(value).strip().lower().replace("-", "_")
        aliases = {
            "blocked": cls.BLOCKED,
            "block": cls.BLOCKED,
            "cyclic": cls.CYCLIC,
            "block_cyclic": cls.BLOCK_CYCLIC,
            "blockcyclic": cls.BLOCK_CYCLIC,
        }
        try:
            return aliases[key]
        except KeyError:
            raise DecompositionError(
                f"unknown distribution type {value!r}; "
                f"expected one of {sorted(set(aliases))}"
            ) from None


@dataclass(frozen=True, slots=True)
class DimDistribution:
    """Ownership pattern along a single dimension.

    ``size`` domain extent, ``nprocs`` process-grid extent along this
    dimension, ``dist`` the distribution type, ``block`` the block size
    (ignored for BLOCKED; forced to 1 for CYCLIC).
    """

    size: int
    nprocs: int
    dist: DistType
    block: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise DecompositionError(f"dimension size must be positive, got {self.size}")
        if self.nprocs <= 0:
            raise DecompositionError(f"process count must be positive, got {self.nprocs}")
        if self.block <= 0:
            raise DecompositionError(f"block size must be positive, got {self.block}")
        if self.dist is DistType.CYCLIC and self.block != 1:
            raise DecompositionError("CYCLIC distribution requires block == 1")

    def owned(self, coord: int) -> IntervalSet:
        """Interval set owned by process grid coordinate ``coord``."""
        if not 0 <= coord < self.nprocs:
            raise DecompositionError(
                f"coordinate {coord} out of range [0, {self.nprocs})"
            )
        if self.dist is DistType.BLOCKED:
            base, extra = divmod(self.size, self.nprocs)
            # Balanced blocked split: the first `extra` coords get one more.
            lo = coord * base + min(coord, extra)
            length = base + (1 if coord < extra else 0)
            return IntervalSet.single(lo, lo + length)
        if self.dist is DistType.CYCLIC:
            return IntervalSet.strided(coord, 1, self.nprocs, self.size)
        # BLOCK_CYCLIC: blocks of `block` dealt round-robin across coords.
        return IntervalSet.strided(
            coord * self.block, self.block, self.nprocs * self.block, self.size
        )

    def owner_coords(self, interval: IntervalSet) -> list[int]:
        """Grid coordinates whose ownership intersects ``interval``."""
        if not interval:
            return []
        return [
            c for c in range(self.nprocs)
            if self.owned(c).intersection_measure(interval) > 0
        ]


class Decomposition:
    """A full n-D decomposition: domain extents, process grid, per-dim dists.

    Ranks are row-major over the process grid (last dimension fastest),
    matching the convention of ``numpy.unravel_index`` and MPI Cartesian
    communicators with default ordering.
    """

    __slots__ = ("extents", "layout", "dists", "blocks", "_dim_dists", "_owned_cache")

    def __init__(
        self,
        extents: Sequence[int],
        layout: Sequence[int],
        dists: "DistType | str | Sequence[DistType | str]",
        blocks: "int | Sequence[int]" = 1,
    ) -> None:
        self.extents = tuple(int(s) for s in extents)
        self.layout = tuple(int(p) for p in layout)
        ndim = len(self.extents)
        if ndim == 0:
            raise DecompositionError("decomposition needs at least one dimension")
        if len(self.layout) != ndim:
            raise DecompositionError(
                f"layout rank {len(self.layout)} != domain rank {ndim}"
            )
        if isinstance(dists, (DistType, str)):
            dists = [dists] * ndim
        dist_list = [DistType.parse(d) for d in dists]
        if len(dist_list) != ndim:
            raise DecompositionError(f"dists rank {len(dist_list)} != domain rank {ndim}")
        if isinstance(blocks, int):
            blocks = [blocks] * ndim
        block_list = [int(b) for b in blocks]
        if len(block_list) != ndim:
            raise DecompositionError(f"blocks rank {len(block_list)} != domain rank {ndim}")
        # CYCLIC dimensions always use block 1 regardless of the shared default.
        block_list = [
            1 if d is DistType.CYCLIC else b for d, b in zip(dist_list, block_list)
        ]
        self.dists = tuple(dist_list)
        self.blocks = tuple(block_list)
        self._dim_dists = tuple(
            DimDistribution(size=s, nprocs=p, dist=d, block=b)
            for s, p, d, b in zip(self.extents, self.layout, dist_list, block_list)
        )
        self._owned_cache: dict[int, tuple[IntervalSet, ...]] = {}

    # -- shape --------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.extents)

    @property
    def nprocs(self) -> int:
        n = 1
        for p in self.layout:
            n *= p
        return n

    @property
    def domain(self) -> Box:
        return Box.from_extents(self.extents)

    def __repr__(self) -> str:
        dists = ",".join(d.value for d in self.dists)
        return (
            f"Decomposition(extents={self.extents}, layout={self.layout}, "
            f"dists=[{dists}], blocks={self.blocks})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Decomposition):
            return NotImplemented
        return (
            self.extents == other.extents
            and self.layout == other.layout
            and self.dists == other.dists
            and self.blocks == other.blocks
        )

    def __hash__(self) -> int:
        return hash((self.extents, self.layout, self.dists, self.blocks))

    # -- rank <-> grid coordinates -------------------------------------------

    def rank_to_coords(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.nprocs:
            raise DecompositionError(f"rank {rank} out of range [0, {self.nprocs})")
        coords = []
        for p in reversed(self.layout):
            coords.append(rank % p)
            rank //= p
        return tuple(reversed(coords))

    def coords_to_rank(self, coords: Sequence[int]) -> int:
        if len(coords) != self.ndim:
            raise DecompositionError("coords rank mismatch")
        rank = 0
        for c, p in zip(coords, self.layout):
            if not 0 <= c < p:
                raise DecompositionError(f"coordinate {c} out of range [0, {p})")
            rank = rank * p + c
        return rank

    def ranks(self) -> range:
        return range(self.nprocs)

    # -- ownership -----------------------------------------------------------

    def task_intervals(self, rank: int) -> tuple[IntervalSet, ...]:
        """Per-dimension interval sets owned by ``rank`` (cached)."""
        cached = self._owned_cache.get(rank)
        if cached is None:
            coords = self.rank_to_coords(rank)
            cached = tuple(dd.owned(c) for dd, c in zip(self._dim_dists, coords))
            self._owned_cache[rank] = cached
        return cached

    def task_volume(self, rank: int) -> int:
        return Box.product_volume(self.task_intervals(rank))

    def task_bounding_box(self, rank: int) -> Box:
        """Tightest box around the task's (possibly strided) assignment.

        Empty assignments (more processes than elements) yield a zero-volume
        box anchored at the origin.
        """
        sets = self.task_intervals(rank)
        if any(not s for s in sets):
            return Box(lo=(0,) * self.ndim, hi=(0,) * self.ndim)
        spans = [s.span for s in sets]
        return Box(lo=tuple(lo for lo, _ in spans), hi=tuple(hi for _, hi in spans))

    def task_boxes(self, rank: int, limit: int | None = None) -> list[Box]:
        """Explicit disjoint boxes of the task's assignment.

        For BLOCKED this is a single box; for strided distributions the count
        is the product of per-dimension interval counts. ``limit`` guards
        against accidental explosion (raises if exceeded).
        """
        sets = self.task_intervals(rank)
        count = 1
        for s in sets:
            count *= max(len(s), 0)
        if count == 0:
            return []
        if limit is not None and count > limit:
            raise DecompositionError(
                f"task {rank} decomposes into {count} boxes (> limit {limit}); "
                "use interval products instead of explicit boxes"
            )
        out = []
        for combo in itertools.product(*(s.intervals for s in sets)):
            out.append(Box(lo=tuple(lo for lo, _ in combo), hi=tuple(hi for _, hi in combo)))
        return out

    # -- overlaps -------------------------------------------------------------

    def _check_compat(self, other: "Decomposition") -> None:
        if self.extents != other.extents:
            raise DecompositionError(
                f"decompositions cover different domains: {self.extents} vs {other.extents}"
            )

    def overlap_volume(
        self,
        rank: int,
        other: "Decomposition",
        other_rank: int,
        region: Box | None = None,
    ) -> int:
        """Cells owned by ``self``'s task and ``other``'s task (within ``region``)."""
        self._check_compat(other)
        mine = self.task_intervals(rank)
        theirs = other.task_intervals(other_rank)
        total = 1
        for d in range(self.ndim):
            inter = mine[d].intersection(theirs[d])
            if region is not None:
                inter = inter.intersection(IntervalSet.single(*region.side(d)))
            m = inter.measure
            if m == 0:
                return 0
            total *= m
        return total

    def region_volume(self, rank: int, region: Box) -> int:
        """Cells of ``region`` owned by this task."""
        mine = self.task_intervals(rank)
        total = 1
        for d in range(self.ndim):
            m = mine[d].intersection_measure(IntervalSet.single(*region.side(d)))
            if m == 0:
                return 0
            total *= m
        return total

    def overlapping_ranks(
        self,
        other: "Decomposition",
        rank: int,
        region: Box | None = None,
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(other_rank, overlap_cells)`` for every task of ``other``
        sharing cells with ``self``'s ``rank`` (optionally inside ``region``).

        Candidates are found per dimension (ownership is a per-dim product),
        so the cost is the product of per-dimension candidate counts rather
        than ``other.nprocs``.
        """
        self._check_compat(other)
        mine = list(self.task_intervals(rank))
        if region is not None:
            mine = [
                s.intersection(IntervalSet.single(*region.side(d)))
                for d, s in enumerate(mine)
            ]
        if any(not s for s in mine):
            return
        # Per-dim candidate coordinates of `other` and their overlap measures.
        per_dim: list[list[tuple[int, int]]] = []
        for d in range(self.ndim):
            dd = other._dim_dists[d]
            cands = []
            for c in range(dd.nprocs):
                m = dd.owned(c).intersection_measure(mine[d])
                if m > 0:
                    cands.append((c, m))
            if not cands:
                return
            per_dim.append(cands)
        for combo in itertools.product(*per_dim):
            cells = 1
            coords = []
            for c, m in combo:
                cells *= m
                coords.append(c)
            yield other.coords_to_rank(coords), cells

    def owner_ranks_of_box(self, box: Box) -> Iterator[tuple[int, int]]:
        """Yield ``(rank, overlap_cells)`` for tasks owning cells of ``box``."""
        if box.ndim != self.ndim:
            raise DecompositionError("box rank mismatch")
        per_dim: list[list[tuple[int, int]]] = []
        for d in range(self.ndim):
            dd = self._dim_dists[d]
            side = IntervalSet.single(*box.side(d))
            cands = [
                (c, dd.owned(c).intersection_measure(side))
                for c in range(dd.nprocs)
            ]
            cands = [(c, m) for c, m in cands if m > 0]
            if not cands:
                return
            per_dim.append(cands)
        for combo in itertools.product(*per_dim):
            cells = 1
            coords = []
            for c, m in combo:
                cells *= m
                coords.append(c)
            yield self.coords_to_rank(coords), cells

    # -- validation helpers (used heavily by tests) ----------------------------

    def covers_domain_exactly(self) -> bool:
        """True if every cell is owned by exactly one task (per-dim check)."""
        for dd in self._dim_dists:
            union = IntervalSet.empty()
            total = 0
            for c in range(dd.nprocs):
                owned = dd.owned(c)
                total += owned.measure
                union = union.union(owned)
            if total != dd.size or union != IntervalSet.single(0, dd.size):
                return False
        return True
