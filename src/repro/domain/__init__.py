"""Data-domain substrate: boxes, interval sets, and decompositions."""

from repro.domain.box import Box
from repro.domain.decomposition import Decomposition, DimDistribution, DistType
from repro.domain.descriptor import DecompositionDescriptor
from repro.domain.intervals import IntervalSet

__all__ = [
    "Box",
    "IntervalSet",
    "DistType",
    "DimDistribution",
    "Decomposition",
    "DecompositionDescriptor",
]
