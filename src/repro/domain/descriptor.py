"""User-facing decomposition descriptors (paper §III-B).

The framework "requires users to specify the decomposition of the application
data domain ... expressed in terms of a domain size, process layout, data
distribution type, and data block size". :class:`DecompositionDescriptor`
captures exactly that quadruple, validates it, and builds the internal
:class:`~repro.domain.decomposition.Decomposition`.

Descriptors can also round-trip through a compact ``key=value`` string form so
they can live in workflow description files next to the DAG (see
:mod:`repro.workflow.parser`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.domain.decomposition import Decomposition, DistType
from repro.errors import DecompositionError

__all__ = ["DecompositionDescriptor"]


def _parse_tuple(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError as exc:
        raise DecompositionError(f"expected comma-separated ints, got {text!r}") from exc


@dataclass(frozen=True)
class DecompositionDescriptor:
    """The (size, layout, distribution, block) quadruple of paper §III-B.

    ``dists`` may be a single type applied to every dimension or one entry per
    dimension; same for ``blocks``.
    """

    domain_size: tuple[int, ...]
    process_layout: tuple[int, ...]
    dists: tuple[DistType, ...] = field(default=())
    blocks: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        size = tuple(int(s) for s in self.domain_size)
        layout = tuple(int(p) for p in self.process_layout)
        object.__setattr__(self, "domain_size", size)
        object.__setattr__(self, "process_layout", layout)
        ndim = len(size)
        if ndim == 0:
            raise DecompositionError("descriptor needs a non-empty domain size")
        if len(layout) != ndim:
            raise DecompositionError(
                f"process layout rank {len(layout)} != domain rank {ndim}"
            )
        dists = self.dists or (DistType.BLOCKED,)
        if isinstance(dists, (str, DistType)):
            dists = (dists,)
        dists = tuple(DistType.parse(d) for d in dists)
        if len(dists) == 1:
            dists = dists * ndim
        if len(dists) != ndim:
            raise DecompositionError(f"dists rank {len(dists)} != domain rank {ndim}")
        object.__setattr__(self, "dists", dists)
        blocks = self.blocks or (1,)
        if isinstance(blocks, int):
            blocks = (blocks,)
        blocks = tuple(int(b) for b in blocks)
        if len(blocks) == 1:
            blocks = blocks * ndim
        if len(blocks) != ndim:
            raise DecompositionError(f"blocks rank {len(blocks)} != domain rank {ndim}")
        object.__setattr__(self, "blocks", blocks)

    # -- conveniences ---------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.domain_size)

    @property
    def ntasks(self) -> int:
        n = 1
        for p in self.process_layout:
            n *= p
        return n

    def build(self) -> Decomposition:
        """Materialize the internal decomposition object."""
        return Decomposition(
            extents=self.domain_size,
            layout=self.process_layout,
            dists=self.dists,
            blocks=self.blocks,
        )

    # -- string / mapping round-trips ------------------------------------------

    def to_string(self) -> str:
        parts = [
            "size=" + ",".join(str(v) for v in self.domain_size),
            "layout=" + ",".join(str(v) for v in self.process_layout),
            "dist=" + ";".join(d.value for d in self.dists),
            "block=" + ",".join(str(v) for v in self.blocks),
        ]
        return " ".join(parts)

    @classmethod
    def from_string(cls, text: str) -> "DecompositionDescriptor":
        """Parse the ``size=... layout=... dist=... block=...`` form."""
        fields: dict[str, str] = {}
        for token in text.split():
            if "=" not in token:
                raise DecompositionError(f"malformed descriptor token {token!r}")
            key, _, value = token.partition("=")
            fields[key.strip().lower()] = value.strip()
        missing = {"size", "layout"} - fields.keys()
        if missing:
            raise DecompositionError(f"descriptor missing fields: {sorted(missing)}")
        dists: tuple[DistType, ...] = ()
        if "dist" in fields:
            dists = tuple(DistType.parse(d) for d in fields["dist"].split(";") if d)
        blocks: tuple[int, ...] = ()
        if "block" in fields:
            blocks = _parse_tuple(fields["block"])
        return cls(
            domain_size=_parse_tuple(fields["size"]),
            process_layout=_parse_tuple(fields["layout"]),
            dists=dists,
            blocks=blocks,
        )

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "DecompositionDescriptor":
        """Build from a dict, e.g. loaded from JSON scenario configs."""
        try:
            size = data["domain_size"]
            layout = data["process_layout"]
        except KeyError as exc:
            raise DecompositionError(f"descriptor mapping missing {exc}") from exc
        dists = data.get("dists", ())
        if isinstance(dists, (str, DistType)):
            dists = (dists,)
        blocks = data.get("blocks", ())
        if isinstance(blocks, int):
            blocks = (blocks,)
        return cls(
            domain_size=tuple(size),  # type: ignore[arg-type]
            process_layout=tuple(layout),  # type: ignore[arg-type]
            dists=tuple(DistType.parse(d) for d in dists),  # type: ignore[union-attr]
            blocks=tuple(int(b) for b in blocks),  # type: ignore[union-attr]
        )

    @classmethod
    def uniform(
        cls,
        domain_size: Sequence[int],
        process_layout: Sequence[int],
        dist: "DistType | str" = DistType.BLOCKED,
        block: int = 1,
    ) -> "DecompositionDescriptor":
        """Shorthand: one distribution type and block size for every dim."""
        ndim = len(tuple(domain_size))
        return cls(
            domain_size=tuple(domain_size),
            process_layout=tuple(process_layout),
            dists=(DistType.parse(dist),) * ndim,
            blocks=(block,) * ndim,
        )
