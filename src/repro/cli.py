"""Command-line interface: run the paper's scenarios and print the figures.

Examples::

    repro-insitu concurrent --mapper data-centric
    repro-insitu sequential --mapper round-robin --stencil 2 --time
    repro-insitu compare --scenario concurrent --dist blocked
    repro-insitu dag path/to/workflow.dag
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from repro.analysis.experiments import DATA_CENTRIC, ROUND_ROBIN, run_scenario
from repro.analysis.report import format_table, mib, ms, reduction
from repro.errors import FaultPlanError
from repro.faults.plan import (
    DataCorruption,
    DuplicateDelivery,
    FaultPlan,
    MemoryPressure,
    NetworkPartition,
    SlowNode,
)
from repro.apps.scenarios import (
    paper_concurrent,
    paper_sequential,
    small_concurrent,
    small_sequential,
)
from repro.transport.message import TransferKind
from repro.workflow.parser import build_workflow, parse_dag, write_dag

__all__ = ["main", "build_parser"]


# -- argparse type validators (reject bad values at parse time) ----------------


def _probability(text: str) -> float:
    try:
        p = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a probability, got {text!r}")
    if not 0.0 <= p < 1.0:
        raise argparse.ArgumentTypeError(
            f"probability must be in [0, 1), got {text}"
        )
    return p


def _hedge_factor(text: str) -> float:
    try:
        f = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if f <= 1.0:
        raise argparse.ArgumentTypeError(
            f"hedge factor must be > 1 (a multiple of the expected pull "
            f"time), got {text}"
        )
    return f


def _speculation_threshold(text: str) -> float:
    try:
        f = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if f < 1.0:
        raise argparse.ArgumentTypeError(
            f"speculation threshold must be >= 1 (a multiple of the peer "
            f"median), got {text}"
        )
    return f


def _positive_seconds(text: str) -> float:
    try:
        s = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected seconds, got {text!r}")
    if s <= 0:
        raise argparse.ArgumentTypeError(f"period must be positive, got {text}")
    return s


def _writable_path(text: str) -> str:
    """An output path whose parent directory exists and is writable."""
    parent = os.path.dirname(os.path.abspath(text))
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"directory {parent!r} does not exist"
        )
    if not os.access(parent, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"directory {parent!r} is not writable"
        )
    if os.path.isdir(text):
        raise argparse.ArgumentTypeError(f"{text!r} is a directory")
    return text


def _slow_node_spec(text: str) -> SlowNode:
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"expected NODE:START:DURATION[:FACTOR], got {text!r}"
        )
    try:
        node = int(parts[0])
        start = float(parts[1])
        duration = float(parts[2])
        factor = float(parts[3]) if len(parts) == 4 else 2.0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NODE:START:DURATION[:FACTOR] with numeric fields, "
            f"got {text!r}"
        )
    try:
        return SlowNode(node=node, start=start, duration=duration, factor=factor)
    except FaultPlanError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _partition_spec(text: str) -> NetworkPartition:
    """``GROUP/GROUP[/...]@START:DUR[:FLAP]`` with GROUP = ``n,n,...``.

    Example: ``0,1/2,3@1.5:2.5`` cuts nodes {0,1} from {2,3} between
    t=1.5 and t=4.0; an optional trailing ``:FLAP`` makes the cut flap
    with that period inside the window.
    """
    head, sep, tail = text.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected GROUP/GROUP@START:DUR[:FLAP], got {text!r}"
        )
    try:
        groups = tuple(
            tuple(int(n) for n in grp.split(","))
            for grp in head.split("/")
        )
        window = tail.split(":")
        if len(window) not in (2, 3):
            raise ValueError
        start = float(window[0])
        duration = float(window[1])
        flap = float(window[2]) if len(window) == 3 else None
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected GROUP/GROUP@START:DUR[:FLAP] with numeric fields, "
            f"got {text!r}"
        )
    try:
        return NetworkPartition(
            start=start, duration=duration, groups=groups, flap_period=flap
        )
    except FaultPlanError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _memory_pressure_spec(text: str) -> MemoryPressure:
    """``NODE@START:DUR[:FACTOR]`` — shrink NODE's memory to FACTOR
    (default 0.5) of capacity between START and START+DUR."""
    head, sep, tail = text.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected NODE@START:DUR[:FACTOR], got {text!r}"
        )
    try:
        node = int(head)
        window = tail.split(":")
        if len(window) not in (2, 3):
            raise ValueError
        start = float(window[0])
        duration = float(window[1])
        factor = float(window[2]) if len(window) == 3 else 0.5
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NODE@START:DUR[:FACTOR] with numeric fields, "
            f"got {text!r}"
        )
    try:
        return MemoryPressure(
            node=node, start=start, duration=duration, factor=factor
        )
    except FaultPlanError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _positive_bytes(text: str) -> int:
    try:
        n = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected bytes, got {text!r}")
    if n <= 0:
        raise argparse.ArgumentTypeError(
            f"byte count must be positive, got {text}"
        )
    return n


def _watermark(text: str) -> float:
    try:
        w = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a fraction, got {text!r}")
    if not 0.0 < w <= 1.0:
        raise argparse.ArgumentTypeError(
            f"high watermark must be in (0, 1], got {text}"
        )
    return w


def _quorum(text: str) -> int:
    try:
        q = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if q < 1:
        raise argparse.ArgumentTypeError(f"quorum must be >= 1, got {text}")
    return q


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-insitu",
        description="In-situ coupled-workflow framework (IPDPS 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--mapper", choices=[DATA_CENTRIC, ROUND_ROBIN],
            default=DATA_CENTRIC, help="task-mapping strategy",
        )
        p.add_argument(
            "--scale", choices=["small", "paper"], default="small",
            help="workload scale (paper = 512+ cores, slower)",
        )
        p.add_argument(
            "--dist", default="blocked",
            help="data distribution for both apps (blocked/cyclic/block_cyclic)",
        )
        p.add_argument(
            "--stencil", type=int, default=0, metavar="N",
            help="intra-app stencil iterations to simulate",
        )
        p.add_argument(
            "--time", action="store_true",
            help="fluid-simulate transfer times (slower)",
        )
        p.add_argument(
            "--fault-plan", metavar="PATH", default=None,
            help="JSON fault plan: inject crashes/degradation deterministically",
        )
        p.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="write a Chrome trace_event JSON of the run "
                 "(open in Perfetto / chrome://tracing, or feed to trace-report)",
        )
        p.add_argument(
            "--trace-stream", action="store_true",
            help="stream trace events to --trace-out as they happen "
                 "(bounded memory: only open spans are retained)",
        )
        p.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write a JSON snapshot of the run's metrics registry",
        )
        p.add_argument(
            "--timeline-out", metavar="PATH", default=None,
            type=_writable_path,
            help="stream a utilization timeline (JSONL) of the run: "
                 "per-node-group busy cores, queue depth, resident bytes, "
                 "coupling link occupancy; render with "
                 "'repro-insitu timeline PATH'",
        )
        p.add_argument(
            "--sample-period", type=_positive_seconds, default=0.25,
            metavar="S",
            help="simulated seconds between timeline samples (default 0.25)",
        )
        p.add_argument(
            "--progress", action="store_true",
            help="report live progress (sim time, events/sec, ETA) on stderr",
        )
        p.add_argument(
            "--replication", type=int, default=1, metavar="K",
            help="store K copies of every object on K distinct nodes "
                 "(K>1 enables the resilience subsystem)",
        )
        p.add_argument(
            "--checkpoint-out", metavar="PATH", default=None,
            help="periodically checkpoint workflow + data-space state "
                 "(implies the resilience subsystem)",
        )
        p.add_argument(
            "--checkpoint-interval", type=float, default=0.25, metavar="S",
            help="simulated seconds between checkpoints (default 0.25)",
        )
        p.add_argument(
            "--restore-from", metavar="PATH", default=None,
            help="resume a previous run from its checkpoint file",
        )
        p.add_argument(
            "--heartbeat-period", type=float, default=0.05, metavar="S",
            help="failure-detector sweep period (default 0.05)",
        )
        p.add_argument(
            "--heartbeat-timeout", type=float, default=0.15, metavar="S",
            help="silence before a node is declared dead (default 0.15)",
        )
        p.add_argument(
            "--compute-seconds", type=float, default=0.0, metavar="S",
            help="simulated compute time per app (gives mid-flight faults "
                 "and checkpoints a window; default 0)",
        )
        p.add_argument(
            "--slow-node", action="append", type=_slow_node_spec, default=None,
            metavar="NODE:START:DUR[:FACTOR]",
            help="gray fault: node NODE runs FACTOR x slower (default 2) "
                 "from START for DUR simulated seconds (repeatable)",
        )
        p.add_argument(
            "--corruption", type=_probability, default=None, metavar="P",
            help="gray fault: each network delivery arrives bit-flipped with "
                 "probability P; checksum verification re-fetches from a "
                 "surviving replica",
        )
        p.add_argument(
            "--duplication", type=_probability, default=None, metavar="P",
            help="gray fault: each network delivery is replayed with "
                 "probability P; duplicates are dropped at the consumer",
        )
        p.add_argument(
            "--hedge-factor", type=_hedge_factor, default=None, metavar="X",
            help="hedge a pull with a backup from another replica holder "
                 "once it runs X times over the cost-model expected time "
                 "(X > 1; needs --replication > 1 to have alternates)",
        )
        p.add_argument(
            "--speculation-threshold", type=_speculation_threshold,
            default=None, metavar="X",
            help="speculatively re-enact an app running X times over the "
                 "median of its bundle peers on a slowed node (X >= 1)",
        )
        p.add_argument(
            "--scrub-period", type=_positive_seconds, default=None, metavar="S",
            help="re-verify replica checksums every S simulated seconds and "
                 "repair corrupt copies (enables the resilience subsystem)",
        )
        p.add_argument(
            "--partition", action="append", type=_partition_spec, default=None,
            metavar="GROUPS@START:DUR[:FLAP]",
            help="network partition: cut node GROUPS (comma-separated nodes, "
                 "'/' between islands, e.g. 0,1/2,3) from START for DUR "
                 "simulated seconds; optional FLAP period makes the cut "
                 "oscillate (repeatable)",
        )
        p.add_argument(
            "--write-quorum", type=_quorum, default=None, metavar="W",
            help="acknowledge a put only once W of the K replica holders "
                 "accepted it (needs --replication K >= W)",
        )
        p.add_argument(
            "--read-quorum", type=_quorum, default=None, metavar="R",
            help="require R reachable replica holders before serving a read "
                 "(needs --replication K >= R)",
        )
        p.add_argument(
            "--partition-deadline", type=_positive_seconds, default=None,
            metavar="S",
            help="wait out a suspected network partition for S simulated "
                 "seconds before treating the unreachable side as dead "
                 "(default: wait until it heals)",
        )
        p.add_argument(
            "--enforce-memory", action="store_true",
            help="treat per-core store capacity as a hard budget: puts over "
                 "the high watermark run the reclaim ladder (GC, replica "
                 "eviction, spill to deep memory) and block on backpressure "
                 "instead of crashing",
        )
        p.add_argument(
            "--memory-per-node", type=_positive_bytes, default=None,
            metavar="BYTES",
            help="override each node's memory budget in bytes (default: "
                 "the machine spec's per-node memory; needs "
                 "--enforce-memory)",
        )
        p.add_argument(
            "--high-watermark", type=_watermark, default=None, metavar="F",
            help="store fill fraction that triggers reclamation "
                 "(0 < F <= 1, default 0.8; needs --enforce-memory)",
        )
        p.add_argument(
            "--spill-capacity", type=_positive_bytes, default=None,
            metavar="BYTES",
            help="per-node deep-memory spill tier size in bytes "
                 "(default: unbounded; needs --enforce-memory)",
        )
        p.add_argument(
            "--memory-pressure", action="append",
            type=_memory_pressure_spec, default=None,
            metavar="NODE@START:DUR[:FACTOR]",
            help="fault: shrink node NODE's usable memory to FACTOR "
                 "(default 0.5) of capacity from START for DUR simulated "
                 "seconds (repeatable; needs --enforce-memory)",
        )
        p.add_argument(
            "--provenance-out", metavar="PATH", default=None,
            type=_writable_path,
            help="record every scheduling and recovery decision as a "
                 "cause-linked provenance ledger (JSONL); query with "
                 "'repro-insitu explain bundle <id> --ledger PATH'",
        )
        p.add_argument(
            "--runs-db", metavar="PATH", default=None,
            type=_writable_path,
            help="append this run (config hash, seed, headline metrics, "
                 "critical-path attribution) to a SQLite run registry; "
                 "inspect with 'repro-insitu runs list --db PATH'",
        )

    for name, help_ in (
        ("concurrent", "run the online-data-processing scenario (CAP1/CAP2)"),
        ("sequential", "run the climate-modeling scenario (SAP1-3)"),
    ):
        p = sub.add_parser(name, help=help_)
        add_scenario_args(p)

    p = sub.add_parser("compare", help="round-robin vs data-centric side by side")
    p.add_argument("--scenario", choices=["concurrent", "sequential"],
                   default="concurrent")
    add_scenario_args(p)

    p = sub.add_parser(
        "sweep", help="sweep distribution patterns (Figs 8-9 in one command)"
    )
    p.add_argument("--scenario", choices=["concurrent", "sequential"],
                   default="concurrent")
    p.add_argument("--scale", choices=["small", "paper"], default="small")
    p.add_argument("--time", action="store_true",
                   help="include fluid-simulated retrieval times")

    p = sub.add_parser(
        "trace-report", help="profile a --trace-out file (timeline, hot spans, ...)"
    )
    p.add_argument("trace", help="path to a Chrome trace_event JSON file")
    p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="join a --metrics-out snapshot (exact cache/transfer counters)",
    )
    p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the hot-span table (default 10)",
    )

    p = sub.add_parser(
        "timeline",
        help="render a --timeline-out file as per-node-group heat strips "
             "plus a link-occupancy summary",
    )
    p.add_argument("path", help="path to a --timeline-out JSONL file")
    p.add_argument(
        "--width", type=int, default=60, metavar="COLS",
        help="time-axis width of the heat strips (default 60)",
    )

    p = sub.add_parser(
        "perf",
        help="perf history: run the canonical Fig 8/9/16 and jaguar-scale "
             "scenarios, print critical-path attribution and events/sec, "
             "diff against the last BENCH_<n>.json",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the fresh snapshot here (conventionally BENCH_<n>.json)",
    )
    p.add_argument(
        "--dir", dest="directory", metavar="PATH", default=".",
        help="directory holding the BENCH_*.json history (default: cwd)",
    )
    p.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this canonical scenario (repeatable); "
             "fig08_concurrent, fig09_sequential, fig16_weak_scaling, "
             "jaguar_scale",
    )
    p.add_argument(
        "--label", default="", help="free-form label stored in the snapshot"
    )
    p.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when any metric regresses past its tolerance band",
    )
    p.add_argument(
        "--utilization", action="store_true",
        help="append a sampled utilization summary per scenario (separate "
             "timeline-instrumented runs; the regression profiles stay "
             "byte-identical)",
    )

    p = sub.add_parser(
        "explain",
        help="answer why-questions over a --provenance-out ledger "
             "(bundle why-chains, object history, slowest bundles)",
    )
    p.add_argument(
        "what", choices=["bundle", "object", "slowest"],
        help="query kind: a bundle's causal why-chain, an object's "
             "placement history, or the slowest completed bundles",
    )
    p.add_argument(
        "target", nargs="?", default=None,
        help="bundle id ('explain bundle') or object name "
             "('explain object')",
    )
    p.add_argument(
        "--ledger", metavar="PATH", required=True,
        help="path to a --provenance-out JSONL ledger",
    )
    p.add_argument(
        "-n", "--top", type=int, default=3, metavar="N",
        help="rows in the 'slowest' ranking (default 3)",
    )

    p = sub.add_parser(
        "runs",
        help="query a --runs-db run registry (list / show / diff)",
    )
    p.add_argument(
        "action", choices=["list", "show", "diff"],
        help="list all runs, show one run's metrics, or diff two runs "
             "metric by metric",
    )
    p.add_argument(
        "ids", nargs="*", type=int,
        help="one run id for 'show', two for 'diff'",
    )
    p.add_argument(
        "--db", metavar="PATH", required=True,
        help="path to a --runs-db SQLite registry",
    )

    p = sub.add_parser("dag", help="validate and echo a workflow description file")
    p.add_argument("path", help="path to a Listing-1 style .dag file")
    return parser


def _build(scenario_name: str, scale: str, dist: str):
    if scenario_name == "concurrent":
        if scale == "paper":
            return paper_concurrent(producer_dist=dist, consumer_dist=dist)
        return small_concurrent(producer_dist=dist, consumer_dist=dist)
    if scale == "paper":
        return paper_sequential(producer_dist=dist, consumer_dist=dist)
    return small_sequential(producer_dist=dist, consumer_dist=dist)


def _load_fault_plan(args: argparse.Namespace) -> "FaultPlan | None":
    path = getattr(args, "fault_plan", None)
    plan = FaultPlan.load(path) if path else None
    slow = tuple(getattr(args, "slow_node", None) or ())
    corruption = getattr(args, "corruption", None)
    duplication = getattr(args, "duplication", None)
    partitions = tuple(getattr(args, "partition", None) or ())
    pressure = tuple(getattr(args, "memory_pressure", None) or ())
    if (not slow and corruption is None and duplication is None
            and not partitions and not pressure):
        return plan
    if plan is None:
        plan = FaultPlan()
    # Flag-injected faults stack on top of whatever the JSON plan
    # declares; the probabilities become wildcard (any-link) faults.
    return dataclasses.replace(
        plan,
        slow_nodes=plan.slow_nodes + slow,
        corruptions=plan.corruptions + (
            (DataCorruption(probability=corruption),)
            if corruption else ()
        ),
        duplications=plan.duplications + (
            (DuplicateDelivery(probability=duplication),)
            if duplication else ()
        ),
        partitions=plan.partitions + partitions,
        memory_pressure=plan.memory_pressure + pressure,
    )


def _print_fault_summary(result) -> None:
    injector = result.injector
    if injector is None:
        return
    print()
    print(f"fault injection (seed={injector.plan.seed}): "
          f"{injector.retries_issued} retries issued, "
          f"{len(injector.crashed_nodes())} node(s) crashed")
    trace = injector.format_trace()
    if trace:
        print(trace)


def _make_resilience(args: argparse.Namespace):
    """A ResilienceConfig when any resilience flag departs from defaults."""
    if (getattr(args, "replication", 1) <= 1
            and not getattr(args, "checkpoint_out", None)
            and not getattr(args, "restore_from", None)
            and getattr(args, "scrub_period", None) is None
            and getattr(args, "partition_deadline", None) is None):
        return None
    from repro.resilience.manager import ResilienceConfig

    return ResilienceConfig(
        replication=args.replication,
        heartbeat_period=args.heartbeat_period,
        heartbeat_timeout=args.heartbeat_timeout,
        checkpoint_path=args.checkpoint_out,
        checkpoint_interval=args.checkpoint_interval,
        restore_from=args.restore_from,
        scrub_period=getattr(args, "scrub_period", None),
        partition_deadline=getattr(args, "partition_deadline", None),
    )


def _print_resilience_summary(result) -> None:
    if result.resilience is None:
        return
    s = result.resilience
    print()
    print(f"resilience: replication={s['replication']}, "
          f"detections={s['detections_node']} node / {s['detections_dht']} dht, "
          f"failover reads={s['failover_reads']}, "
          f"re-replicated={s['rereplication_copies']} copies "
          f"({s['rereplication_bytes']} B), "
          f"re-enactments={s['reenactments']}")
    if "scrub" in s:
        sc = s["scrub"]
        print(f"scrub: {sc['passes']} passes, "
              f"{sc['copies_checked']} copies checked, "
              f"{sc['corrupt_found']} corrupt found, "
              f"{sc['repaired']} repaired")


def _print_gray_summary(result) -> None:
    """Hedge / speculation / integrity counters for gray-failure runs."""
    injector = result.injector
    reg = result.registry
    if injector is None or reg is None or not injector.plan.has_gray_faults:
        return

    def count(name: str) -> int:
        # Read-only: never registers absent (lazy) gray instruments.
        return int(reg[name].total()) if name in reg else 0

    print()
    print("gray failures: "
          f"corrupted deliveries={count('transport.corrupted_deliveries')}, "
          f"duplicates dropped={count('integrity.duplicates_dropped')}, "
          f"integrity re-fetches={count('integrity.refetches')}")
    print(f"hedged pulls: {count('hedge.issued')} issued, "
          f"{count('hedge.wins')} won, "
          f"{count('hedge.redundant_bytes')} redundant bytes")
    print(f"speculation: {count('workflow.speculation.launched')} launched, "
          f"{count('workflow.speculation.wins')} won, "
          f"{count('workflow.speculation.cancelled')} cancelled")


def _print_partition_summary(result) -> None:
    """Partition-tolerance counters for runs whose plan declared cuts."""
    injector = result.injector
    reg = result.registry
    if injector is None or reg is None or not injector.plan.has_partitions:
        return

    def count(name: str) -> int:
        # Read-only: never registers absent (lazy) partition instruments.
        return int(reg[name].total()) if name in reg else 0

    print()
    print("network partitions: "
          f"stalled transfers={count('transport.partitioned_transfers')}, "
          f"suspected nodes={count('resilience.partition.suspected')}, "
          f"waited out={count('resilience.partition.waited_out')}, "
          f"deadline escalations="
          f"{count('resilience.partition.deadline_exceeded')}")
    print(f"quorum: degraded writes={count('quorum.degraded_writes')}, "
          f"failed writes={count('quorum.failed_writes')}, "
          f"degraded reads={count('quorum.degraded_reads')}, "
          f"failed reads={count('quorum.failed_reads')}, "
          f"fenced writes={count('partition.fenced_writes')}")
    print(f"heal: {count('resilience.partition.heals')} heals, "
          f"{count('partition.reconciled')} stale copies reconciled, "
          f"{count('partition.deferred_registrations')} deferred "
          f"registrations replayed")


def _print_memory_summary(result) -> None:
    """Memory-pressure counters for runs with --enforce-memory."""
    reg = result.registry
    space = result.space
    if reg is None or space is None:
        return
    if not getattr(space, "enforce_memory", False):
        return

    def count(name: str) -> int:
        # Read-only: never registers absent (lazy) memory instruments.
        return int(reg[name].total()) if name in reg else 0

    print()
    print("memory pressure: "
          f"watermark hits={count('mem.watermark')}, "
          f"stalls={count('mem.stalls')}, "
          f"backpressure retries={count('workflow.memory.retries')}, "
          f"escalations={count('workflow.memory.escalations')}")
    print(f"reclaim ladder: gc={count('mem.gc')}, "
          f"replicas evicted={count('mem.evicted_replicas')}, "
          f"replicas skipped={count('mem.replicas_skipped')}, "
          f"spills={count('mem.spills')}, "
          f"restores={count('mem.restores')}")
    spill_bytes = count("spill.bytes")
    print(f"spill tier: {spill_bytes} bytes moved, "
          f"{space.spilled_bytes()} bytes resident at exit")


def _make_tracer(args: argparse.Namespace):
    if not getattr(args, "trace_out", None):
        return None
    if getattr(args, "trace_stream", False):
        from repro.obs.tracer import StreamingTracer

        return StreamingTracer(args.trace_out)
    from repro.obs.tracer import Tracer

    return Tracer()


def _make_timeline(args: argparse.Namespace, cluster):
    if not getattr(args, "timeline_out", None):
        return None
    from repro.obs.timeline import JsonlStreamSink, TimelineCollector

    return TimelineCollector(
        cluster,
        sample_period=args.sample_period,
        sinks=(JsonlStreamSink(args.timeline_out),),
    )


def _make_progress(args: argparse.Namespace):
    if not getattr(args, "progress", False):
        return None
    from repro.obs.timeline import ProgressReporter

    return ProgressReporter()


def _make_provenance(args: argparse.Namespace):
    if not getattr(args, "provenance_out", None):
        return None
    from repro.obs.provenance import ProvenanceLedger
    from repro.obs.timeline import JsonlStreamSink

    return ProvenanceLedger(sinks=(JsonlStreamSink(args.provenance_out),))


def _print_provenance_summary(result) -> None:
    """Counts-by-kind block for runs that carried a provenance ledger."""
    ledger = result.provenance
    if ledger is None or not ledger.enabled:
        return
    summary = ledger.summary()
    print()
    print(f"provenance: {sum(summary.values())} decision records "
          f"across {len(summary)} kinds")
    for kind, count in sorted(summary.items()):
        print(f"  {kind:<26} {count}")


def _record_run(args: argparse.Namespace, result, tracer) -> None:
    """Append the run to the --runs-db registry, if one was requested."""
    db_path = getattr(args, "runs_db", None)
    if not db_path:
        return
    from repro.analysis.runs import RunRegistry

    config = {
        k: v for k, v in sorted(vars(args).items())
        if isinstance(v, (str, int, float, bool, type(None)))
    }
    m = result.metrics
    metrics = {
        "sim.events": float(result.sim_events),
        "net.coupling_bytes": float(m.network_bytes(TransferKind.COUPLING)),
        "shm.coupling_bytes": float(m.shm_bytes(TransferKind.COUPLING)),
    }
    for app_id, t in sorted((result.retrieval_times or {}).items()):
        metrics[f"retrieval.app{app_id}"] = float(t)
    attribution = None
    # Critical-path attribution needs the full in-memory span graph; a
    # streaming tracer has already shipped its spans to disk.
    if tracer is not None and hasattr(tracer, "all_spans"):
        from repro.obs.critpath import SpanGraph, critical_path

        attribution = critical_path(
            SpanGraph.from_tracer(tracer)
        ).attribution()
    with RunRegistry(db_path) as registry:
        run_id = registry.record_run(
            command=args.command,
            scenario=getattr(args, "scenario", None) or args.command,
            mapper=result.mapper_name,
            config=config,
            seed=(result.injector.plan.seed
                  if result.injector is not None else 0),
            makespan=(result.engine.sim.now
                      if result.engine is not None else None),
            metrics=metrics,
            attribution=attribution,
            ledger_path=getattr(args, "provenance_out", None),
            trace_path=getattr(args, "trace_out", None),
        )
    print(f"run #{run_id} recorded in {db_path}; inspect with: "
          f"repro-insitu runs show {run_id} --db {db_path}")


def _write_obs(args: argparse.Namespace, result, tracer, timeline=None,
               ledger=None) -> None:
    if tracer is not None:
        if hasattr(tracer, "write_chrome"):
            tracer.write_chrome(args.trace_out)
            n = len(tracer.chrome_events())
        else:
            # Streaming tracer: events are already on disk, just close out.
            tracer.close()
            n = tracer.events_written
        print(f"\ntrace written to {args.trace_out} "
              f"({n} events); "
              f"inspect with: repro-insitu trace-report {args.trace_out}")
    if timeline is not None:
        timeline.close()
        print(f"timeline written to {args.timeline_out} "
              f"({timeline.samples} samples, {timeline.link_samples} link "
              f"samples); render with: repro-insitu timeline "
              f"{args.timeline_out}")
    if ledger is not None:
        ledger.close()
        print(f"provenance ledger written to {args.provenance_out} "
              f"({ledger.records_written} records); query with: "
              f"repro-insitu explain slowest --ledger {args.provenance_out}")
    if getattr(args, "metrics_out", None) and result.registry is not None:
        result.registry.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")


def _run_one(args: argparse.Namespace, scenario_name: str) -> int:
    scenario = _build(scenario_name, args.scale, args.dist)
    print(scenario.describe())
    tracer = _make_tracer(args)
    timeline = _make_timeline(args, scenario.cluster)
    ledger = _make_provenance(args)
    result = run_scenario(
        scenario, args.mapper,
        stencil_iterations=args.stencil, time_transfers=args.time,
        fault_plan=_load_fault_plan(args), tracer=tracer,
        resilience=_make_resilience(args),
        producer_compute=args.compute_seconds,
        consumer_compute=args.compute_seconds,
        hedge_factor=args.hedge_factor,
        speculation_threshold=args.speculation_threshold,
        write_quorum=args.write_quorum,
        read_quorum=args.read_quorum,
        timeline=timeline,
        progress=_make_progress(args),
        provenance=ledger,
        enforce_memory=args.enforce_memory,
        memory_per_node=args.memory_per_node,
        high_watermark=args.high_watermark,
        spill_capacity=args.spill_capacity,
    )
    m = result.metrics
    rows = []
    for kind in (TransferKind.COUPLING, TransferKind.INTRA_APP, TransferKind.CONTROL):
        rows.append(
            [kind.value, mib(m.network_bytes(kind)), mib(m.shm_bytes(kind))]
        )
    print()
    print(format_table(
        ["kind", "network MiB", "shm MiB"], rows,
        title=f"transfer volumes under {args.mapper} mapping",
    ))
    if args.time and result.retrieval_times:
        print()
        rows = [
            [result.scenario.apps[0].name if app_id == 1 else
             next(a.name for a in result.scenario.apps if a.app_id == app_id),
             ms(t)]
            for app_id, t in sorted(result.retrieval_times.items())
        ]
        print(format_table(["consumer", "retrieval ms"], rows))
    _print_fault_summary(result)
    _print_gray_summary(result)
    _print_partition_summary(result)
    _print_memory_summary(result)
    _print_resilience_summary(result)
    _print_provenance_summary(result)
    _write_obs(args, result, tracer, timeline, ledger)
    _record_run(args, result, tracer)
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    rows = []
    last_result = None
    last_tracer = None
    last_timeline = None
    last_ledger = None
    for mapper in (ROUND_ROBIN, DATA_CENTRIC):
        scenario = _build(args.scenario, args.scale, args.dist)
        # Trace, timeline, and ledger stream to one file each, so only
        # the data-centric run — the paper's contribution — is
        # instrumented.
        instrument = mapper == DATA_CENTRIC
        tracer = _make_tracer(args) if instrument else None
        timeline = (
            _make_timeline(args, scenario.cluster) if instrument else None
        )
        ledger = _make_provenance(args) if instrument else None
        result = run_scenario(
            scenario, mapper,
            stencil_iterations=args.stencil, time_transfers=args.time,
            fault_plan=_load_fault_plan(args), tracer=tracer,
            resilience=_make_resilience(args),
            producer_compute=args.compute_seconds,
            consumer_compute=args.compute_seconds,
            hedge_factor=args.hedge_factor,
            speculation_threshold=args.speculation_threshold,
            write_quorum=args.write_quorum,
            read_quorum=args.read_quorum,
            timeline=timeline,
            progress=_make_progress(args),
            provenance=ledger,
            enforce_memory=args.enforce_memory,
            memory_per_node=args.memory_per_node,
            high_watermark=args.high_watermark,
            spill_capacity=args.spill_capacity,
        )
        last_result = result
        last_tracer = tracer
        last_timeline = timeline
        last_ledger = ledger
        m = result.metrics
        row = [
            mapper,
            mib(m.network_bytes(TransferKind.COUPLING)),
            mib(m.shm_bytes(TransferKind.COUPLING)),
        ]
        if args.time:
            row.append(ms(max(result.retrieval_times.values(), default=0.0)))
        rows.append(row)
    headers = ["mapper", "coupling net MiB", "coupling shm MiB"]
    if args.time:
        headers.append("retrieval ms")
    print(format_table(headers, rows, title=f"{args.scenario} scenario ({args.dist})"))
    red = reduction(rows[0][1], rows[1][1])
    print(f"\nnetwork coupled-data reduction: {red:.0%}")
    if last_result is not None:
        _print_fault_summary(last_result)
        _print_gray_summary(last_result)
        _print_partition_summary(last_result)
        _print_memory_summary(last_result)
        _print_resilience_summary(last_result)
        _print_provenance_summary(last_result)
        _write_obs(args, last_result, last_tracer, last_timeline, last_ledger)
        _record_run(args, last_result, last_tracer)
    return 0


def _run_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import TraceReport

    report = TraceReport.from_files(args.trace, args.metrics)
    print(report.format(top=args.top))
    return 0


def _run_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.ascii import heat_strip, sparkline
    from repro.errors import ReproError
    from repro.obs.timeline import read_timeline

    try:
        header, records = read_timeline(args.path)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        samples = [r for r in records if r.get("kind") == "sample"]
        links = [r for r in records if r.get("kind") == "links"]
        num_nodes = int(header["num_nodes"])
        cpn = int(header["cores_per_node"])
        groups = int(header["groups"])
        print(f"timeline {args.path}: {len(samples)} samples, "
              f"{len(links)} link samples")
        print(f"cluster: {num_nodes} nodes x {cpn} cores, "
              f"{groups} node groups, "
              f"sample period {header['sample_period']}s")
        if not samples:
            print("no samples to render")
            return 0
        t_lo, t_hi = samples[0]["t"], samples[-1]["t"]
        width = max(1, min(args.width, len(samples)))

        def columns(series: list) -> list:
            # Mean-pool the series into `width` time columns.
            n = len(series)
            out = []
            for c in range(width):
                lo = c * n // width
                hi = max(lo + 1, (c + 1) * n // width)
                chunk = series[lo:hi]
                out.append(sum(chunk) / len(chunk))
            return out

        group_size = [0] * groups
        for node in range(num_nodes):
            group_size[node * groups // num_nodes] += 1
        print()
        print(f"per-node-group busy fraction, "
              f"t = {t_lo:.3f}s .. {t_hi:.3f}s "
              f"(shades: ' ' idle .. '█' full)")
        for g in range(groups):
            cap = group_size[g] * cpn
            series = [
                min(1.0, r["busy"][g] / cap) if cap else 0.0 for r in samples
            ]
            print(f"  group {g:>4} |{heat_strip(columns(series))}|")
        print()
        print("  queue depth  "
              + sparkline(columns([r["queue"] for r in samples])))
        print("  resident B   "
              + sparkline(columns([r["resident"] for r in samples])))
        if links:
            net = [r["net_util"] for r in links]
            mem = [r["mem_util"] for r in links]
            print()
            print(f"link occupancy over {len(links)} coupling samples:")
            print(f"  net: mean {sum(net) / len(net):6.1%}  "
                  f"peak {max(net):6.1%}")
            print(f"  mem: mean {sum(mem) / len(mem):6.1%}  "
                  f"peak {max(mem):6.1%}")
    except (KeyError, IndexError, TypeError, ZeroDivisionError) as exc:
        print(f"error: malformed timeline record ({exc!r})", file=sys.stderr)
        return 1
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    from repro.analysis.perfhistory import run_history

    profiles, verdict, text = run_history(
        out=args.out,
        directory=args.directory,
        scenarios=args.scenario,
        label=args.label,
        utilization=args.utilization,
    )
    print(text, end="")
    if args.out:
        print(f"\nsnapshot written to {args.out}")
    if verdict is None:
        if args.out:
            print("\nno baseline: no previous BENCH_*.json snapshot in "
                  f"{args.directory!r}; recorded this run as the first one")
        else:
            print("\nno baseline: no previous BENCH_*.json snapshot in "
                  f"{args.directory!r}; pass --out BENCH_1.json to record "
                  "the first one")
    if args.fail_on_regression and verdict is not None and not verdict.passed:
        return 1
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.explain import (
        Ledger,
        explain_bundle,
        explain_object,
        explain_slowest,
    )

    if args.what == "bundle" and args.target is None:
        print("error: 'explain bundle' needs a bundle id", file=sys.stderr)
        return 2
    if args.what == "object" and args.target is None:
        print("error: 'explain object' needs an object name", file=sys.stderr)
        return 2
    try:
        ledger = Ledger.load(args.ledger)
        if args.what == "bundle":
            print(explain_bundle(ledger, int(args.target)))
        elif args.what == "object":
            print(explain_object(ledger, args.target))
        else:
            print(explain_slowest(ledger, n=args.top))
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_runs(args: argparse.Namespace) -> int:
    from repro.analysis.runs import RunRegistry
    from repro.errors import AnalysisError

    if args.action == "show" and len(args.ids) != 1:
        print("error: 'runs show' needs exactly one run id", file=sys.stderr)
        return 2
    if args.action == "diff" and len(args.ids) != 2:
        print("error: 'runs diff' needs exactly two run ids", file=sys.stderr)
        return 2
    if not os.path.isfile(args.db):
        print(f"error: no run registry at {args.db}", file=sys.stderr)
        return 1

    def fmt(value) -> str:
        return "-" if value is None else f"{value:.6g}"

    try:
        with RunRegistry(args.db) as registry:
            if args.action == "list":
                rows = [
                    [str(r["id"]), r["command"], r["mapper"], str(r["seed"]),
                     fmt(r["makespan"]), r["config_hash"][:10], r["label"]]
                    for r in registry.list_runs()
                ]
                print(format_table(
                    ["id", "command", "mapper", "seed", "makespan",
                     "config", "label"],
                    rows,
                    title=f"{len(rows)} recorded run(s) in {args.db}",
                ))
            elif args.action == "show":
                run = registry.get_run(args.ids[0])
                print(f"run #{run['id']}: {run['command']} "
                      f"({run['mapper']}, seed={run['seed']})")
                print(f"  config hash: {run['config_hash']}")
                print(f"  makespan:    {fmt(run['makespan'])}s")
                for key in ("label", "ledger_path", "trace_path"):
                    if run[key]:
                        print(f"  {key.replace('_', ' ')}: {run[key]}")
                print(format_table(
                    ["metric", "value"],
                    [[name, fmt(value)]
                     for name, value in sorted(run["metrics"].items())],
                ))
            else:
                a, b = args.ids
                rows = [
                    [name, fmt(va), fmt(vb),
                     "-" if va is None or vb is None else f"{vb - va:+.6g}"]
                    for name, va, vb in registry.diff(a, b)
                ]
                print(format_table(
                    ["metric", f"run {a}", f"run {b}", "delta"], rows,
                    title=f"run {a} vs run {b}",
                ))
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_dag(args: argparse.Namespace) -> int:
    with open(args.path, "r", encoding="utf-8") as fh:
        text = fh.read()
    dag = build_workflow(parse_dag(text))
    print(f"valid workflow: {len(dag.apps)} apps, {len(dag.edges)} edges, "
          f"{len(dag.bundles)} bundles")
    print(f"bundle schedule: {dag.bundle_schedule()}")
    print()
    from repro.workflow.visualize import render_dag

    print(render_dag(dag))
    print()
    print(write_dag(dag), end="")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import DIST_PATTERNS, run_sweep

    configs = [
        (f"{pd}/{cd}", lambda pd=pd, cd=cd: _build(args.scenario, args.scale, pd)
         if pd == cd else _build_pair(args.scenario, args.scale, pd, cd))
        for pd, cd in DIST_PATTERNS
    ]
    result = run_sweep(configs, time_transfers=args.time)
    print(f"{args.scenario} scenario, distribution-pattern sweep "
          f"({args.scale} scale)\n")
    print(result.reduction_table())
    if args.time:
        print()
        print(result.timing_table())
    return 0


def _build_pair(scenario_name: str, scale: str, pd: str, cd: str):
    if scenario_name == "concurrent":
        builder = paper_concurrent if scale == "paper" else small_concurrent
    else:
        builder = paper_sequential if scale == "paper" else small_sequential
    return builder(producer_dist=pd, consumer_dist=cd)


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace_stream", False) and not args.trace_out:
        parser.error("--trace-stream requires --trace-out")
    for flag, name in (("write_quorum", "--write-quorum"),
                       ("read_quorum", "--read-quorum")):
        q = getattr(args, flag, None)
        if q is not None and q > getattr(args, "replication", 1):
            parser.error(
                f"{name} {q} exceeds --replication "
                f"{getattr(args, 'replication', 1)}: a quorum cannot "
                f"outnumber the copies"
            )
    if not getattr(args, "enforce_memory", False):
        for flag, name in (("memory_per_node", "--memory-per-node"),
                           ("high_watermark", "--high-watermark"),
                           ("spill_capacity", "--spill-capacity"),
                           ("memory_pressure", "--memory-pressure")):
            if getattr(args, flag, None) is not None:
                parser.error(
                    f"{name} has no effect without --enforce-memory"
                )
    if args.command in ("concurrent", "sequential"):
        return _run_one(args, args.command)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "trace-report":
        return _run_trace_report(args)
    if args.command == "timeline":
        return _run_timeline(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "runs":
        return _run_runs(args)
    return _run_dag(args)


if __name__ == "__main__":
    sys.exit(main())
