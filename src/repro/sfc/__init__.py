"""Space-filling-curve linearization substrate (paper §IV-A, Fig 6)."""

from repro.sfc.base import SpaceFillingCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.linearize import DomainLinearizer
from repro.sfc.morton import MortonCurve
from repro.sfc.spans import merge_spans, region_spans, spans_measure

__all__ = [
    "SpaceFillingCurve",
    "HilbertCurve",
    "MortonCurve",
    "DomainLinearizer",
    "region_spans",
    "merge_spans",
    "spans_measure",
]
