"""n-dimensional Hilbert space-filling curve.

CoDS linearizes the application's n-D Cartesian domain with a Hilbert SFC to
build its DHT index space (paper §IV-A, Fig 6). This module implements the
curve with John Skilling's transpose algorithm ("Programming the Hilbert
curve", AIP Conf. Proc. 707, 2004): coordinates are mapped to/from a
"transposed" representation of the Hilbert index with O(order · ndim) bit
operations, fully vectorized over numpy arrays of points.

The key property the DHT relies on — every axis-aligned cube of side ``2^l``
(aligned to multiples of its side) occupies one contiguous index range — holds
for the Hilbert curve and is exercised by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinearizationError
from repro.sfc.base import SpaceFillingCurve

__all__ = ["HilbertCurve"]


class HilbertCurve(SpaceFillingCurve):
    """Hilbert curve over the grid ``[0, 2**order)**ndim``.

    ``encode`` maps an ``(N, ndim)`` int array of coordinates to ``(N,)``
    curve indices; ``decode`` inverts it. Scalars (1-D shaped input) work too.
    """

    name = "hilbert"

    def __init__(self, ndim: int, order: int) -> None:
        super().__init__(ndim, order)

    # -- public API ------------------------------------------------------------

    def encode(self, points: np.ndarray) -> np.ndarray:
        pts, squeeze = self._validate_points(points)
        transposed = self._axes_to_transpose(pts.T.astype(np.int64, copy=True))
        idx = self._interleave(transposed)
        return idx[0] if squeeze else idx

    def decode(self, indices: np.ndarray) -> np.ndarray:
        idx, squeeze = self._validate_indices(indices)
        transposed = self._deinterleave(idx)
        pts = self._transpose_to_axes(transposed).T
        return pts[0] if squeeze else pts

    # -- Skilling transform -------------------------------------------------------

    def _axes_to_transpose(self, x: np.ndarray) -> np.ndarray:
        """In-place Skilling AxesToTranspose, vectorized. ``x`` is (ndim, N)."""
        n, b = self.ndim, self.order
        m = 1 << (b - 1)
        # Inverse undo: walk bit planes from the top.
        q = m
        while q > 1:
            p = q - 1
            for i in range(n):
                has_bit = (x[i] & q) != 0
                # where set: invert low bits of x[0]; else swap low bits x[0]<->x[i]
                x0_flip = x[0] ^ p
                t = (x[0] ^ x[i]) & p
                x[0] = np.where(has_bit, x0_flip, x[0] ^ t)
                x[i] = np.where(has_bit, x[i], x[i] ^ t)
            q >>= 1
        # Gray encode.
        for i in range(1, n):
            x[i] ^= x[i - 1]
        t = np.zeros_like(x[0])
        q = m
        while q > 1:
            t = np.where((x[n - 1] & q) != 0, t ^ (q - 1), t)
            q >>= 1
        for i in range(n):
            x[i] ^= t
        return x

    def _transpose_to_axes(self, x: np.ndarray) -> np.ndarray:
        """In-place Skilling TransposeToAxes, vectorized. ``x`` is (ndim, N)."""
        n, b = self.ndim, self.order
        top = 2 << (b - 1)
        # Gray decode by H ^ (H/2).
        t = x[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t
        # Undo excess work.
        q = 2
        while q != top:
            p = q - 1
            for i in range(n - 1, -1, -1):
                has_bit = (x[i] & q) != 0
                x0_flip = x[0] ^ p
                t = (x[0] ^ x[i]) & p
                x[0] = np.where(has_bit, x0_flip, x[0] ^ t)
                x[i] = np.where(has_bit, x[i], x[i] ^ t)
            q <<= 1
        return x

    # -- transposed form <-> flat index -----------------------------------------

    def _interleave(self, x: np.ndarray) -> np.ndarray:
        """Transposed (ndim, N) words -> (N,) flat indices.

        Bit ``j`` of word ``x[i]`` becomes bit ``j*ndim + (ndim-1-i)`` of the
        index, i.e. the MSB-first interleaving of the word bits.
        """
        n, b = self.ndim, self.order
        out = np.zeros(x.shape[1], dtype=np.int64)
        for j in range(b):
            for i in range(n):
                bit = (x[i] >> j) & 1
                out |= bit << (j * n + (n - 1 - i))
        return out

    def _deinterleave(self, idx: np.ndarray) -> np.ndarray:
        """(N,) flat indices -> transposed (ndim, N) words."""
        n, b = self.ndim, self.order
        x = np.zeros((n, idx.shape[0]), dtype=np.int64)
        for j in range(b):
            for i in range(n):
                bit = (idx >> (j * n + (n - 1 - i))) & 1
                x[i] |= bit << j
        return x


def hilbert_index(point: tuple[int, ...], order: int) -> int:
    """Convenience scalar encode (used in docs/examples)."""
    curve = HilbertCurve(len(point), order)
    return int(curve.encode(np.asarray(point, dtype=np.int64)))


def hilbert_point(index: int, ndim: int, order: int) -> tuple[int, ...]:
    """Convenience scalar decode."""
    if index < 0:
        raise LinearizationError(f"index must be non-negative, got {index}")
    curve = HilbertCurve(ndim, order)
    return tuple(int(v) for v in curve.decode(np.asarray([index], dtype=np.int64))[0])
