"""Common interface for space-filling curves.

Both curves used by the framework (Hilbert — the paper's choice — and Morton,
kept as an ablation baseline) map the grid ``[0, 2**order)**ndim`` bijectively
onto ``[0, 2**(ndim*order))`` and share the aligned-subcube contiguity
property that the span extraction in :mod:`repro.sfc.spans` relies on.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import LinearizationError

__all__ = ["SpaceFillingCurve"]

# int64 is the working dtype; one sign bit is reserved.
_MAX_INDEX_BITS = 62


class SpaceFillingCurve(abc.ABC):
    """A bijection between grid coordinates and 1-D curve indices."""

    #: short identifier used in reports/ablations
    name: str = "sfc"

    def __init__(self, ndim: int, order: int) -> None:
        if ndim < 1:
            raise LinearizationError(f"ndim must be >= 1, got {ndim}")
        if order < 1:
            raise LinearizationError(f"order must be >= 1, got {order}")
        if ndim * order > _MAX_INDEX_BITS:
            raise LinearizationError(
                f"ndim*order = {ndim * order} exceeds {_MAX_INDEX_BITS} index bits"
            )
        self.ndim = ndim
        self.order = order

    @property
    def side(self) -> int:
        """Grid extent along each dimension: ``2**order``."""
        return 1 << self.order

    @property
    def total_cells(self) -> int:
        """Size of the index space: ``2**(ndim*order)``."""
        return 1 << (self.ndim * self.order)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(ndim={self.ndim}, order={self.order})"

    # -- input validation shared by implementations ------------------------------

    def _validate_points(self, points: np.ndarray) -> tuple[np.ndarray, bool]:
        """Coerce to (N, ndim) int64; return (array, was_single_point)."""
        arr = np.asarray(points, dtype=np.int64)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.ndim:
            raise LinearizationError(
                f"expected points of shape (N, {self.ndim}), got {np.shape(points)}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.side):
            raise LinearizationError(
                f"coordinates out of range [0, {self.side}) for order {self.order}"
            )
        return arr, squeeze

    def _validate_indices(self, indices: np.ndarray) -> tuple[np.ndarray, bool]:
        arr = np.asarray(indices, dtype=np.int64)
        squeeze = arr.ndim == 0
        if squeeze:
            arr = arr[None]
        if arr.ndim != 1:
            raise LinearizationError(
                f"expected 1-D index array, got shape {np.shape(indices)}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.total_cells):
            raise LinearizationError(
                f"indices out of range [0, {self.total_cells})"
            )
        return arr, squeeze

    # -- the bijection -----------------------------------------------------------

    @abc.abstractmethod
    def encode(self, points: np.ndarray) -> np.ndarray:
        """Map ``(N, ndim)`` coordinates to ``(N,)`` curve indices."""

    @abc.abstractmethod
    def decode(self, indices: np.ndarray) -> np.ndarray:
        """Map ``(N,)`` curve indices back to ``(N, ndim)`` coordinates."""
