"""Box -> contiguous curve-index spans.

A continuous region of the Cartesian domain "can be represented either by a
geometric descriptor such as a bounding box, or a set of spans of the
linearized index space" (paper §IV-A). This module converts between the two.

The extraction descends the implicit ``2**ndim``-ary tree of aligned cubes:
cubes disjoint from the box are pruned, fully-contained cubes emit one span,
and partially-overlapping cubes recurse. Because every aligned cube of side
``2**l`` occupies a contiguous index range ``[base, base + 2**(ndim*l))`` on
both the Hilbert and Morton curves, a contained cube's span can be computed
from a single ``encode`` of its low corner — the recursion never needs to
track curve orientation.

The number of emitted spans is bounded by the box surface, so extraction
stays cheap even for huge domains; ``max_spans`` optionally coarsens the
result early by refusing to descend below a given cube size.
"""

from __future__ import annotations

import numpy as np

from repro.domain.box import Box
from repro.errors import LinearizationError
from repro.sfc.base import SpaceFillingCurve

__all__ = ["region_spans", "merge_spans", "spans_measure"]


def merge_spans(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and coalesce adjacent/overlapping half-open spans."""
    spans = sorted((lo, hi) for lo, hi in spans if hi > lo)
    out: list[tuple[int, int]] = []
    for lo, hi in spans:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def spans_measure(spans: list[tuple[int, int]]) -> int:
    """Total number of indices covered by a span list."""
    return sum(hi - lo for lo, hi in spans)


def region_spans(
    curve: SpaceFillingCurve,
    box: Box,
    min_cube_order: int = 0,
) -> list[tuple[int, int]]:
    """Contiguous index spans covering ``box`` on ``curve``.

    ``min_cube_order`` > 0 trades precision for span count: recursion stops at
    cubes of side ``2**min_cube_order`` and emits the whole cube's span if it
    merely *intersects* the box. The result then covers a superset of the box
    (useful for routing DHT queries where over-approximation is safe).

    Returns merged, sorted, disjoint half-open spans. With
    ``min_cube_order == 0`` the spans cover exactly the box cells.
    """
    if box.ndim != curve.ndim:
        raise LinearizationError(
            f"box rank {box.ndim} != curve rank {curve.ndim}"
        )
    if not 0 <= min_cube_order <= curve.order:
        raise LinearizationError(
            f"min_cube_order must be in [0, {curve.order}], got {min_cube_order}"
        )
    domain = Box.from_extents((curve.side,) * curve.ndim)
    clipped = box.intersection(domain)
    if clipped is None or clipped.is_empty:
        return []

    n = curve.ndim
    lo, hi = clipped.lo, clipped.hi
    # Geometric descent first: collect (corner, level) of every emitted cube,
    # then encode all corners in one vectorized batch — encoding point-by-
    # point during the recursion is two orders of magnitude slower.
    cubes: list[tuple[tuple[int, ...], int]] = []

    def descend(corner: tuple[int, ...], level: int) -> None:
        side = 1 << level
        for d in range(n):
            if corner[d] + side <= lo[d] or corner[d] >= hi[d]:
                return  # disjoint
        contained = all(
            lo[d] <= corner[d] and corner[d] + side <= hi[d] for d in range(n)
        )
        if contained or level <= min_cube_order:
            cubes.append((corner, level))
            return
        half = side >> 1
        for mask in range(1 << n):
            child = tuple(
                corner[d] + (half if (mask >> d) & 1 else 0) for d in range(n)
            )
            descend(child, level - 1)

    descend((0,) * n, curve.order)
    if not cubes:
        return []
    corners = np.asarray([c for c, _ in cubes], dtype=np.int64)
    codes = curve.encode(corners)
    if codes.ndim == 0:  # single cube
        codes = codes[None]
    spans: list[tuple[int, int]] = []
    for h, (_, level) in zip(codes.tolist(), cubes):
        cells = 1 << (n * level)
        base = (int(h) >> (n * level)) << (n * level)
        spans.append((base, base + cells))
    return merge_spans(spans)
