"""Domain linearization: application domain -> SFC index space.

Application domains are arbitrary ``(s1..sn)`` grids; the SFC lives on a
``2**order`` power-of-two grid. As in DataSpaces, the linearizer overlays a
virtual grid of SFC *bins* on the domain (each bin covering
``ceil(extent / 2**order)`` cells per dimension) and converts geometric
descriptors to spans of bin indices. When every extent is a power of two and
the order matches (the common case for the paper's 2^k domains), bins equal
cells and the mapping is exact; otherwise boxes snap *outward* to bins, which
over-approximates — safe for DHT routing, since exact byte accounting uses
interval products, never the SFC.
"""

from __future__ import annotations

from typing import Sequence

from repro.domain.box import Box
from repro.errors import LinearizationError
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.spans import region_spans

__all__ = ["DomainLinearizer"]


def _ceil_log2(x: int) -> int:
    return max(1, (x - 1).bit_length())


class DomainLinearizer:
    """Maps boxes in an ``extents`` domain to SFC index spans.

    Parameters
    ----------
    extents:
        Domain size per dimension, ``(s1..sn)``.
    order:
        Bits per dimension of the SFC grid. Defaults to the smallest order
        whose grid covers the largest extent (bins == cells for power-of-two
        domains). Smaller orders coarsen the virtual grid, trading index
        precision for span count — mirroring DataSpaces' virtual resolution.
    curve:
        SFC class or instance; defaults to :class:`HilbertCurve` (the paper's
        choice). Pass :class:`~repro.sfc.morton.MortonCurve` for ablations.
    """

    def __init__(
        self,
        extents: Sequence[int],
        order: int | None = None,
        curve: "type[SpaceFillingCurve] | SpaceFillingCurve" = HilbertCurve,
    ) -> None:
        self.extents = tuple(int(s) for s in extents)
        if not self.extents or any(s <= 0 for s in self.extents):
            raise LinearizationError(f"invalid domain extents {extents!r}")
        ndim = len(self.extents)
        if order is None:
            order = _ceil_log2(max(self.extents))
        if isinstance(curve, SpaceFillingCurve):
            if curve.ndim != ndim or curve.order != order:
                raise LinearizationError(
                    f"curve {curve!r} does not match ndim={ndim}, order={order}"
                )
            self.curve = curve
        else:
            self.curve = curve(ndim, order)
        side = self.curve.side
        # Per-dimension bin widths (cells per bin), chosen so side bins cover
        # the extent: width = ceil(extent / side).
        self.bin_widths = tuple(-(-s // side) for s in self.extents)
        # Span extraction is pure and repeated heavily (every put/get of the
        # same task region); cache by (bin box, coarseness).
        self._span_cache: dict[tuple[Box, int], list[tuple[int, int]]] = {}

    # -- introspection ----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.curve.ndim

    @property
    def order(self) -> int:
        return self.curve.order

    @property
    def index_cells(self) -> int:
        """Size of the 1-D index space (number of bins on the curve)."""
        return self.curve.total_cells

    @property
    def is_exact(self) -> bool:
        """True when bins coincide with domain cells."""
        return all(w == 1 for w in self.bin_widths)

    @property
    def domain(self) -> Box:
        return Box.from_extents(self.extents)

    def __repr__(self) -> str:
        return (
            f"DomainLinearizer(extents={self.extents}, order={self.order}, "
            f"curve={self.curve.name})"
        )

    # -- box <-> bins -----------------------------------------------------------

    def box_to_bins(self, box: Box) -> Box:
        """Snap a domain box outward to the covering box of SFC bins."""
        if box.ndim != self.ndim:
            raise LinearizationError(f"box rank {box.ndim} != domain rank {self.ndim}")
        clipped = box.intersection(self.domain)
        if clipped is None:
            raise LinearizationError(f"box {box} lies outside domain {self.extents}")
        lo = tuple(l // w for l, w in zip(clipped.lo, self.bin_widths))
        hi = tuple(-(-h // w) for h, w in zip(clipped.hi, self.bin_widths))
        return Box(lo=lo, hi=hi)

    def spans_for_box(
        self, box: Box, min_cube_order: int = 0
    ) -> list[tuple[int, int]]:
        """SFC index spans covering (at least) the bins of ``box``.

        See :func:`repro.sfc.spans.region_spans` for ``min_cube_order``.
        """
        bins = self.box_to_bins(box)
        if bins.is_empty:
            return []
        key = (bins, min_cube_order)
        spans = self._span_cache.get(key)
        if spans is None:
            spans = region_spans(self.curve, bins, min_cube_order=min_cube_order)
            self._span_cache[key] = spans
        return spans

    # -- DHT support ---------------------------------------------------------------

    def partition_index_space(self, nparts: int) -> list[tuple[int, int]]:
        """Split ``[0, index_cells)`` into ``nparts`` contiguous intervals.

        The paper divides the 1-D index space into intervals assigned to DHT
        cores. Intervals are balanced to within one cell; every part is
        non-empty as long as ``nparts <= index_cells``.
        """
        if nparts <= 0:
            raise LinearizationError(f"nparts must be positive, got {nparts}")
        total = self.index_cells
        if nparts > total:
            raise LinearizationError(
                f"cannot split {total} index cells into {nparts} parts"
            )
        base, extra = divmod(total, nparts)
        bounds = [0]
        for i in range(nparts):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
        return [(bounds[i], bounds[i + 1]) for i in range(nparts)]
