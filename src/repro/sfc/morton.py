"""Morton (Z-order) curve — the ablation baseline linearization.

Morton order simply interleaves coordinate bits. It shares the aligned-cube
contiguity property with the Hilbert curve (so the DHT works unchanged) but
has worse locality: a box decomposes into more, shorter index spans, which the
``bench_ablation_sfc`` benchmark quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.base import SpaceFillingCurve

__all__ = ["MortonCurve"]


class MortonCurve(SpaceFillingCurve):
    """Z-order curve over the grid ``[0, 2**order)**ndim``.

    Bit ``j`` of coordinate ``i`` maps to bit ``j*ndim + (ndim-1-i)`` of the
    index — the same bit layout as the Hilbert transposed interleave, minus
    the Gray-code rotation.
    """

    name = "morton"

    def encode(self, points: np.ndarray) -> np.ndarray:
        pts, squeeze = self._validate_points(points)
        n, b = self.ndim, self.order
        out = np.zeros(pts.shape[0], dtype=np.int64)
        for j in range(b):
            for i in range(n):
                bit = (pts[:, i] >> j) & 1
                out |= bit << (j * n + (n - 1 - i))
        return out[0] if squeeze else out

    def decode(self, indices: np.ndarray) -> np.ndarray:
        idx, squeeze = self._validate_indices(indices)
        n, b = self.ndim, self.order
        pts = np.zeros((idx.shape[0], n), dtype=np.int64)
        for j in range(b):
            for i in range(n):
                bit = (idx >> (j * n + (n - 1 - i))) & 1
                pts[:, i] |= bit << j
        return pts[0] if squeeze else pts
