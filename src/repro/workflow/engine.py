"""The workflow engine: DAG enactment over the discrete-event simulator.

Responsibilities (paper §III-A): manage "the correct enactment and progress
of DAG-based scientific workflows", track client availability, allocate
clients to the component applications, and drive the initial distribution of
computation tasks.

Bundles launch when every parent application has completed. At launch the
engine runs the bundle's task mapper (round-robin by default; install a
data-centric mapper per bundle with :meth:`WorkflowEngine.set_bundle_mapper`),
forms per-application communicator groups via the ``comm_split`` emulation,
and invokes each application's registered routine — the analogue of the
paper's statically linked MPI subroutines. A routine returns its simulated
duration in seconds (or ``None`` for instantaneous), which schedules the
application's completion event.

Mapper context values may be zero-argument callables: they are resolved at
*launch* time, which lets a sequential consumer bundle reference the Data
Lookup service that only has content once the producer has run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.mapping.base import MappingResult, TaskMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.task import AppSpec
from repro.errors import (
    CheckpointError,
    DataLostError,
    LookupError_,
    MemoryPressureError,
    NetworkPartitionError,
    QuorumError,
    ScheduleError,
    StaleWriteError,
    WorkflowError,
)
from repro.hardware.cluster import Cluster
from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import Span
from repro.sim.engine import SimEngine
from repro.workflow.clients import CommGroup, form_groups
from repro.workflow.dag import WorkflowDAG
from repro.workflow.server import WorkflowManagementServer

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.obs.tracer import NullTracer, Tracer

__all__ = ["AppContext", "AppRun", "TraceEvent", "WorkflowEngine"]


@dataclass(frozen=True)
class AppContext:
    """Everything an application routine can see when it runs."""

    app: AppSpec
    group: CommGroup
    mapping: MappingResult
    start_time: float
    engine: "WorkflowEngine"
    #: the bundle's dispatch generation at launch. Producers thread it into
    #: ``put_seq`` so stale-write fencing can reject a superseded (e.g.
    #: healed-minority) enactment's commits. 0 on the never-redispatched
    #: path, keeping clean runs byte-identical.
    generation: int = 0

    def core_of_rank(self, rank: int) -> int:
        return self.group.core(rank)


#: An application body: runs at launch, returns simulated duration (seconds).
AppRoutine = Callable[[AppContext], "float | None"]


@dataclass
class AppRun:
    """Execution record of one application."""

    app_id: int
    start: float = 0.0
    finish: float = 0.0
    mapping: MappingResult | None = None


@dataclass(frozen=True)
class TraceEvent:
    """One entry of the engine's execution trace."""

    time: float
    event: str          # "bundle_launched" | "app_started" | "app_completed"
    bundle: int
    app_id: int = -1
    detail: str = ""

    def __str__(self) -> str:
        who = f" app={self.app_id}" if self.app_id >= 0 else ""
        extra = f" ({self.detail})" if self.detail else ""
        return f"[t={self.time:10.6f}] {self.event} bundle={self.bundle}{who}{extra}"


class WorkflowEngine:
    """Enacts one workflow DAG on a cluster."""

    def __init__(
        self,
        dag: WorkflowDAG,
        cluster: Cluster,
        server: WorkflowManagementServer | None = None,
        sim: SimEngine | None = None,
        injector: "FaultInjector | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        defer_crash_redispatch: bool = False,
        speculation_threshold: "float | None" = None,
        registry: "object | None" = None,
        provenance: "object | None" = None,
    ) -> None:
        self.dag = dag
        self.cluster = cluster
        self.server = server if server is not None else WorkflowManagementServer(cluster)
        self.server.register_all()
        if sim is not None:
            self.sim = sim
            if injector is not None and not injector.armed:
                injector.arm(sim)
        else:
            self.sim = SimEngine(fault_injector=injector, tracer=tracer)
        self.tracer = tracer if tracer is not None else self.sim.tracer
        if self.tracer.enabled and self.tracer.clock is None:
            self.tracer.clock = lambda: self.sim.now
        self.injector = injector
        # With a failure detector in the loop (resilience mode), crash
        # re-dispatch waits for *detection*: the resilience manager calls
        # handle_node_crash once the detector declares the node dead.
        if injector is not None and not defer_crash_redispatch:
            injector.add_node_crash_listener(self._on_node_crash)
        self._routines: dict[int, AppRoutine] = {}
        self._mappers: dict[int, tuple[TaskMapper, dict[str, Any]]] = {}
        self.default_mapper: TaskMapper = RoundRobinMapper()
        self.runs: dict[int, AppRun] = {}
        self.trace: list[TraceEvent] = []
        #: bundle index -> number of post-fault re-enactments (degraded mode)
        self.reenactments: dict[int, int] = {}
        self._gen: dict[int, int] = {}
        #: (bundle, generation) pairs already enacted — two recovery paths
        #: scheduling a re-dispatch at the same instant (e.g. both nodes of
        #: a fenced minority declared dead together) must launch it once
        self._launched: set[tuple[int, int]] = set()
        self._completed: set[int] = set()
        #: simulated delay before retrying a bundle whose get hit lost data
        self.data_loss_retry: float = 0.05
        #: retry budget per bundle for the data-loss rung of the ladder
        self.max_data_loss_retries: int = 8
        self._data_loss_attempts: dict[int, int] = {}
        #: simulated delay before retrying a bundle blocked by a network cut
        self.partition_retry: float = 0.05
        #: per-bundle wall budget for waiting a cut out before escalating to
        #: the data-loss rung (None = only the retry-count budget applies;
        #: the resilience manager mirrors its configured deadline here)
        self.partition_deadline: "float | None" = None
        #: retry budget per bundle for partition wait-outs
        self.max_partition_retries: int = 64
        self._partition_attempts: dict[int, int] = {}
        self._partition_wait_since: dict[int, float] = {}
        self._partition_counters: dict[str, object] = {}
        #: simulated delay before retrying a bundle whose put hit memory
        #: pressure (the ``mem.wait`` backpressure stall)
        self.memory_retry: float = 0.05
        #: retry budget per bundle for memory-pressure backoffs before the
        #: bundle escalates to the data-loss rung
        self.max_memory_retries: int = 64
        self._memory_attempts: dict[int, int] = {}
        #: zero-arg callable returning accrued deep-memory (write, read)
        #: seconds since the last call; the experiment driver binds it to
        #: ``CoDS.drain_spill_seconds`` so spill traffic stretches the app
        #: over real simulated time (None keeps launches byte-identical)
        self.spill_probe: "Callable[[], tuple[float, float]] | None" = None
        self._executed = False
        # Open async spans per enactment generation (tracing only).
        self._bundle_spans: dict[tuple[int, int], Span] = {}
        self._app_spans: dict[tuple[int, int], Span] = {}
        # Last *completed* span per bundle (tracing only): child bundle
        # launches link back to it, giving traces explicit DAG dep edges.
        self._done_bundle_spans: dict[int, Span] = {}
        # -- straggler speculation (inert unless a threshold is set) --
        if speculation_threshold is not None and speculation_threshold < 1.0:
            raise WorkflowError(
                f"speculation threshold must be >= 1, got {speculation_threshold}"
            )
        #: an app running beyond ``threshold x`` the median of its bundle
        #: peers on a slowed node is speculatively re-enacted on a spare
        #: core; the first finisher wins (None disables speculation)
        self.speculation_threshold = speculation_threshold
        self.registry = registry
        self._spec_counters: dict[str, object] = {}
        self._spec_spans: dict[tuple[int, int], Span] = {}
        # -- causal provenance (inert behind one `enabled` check) --
        #: decision ledger; NULL_LEDGER keeps unledgered runs byte-identical
        self.provenance = provenance if provenance is not None else NULL_LEDGER
        #: bundle -> id of its latest ledger record (linear why-chain tail)
        self._prov_last: dict[int, int] = {}
        #: the workflow.submit record id (root cause of first dispatches)
        self._prov_root: "int | None" = None
        #: bundles that already emitted their terminal bundle.complete
        self._prov_completed: set[int] = set()

    def _prov_chain(self, kind: str, bundle: int, **fields: Any) -> int:
        """Append a provenance record to ``bundle``'s linear why-chain."""
        rid = self.provenance.record(
            kind, cause=self._prov_last.get(bundle, self._prov_root),
            bundle=bundle, **fields,
        )
        self._prov_last[bundle] = rid
        return rid

    def _spec_count(self, name: str) -> None:
        """Bump a lazily created ``workflow.speculation.*`` counter."""
        if self.registry is None:
            return
        c = self._spec_counters.get(name)
        if c is None:
            c = self._spec_counters[name] = self.registry.counter(name)
        c.inc()

    def _partition_count(self, name: str) -> None:
        """Bump a lazily created ``workflow.partition.*`` counter."""
        if self.registry is None:
            return
        c = self._partition_counters.get(name)
        if c is None:
            c = self._partition_counters[name] = self.registry.counter(name)
        c.inc()

    # -- configuration ----------------------------------------------------------------

    def set_routine(self, app_id: int, routine: AppRoutine) -> None:
        if app_id not in self.dag.apps:
            raise WorkflowError(f"unknown app id {app_id}")
        self._routines[app_id] = routine

    def set_bundle_mapper(
        self, bundle_index: int, mapper: TaskMapper, **context: Any
    ) -> None:
        """Install a mapper (+ context) for one bundle. Context values that
        are zero-arg callables are resolved at launch time."""
        if not 0 <= bundle_index < len(self.dag.bundles):
            raise WorkflowError(f"bundle index {bundle_index} out of range")
        self._mappers[bundle_index] = (mapper, dict(context))

    def bundle_index_of(self, app_id: int) -> int:
        for i, b in enumerate(self.dag.bundles):
            if app_id in b:
                return i
        raise WorkflowError(f"unknown app id {app_id}")

    # -- enactment ----------------------------------------------------------------------

    def run(self, restore: "dict | None" = None) -> dict[int, AppRun]:
        """Execute the whole workflow; returns per-application run records.

        ``restore`` (a :meth:`checkpoint_state` dict) resumes a previously
        checkpointed enactment instead of starting fresh: completed work is
        replayed as bookkeeping, in-flight applications re-schedule their
        completion events (their routines' side effects are part of the
        checkpoint's space manifest, so they do not re-execute), and only
        not-yet-launched bundles run their routines from here on. The sim
        clock must already stand at the checkpoint's capture time.
        """
        if self._executed:
            raise WorkflowError("engine already ran; build a new one to re-run")
        self._executed = True
        n = len(self.dag.bundles)
        self._indeg = [len(self.dag.bundle_parents(i)) for i in range(n)]
        self._bundle_children: dict[int, set[int]] = {i: set() for i in range(n)}
        for i in range(n):
            for p in self.dag.bundle_parents(i):
                self._bundle_children[p].add(i)
        self._apps_pending: dict[int, int] = {}
        if self.provenance.enabled:
            self._prov_root = self.provenance.record(
                "workflow.submit", bundles=n, apps=len(self.dag.apps),
            )
        if restore is not None:
            self._restore(restore)
        else:
            for i in range(n):
                if self._indeg[i] == 0:
                    self.sim.schedule(0.0, self._launch_bundle, i)
        self.sim.run()
        missing = set(self.dag.apps) - set(self.runs)
        if missing:
            raise WorkflowError(f"apps never ran (broken DAG?): {sorted(missing)}")
        return self.runs

    @property
    def makespan(self) -> float:
        if not self.runs:
            return 0.0
        return max(r.finish for r in self.runs.values())

    # -- internals ------------------------------------------------------------------------

    def _resolve_context(self, context: dict[str, Any]) -> dict[str, Any]:
        return {k: (v() if callable(v) else v) for k, v in context.items()}

    def format_trace(self) -> str:
        """The execution trace as one line per event."""
        return "\n".join(str(ev) for ev in self.trace)

    def _launch_bundle(self, index: int) -> None:
        bundle = self.dag.bundles[index]
        apps = [self.dag.apps[a] for a in bundle.app_ids]
        gen = self._gen.setdefault(index, 0)
        if (index, gen) in self._launched:
            return  # a concurrent recovery path already enacted this gen
        self._launched.add((index, gen))
        # Dispatch is recorded before mapping, so a mapping-time partition
        # retry still has a dispatch ancestor in the why-chain.
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.dispatch", index, gen=gen,
                apps=list(bundle.app_ids),
            )
        tracer = self.tracer
        if tracer.enabled:
            bspan = tracer.begin_async(
                "workflow.bundle", bundle=index, gen=gen,
                apps=list(bundle.app_ids),
            )
            self._bundle_spans[(index, gen)] = bspan
            for parent in sorted(self.dag.bundle_parents(index)):
                pspan = self._done_bundle_spans.get(parent)
                if pspan is not None:
                    tracer.link(pspan, bspan, "dep")
        self.trace.append(TraceEvent(
            time=self.sim.now, event="bundle_launched", bundle=index,
            detail=f"apps={list(bundle.app_ids)}",
        ))
        mapper, context = self._mappers.get(index, (self.default_mapper, {}))
        resolved = self._resolve_context(context)
        # Concurrent bundles must not collide: restrict to idle clients.
        resolved.setdefault("available_cores", self.server.idle_cores())
        try:
            if tracer.enabled:
                with tracer.span(
                    "workflow.map", bundle=index, mapper=type(mapper).__name__
                ):
                    mapping = mapper.map_bundle(apps, self.cluster, **resolved)
            else:
                mapping = mapper.map_bundle(apps, self.cluster, **resolved)
        except (NetworkPartitionError, QuorumError) as exc:
            # Data-locality lookups cross the DHT; an active cut stalls the
            # mapping decision the same way it stalls the bundle body.
            self._retry_after_partition(index, gen, exc)
            return
        except (ScheduleError, LookupError_) as exc:
            if (
                self.injector is not None
                and self.injector.plan.has_partitions
                and self.injector.partition_active()
            ):
                self._retry_after_partition(index, gen, exc)
                return
            raise
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.place", index, gen=gen,
                mapper=type(mapper).__name__,
                nodes=sorted(mapping.nodes_used()),
                alternatives=len(resolved.get("available_cores") or ()),
            )
        groups = form_groups(apps, mapping)
        for app in apps:
            for rank in range(app.ntasks):
                self.server.assign_task(mapping.core_of(app.app_id, rank),
                                        app.app_id, rank)
        self._apps_pending[index] = len(apps)
        now = self.sim.now
        # Gray-failure bookkeeping for this launch: nominal and effective
        # (slow-node inflated) durations feed the straggler detector.
        slow = (
            self.injector is not None and bool(self.injector.plan.slow_nodes)
        )
        base_durs: dict[int, float] = {}
        eff_durs: dict[int, float] = {}
        try:
            for app in apps:
                self._completed.discard(app.app_id)
                ctx = AppContext(
                    app=app,
                    group=groups[app.app_id],
                    mapping=mapping,
                    start_time=now,
                    engine=self,
                    generation=gen,
                )
                if tracer.enabled:
                    aspan = tracer.begin_async(
                        "workflow.app", app=app.app_id, bundle=index, gen=gen,
                        app_name=app.name, tasks=app.ntasks,
                    )
                    self._app_spans[(app.app_id, gen)] = aspan
                    tracer.link(self._bundle_spans[(index, gen)], aspan,
                                "dispatch")
                routine = self._routines.get(app.app_id, lambda _ctx: 0.0)
                if tracer.enabled:
                    with tracer.span(
                        "workflow.routine", app=app.app_id, bundle=index
                    ) as rspan:
                        tracer.link(aspan, rspan, "execute")
                        duration = routine(ctx)
                else:
                    duration = routine(ctx)
                duration = 0.0 if duration is None else float(duration)
                if duration < 0:
                    raise WorkflowError(
                        f"routine of app {app.app_id} returned negative duration"
                    )
                spill_w = spill_r = 0.0
                if self.spill_probe is not None:
                    spill_w, spill_r = self.spill_probe()
                finish = now + duration
                if slow and duration > 0:
                    # Work on slowed nodes takes longer: walk the plan's
                    # slowdown windows for the app's node set.
                    app_nodes = {
                        self.cluster.node_of_core(c)
                        for c in mapping.cores_of_app(app.app_id).values()
                    }
                    finish = self.injector.slowed_finish(
                        app_nodes, now, duration
                    )
                    if finish > now + duration:
                        self.injector.record(
                            "slow_node_hit",
                            f"app={app.app_id} nominal={duration:.6g}s "
                            f"effective={finish - now:.6g}s",
                        )
                base_durs[app.app_id] = duration
                eff_durs[app.app_id] = finish - now
                self.runs[app.app_id] = AppRun(
                    app_id=app.app_id, start=now,
                    finish=finish + spill_w + spill_r,
                    mapping=mapping,
                )
                self.trace.append(TraceEvent(
                    time=now, event="app_started", bundle=index,
                    app_id=app.app_id,
                    detail=f"{app.ntasks} tasks on "
                           f"{len(mapping.nodes_used())} nodes",
                ))
                if spill_w or spill_r:
                    # Deep-memory traffic extends the app past its compute
                    # window: compute hop, then spill-write and read-back
                    # hops, each billed to its own critical-path category.
                    self.sim.schedule(
                        finish - now, self._advance_spill,
                        index, app.app_id, gen, spill_w, spill_r,
                        category="compute",
                    )
                else:
                    self.sim.schedule(
                        finish - now, self._complete_app,
                        index, app.app_id, gen,
                        category="compute",
                    )
            if self.speculation_threshold is not None and slow and len(apps) > 1:
                self._arm_speculation(index, gen, base_durs, eff_durs)
        except DataLostError as exc:
            self._retry_after_data_loss(index, gen, exc)
        except (NetworkPartitionError, QuorumError) as exc:
            self._retry_after_partition(index, gen, exc)
        except StaleWriteError as exc:
            self._abandon_stale_bundle(index, gen, exc)
        except MemoryPressureError as exc:
            self._retry_after_memory_pressure(index, gen, exc)
        except (ScheduleError, LookupError_) as exc:
            # Degraded metadata during an active cut looks like missing
            # coverage (registrations deferred on cut-off DHT cores); wait
            # the partition out instead of failing the run.
            if (
                self.injector is not None
                and self.injector.plan.has_partitions
                and self.injector.partition_active()
            ):
                self._retry_after_partition(index, gen, exc)
            else:
                raise

    def _retry_after_data_loss(self, index: int, gen: int, exc: Exception) -> None:
        """A bundle's get hit an object with zero surviving copies.

        Back off and re-launch the whole bundle: the resilience manager
        re-enacts the lost data's producer in parallel, so the retry finds
        the space repopulated. A bounded retry budget keeps a truly
        unrecoverable loss from looping forever.
        """
        attempts = self._data_loss_attempts.get(index, 0) + 1
        self._data_loss_attempts[index] = attempts
        if attempts > self.max_data_loss_retries:
            raise WorkflowError(
                f"bundle {index} still hits lost data after "
                f"{self.max_data_loss_retries} retries: {exc}"
            ) from exc
        bundle = self.dag.bundles[index]
        self._gen[index] = gen + 1
        span = self._bundle_spans.pop((index, gen), None)
        if span is not None:
            self.tracer.end_async(span, aborted=True)
        for app_id in bundle.app_ids:
            span = self._app_spans.pop((app_id, gen), None)
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            self.server.release_app(app_id)
        self.trace.append(TraceEvent(
            time=self.sim.now, event="bundle_data_loss_retry", bundle=index,
            detail=f"attempt={attempts} ({exc})",
        ))
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.data_loss_retry", index, gen=gen + 1,
                attempt=attempts, error=type(exc).__name__,
            )
        self.sim.schedule(
            self.data_loss_retry, self._launch_bundle, index,
            category="recovery",
        )

    def _retry_after_partition(self, index: int, gen: int, exc: Exception) -> None:
        """A bundle's puts or gets were blocked by an active network cut.

        Unlike data loss, the data (or its missing quorum acks) still
        exists on the far side, so the cheap move is to *wait the cut out*:
        back off and re-launch under a bumped generation (stale-write
        fencing relies on the bump). Retry events carry the
        ``partition.wait`` category — ``quorum.degraded`` for quorum
        shortfalls — so critical-path attribution bills the stall to the
        partition, not to compute. Past ``partition_deadline`` (or the
        retry-count budget) the bundle escalates to the data-loss rung: by
        then the resilience manager has fenced the unreachable side off and
        re-replicated, so that path repopulates from the majority.
        """
        now = self.sim.now
        since = self._partition_wait_since.setdefault(index, now)
        attempts = self._partition_attempts.get(index, 0) + 1
        self._partition_attempts[index] = attempts
        quorum = isinstance(exc, QuorumError)
        self._partition_count(
            "workflow.quorum.retries" if quorum
            else "workflow.partition.retries"
        )
        deadline_passed = (
            self.partition_deadline is not None
            and now - since >= self.partition_deadline
        )
        if deadline_passed or attempts > self.max_partition_retries:
            self._partition_count("workflow.partition.escalations")
            if self.injector is not None:
                self.injector.record(
                    "partition_wait_escalated",
                    f"bundle={index} waited={now - since:.6g}s "
                    f"attempts={attempts}",
                )
            if self.provenance.enabled:
                self._prov_chain(
                    "bundle.partition_escalate", index,
                    waited=now - since, attempts=attempts,
                )
            self._retry_after_data_loss(index, gen, exc)
            return
        bundle = self.dag.bundles[index]
        self._gen[index] = gen + 1
        span = self._bundle_spans.pop((index, gen), None)
        if span is not None:
            self.tracer.end_async(span, aborted=True)
        for app_id in bundle.app_ids:
            span = self._app_spans.pop((app_id, gen), None)
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            self.server.release_app(app_id)
        self.trace.append(TraceEvent(
            time=now, event="bundle_partition_wait", bundle=index,
            detail=f"attempt={attempts} ({exc})",
        ))
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.partition_wait", index, gen=gen + 1,
                attempt=attempts, quorum=quorum,
                error=type(exc).__name__,
            )
        self.sim.schedule(
            self.partition_retry, self._launch_bundle, index,
            category="quorum.degraded" if quorum else "partition.wait",
        )

    def _retry_after_memory_pressure(
        self, index: int, gen: int, exc: Exception
    ) -> None:
        """A bundle's put (or spill restore) could not be admitted.

        Nothing is lost — the producer still holds its data; the target
        store is simply over its high watermark and the reclaim ladder came
        up short. The cheap move is to *wait space out*: back off on the
        sim clock and re-launch under a bumped generation, giving consumers
        time to drain the space (retry events carry the ``mem.wait``
        category so critical-path attribution bills the stall to memory
        pressure, not compute). Past the retry budget the bundle escalates
        to the data-loss rung.
        """
        attempts = self._memory_attempts.get(index, 0) + 1
        self._memory_attempts[index] = attempts
        self._partition_count("workflow.memory.retries")
        if attempts > self.max_memory_retries:
            self._partition_count("workflow.memory.escalations")
            if self.injector is not None:
                self.injector.record(
                    "memory_wait_escalated",
                    f"bundle={index} attempts={attempts}",
                )
            if self.provenance.enabled:
                self._prov_chain(
                    "bundle.memory_escalate", index, attempts=attempts,
                )
            self._retry_after_data_loss(index, gen, exc)
            return
        bundle = self.dag.bundles[index]
        self._gen[index] = gen + 1
        span = self._bundle_spans.pop((index, gen), None)
        if span is not None:
            self.tracer.end_async(span, aborted=True)
        for app_id in bundle.app_ids:
            span = self._app_spans.pop((app_id, gen), None)
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            self.server.release_app(app_id)
        self.trace.append(TraceEvent(
            time=self.sim.now, event="bundle_memory_wait", bundle=index,
            detail=f"attempt={attempts} ({exc})",
        ))
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.memory_wait", index, gen=gen + 1,
                attempt=attempts, error=type(exc).__name__,
            )
        self.sim.schedule(
            self.memory_retry, self._launch_bundle, index,
            category="mem.wait",
        )

    def _advance_spill(
        self, index: int, app_id: int, gen: int,
        spill_w: float, spill_r: float,
    ) -> None:
        """Walk an app's deep-memory tail: spill writes, then read-backs.

        Each hop is its own simulated event so the ``spill.write`` and
        ``spill.read`` intervals tile the app's extension exactly.
        """
        if spill_w:
            self.sim.schedule(
                spill_w, self._advance_spill, index, app_id, gen,
                0.0, spill_r, category="spill.write",
            )
            return
        if spill_r:
            self.sim.schedule(
                spill_r, self._complete_app, index, app_id, gen,
                category="spill.read",
            )
            return
        self._complete_app(index, app_id, gen)

    def _abandon_stale_bundle(self, index: int, gen: int, exc: Exception) -> None:
        """This enactment's writes were fenced off as stale.

        A higher write generation already owns the logical objects — the
        healed-minority case: majority-side re-dispatch committed first.
        A superseded instance simply stands down; an instance that is
        still the bundle's latest generation re-launches under a bumped
        one so its retry clears the fence.
        """
        self._partition_count("workflow.partition.stale_abandons")
        if self.injector is not None:
            self.injector.record(
                "stale_bundle_abandoned", f"bundle={index} gen={gen} ({exc})"
            )
        span = self._bundle_spans.pop((index, gen), None)
        if span is not None:
            self.tracer.end_async(span, aborted=True)
        for app_id in self.dag.bundles[index].app_ids:
            span = self._app_spans.pop((app_id, gen), None)
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            self.server.release_app(app_id)
        self.trace.append(TraceEvent(
            time=self.sim.now, event="bundle_stale_abandoned", bundle=index,
            detail=f"gen={gen} ({exc})",
        ))
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.stale_abandon", index, gen=gen,
                error=type(exc).__name__,
            )
        if gen == self._gen.get(index, 0):
            self._gen[index] = gen + 1
            self.sim.schedule(
                self.partition_retry, self._launch_bundle, index,
                category="partition.wait",
            )

    # -- straggler speculation -----------------------------------------------------

    def _arm_speculation(
        self,
        index: int,
        gen: int,
        base_durs: dict[int, float],
        eff_durs: dict[int, float],
    ) -> None:
        """Schedule straggler checks for a freshly launched bundle.

        An app whose effective (slow-node inflated) duration exceeds
        ``speculation_threshold x`` the median of its bundle peers is a
        straggler candidate: at the moment the threshold passes — when a
        healthy peer would long have finished — a speculative copy launches
        on a spare core and races the original (first finisher wins).
        """
        from statistics import median

        for app_id, eff in eff_durs.items():
            peers = [d for a, d in eff_durs.items() if a != app_id]
            med = median(peers)
            if med <= 0.0 or eff <= base_durs[app_id]:
                continue
            detect = self.speculation_threshold * med
            if eff <= detect:
                continue
            self.sim.schedule(
                detect, self._launch_speculation,
                index, app_id, gen, base_durs[app_id],
                category="speculation",
            )

    def _launch_speculation(
        self, index: int, app_id: int, gen: int, base_duration: float
    ) -> None:
        """Start the speculative copy of a straggling app, if still useful."""
        if gen != self._gen.get(index, 0) or app_id in self._completed:
            return
        idle = self.server.idle_cores()
        if not idle:
            return  # no spare capacity to speculate on
        # Prefer the least-slowed spare node; core id breaks ties.
        core = min(
            idle,
            key=lambda c: (
                self.injector.slowdown_factor(self.cluster.node_of_core(c)),
                c,
            ),
        )
        node = self.cluster.node_of_core(core)
        now = self.sim.now
        spec_finish = self.injector.slowed_finish([node], now, base_duration)
        self._spec_count("workflow.speculation.launched")
        self.injector.record(
            "speculation_launched", f"app={app_id} core={core}"
        )
        self.trace.append(TraceEvent(
            time=now, event="speculation_launched", bundle=index,
            app_id=app_id, detail=f"core={core}",
        ))
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.speculate", index, app=app_id, core=core, node=node,
            )
        if self.tracer.enabled:
            sspan = self.tracer.begin_async(
                "speculation.run", app=app_id, bundle=index, gen=gen, core=core,
            )
            orig = self._app_spans.get((app_id, gen))
            if orig is not None:
                self.tracer.link(orig, sspan, "speculate")
            self._spec_spans[(app_id, gen)] = sspan
        self.sim.schedule(
            spec_finish - now, self._complete_speculation, index, app_id, gen,
            category="speculation",
        )

    def _complete_speculation(self, index: int, app_id: int, gen: int) -> None:
        """The speculative copy finished; win the race unless the original
        already did (the loser is simply cancelled)."""
        if gen != self._gen.get(index, 0):
            return
        span = self._spec_spans.pop((app_id, gen), None)
        if app_id in self._completed:
            self._spec_count("workflow.speculation.cancelled")
            self.trace.append(TraceEvent(
                time=self.sim.now, event="speculation_cancelled", bundle=index,
                app_id=app_id, detail="original finished first",
            ))
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            return
        self._spec_count("workflow.speculation.wins")
        self.injector.record("speculation_won", f"app={app_id}")
        run = self.runs.get(app_id)
        if run is not None:
            run.finish = self.sim.now
        self.trace.append(TraceEvent(
            time=self.sim.now, event="speculation_won", bundle=index,
            app_id=app_id,
        ))
        if self.provenance.enabled:
            self._prov_chain("bundle.speculation_won", index, app=app_id)
        if span is not None:
            self.tracer.end_async(span)
        self._complete_app(index, app_id, gen)

    def _complete_app(self, bundle_index: int, app_id: int, gen: int = 0) -> None:
        if gen != self._gen.get(bundle_index, 0):
            # Completion of an enactment superseded by a fault re-dispatch.
            return
        if app_id in self._completed:
            # The speculation race's first finisher already completed this
            # app; the straggling original is cancelled on arrival.
            return
        self._completed.add(app_id)
        self.trace.append(TraceEvent(
            time=self.sim.now, event="app_completed", bundle=bundle_index,
            app_id=app_id,
        ))
        span = self._app_spans.pop((app_id, gen), None)
        if span is not None:
            self.tracer.end_async(span)
        self.server.release_app(app_id)
        self._apps_pending[bundle_index] -= 1
        if self._apps_pending[bundle_index] == 0:
            # A later cut blocking this bundle again starts a fresh wait
            # window; the old one must not pre-expire its deadline.
            self._partition_wait_since.pop(bundle_index, None)
            self._partition_attempts.pop(bundle_index, None)
            self._memory_attempts.pop(bundle_index, None)
            span = self._bundle_spans.pop((bundle_index, gen), None)
            if span is not None:
                self.tracer.end_async(span)
                self._done_bundle_spans[bundle_index] = span
            done_rid: "int | None" = None
            if self.provenance.enabled:
                # Exactly one terminal record per bundle: a bundle that
                # completes again after a post-completion re-enactment
                # (crash regenerated its output) is "regenerated".
                kind = (
                    "bundle.regenerated"
                    if bundle_index in self._prov_completed
                    else "bundle.complete"
                )
                self._prov_completed.add(bundle_index)
                done_rid = self._prov_chain(kind, bundle_index, gen=gen)
            for child in sorted(self._bundle_children[bundle_index]):
                self._indeg[child] -= 1
                if self._indeg[child] == 0:
                    # A child's first dispatch is caused by the parent
                    # completion that unblocked it.
                    if done_rid is not None and child not in self._prov_last:
                        self._prov_last[child] = done_rid
                    self.sim.schedule(0.0, self._launch_bundle, child)

    # -- checkpoint / restart --------------------------------------------------------

    def checkpoint_state(self) -> dict:
        """JSON-serializable snapshot of enactment progress.

        Captures run records (with task placements), per-bundle generation
        and pending counters, and which applications have completed — enough
        for :meth:`run` with ``restore=`` to resume without re-executing any
        routine that already ran (their side effects live in the space
        manifest captured alongside this state).
        """
        if not self._executed:
            raise CheckpointError("cannot checkpoint before enactment starts")
        runs = []
        for app_id, run in sorted(self.runs.items()):
            placement = (
                sorted(run.mapping.cores_of_app(app_id).items())
                if run.mapping is not None else []
            )
            runs.append({
                "app_id": app_id,
                "bundle": self.bundle_index_of(app_id),
                "start": run.start,
                "finish": run.finish,
                "placement": placement,
                "done": app_id in self._completed,
            })
        return {
            "time": self.sim.now,
            "runs": runs,
            "gen": {str(i): g for i, g in self._gen.items()},
            "reenactments": {str(i): n for i, n in self.reenactments.items()},
            "apps_pending": {str(i): p for i, p in self._apps_pending.items()},
            "indeg": list(self._indeg),
        }

    def _restore(self, state: dict) -> None:
        now = self.sim.now
        if state["time"] > now + 1e-9:
            raise CheckpointError(
                f"checkpoint was captured at t={state['time']}, but the sim "
                f"clock stands at t={now}; build the SimEngine with "
                "start_time=checkpoint.time"
            )
        self._indeg = [int(v) for v in state["indeg"]]
        self._gen = {int(k): v for k, v in state["gen"].items()}
        self.reenactments = {
            int(k): v for k, v in state["reenactments"].items()
        }
        self._apps_pending = {
            int(k): v for k, v in state["apps_pending"].items()
        }
        # Pre-checkpoint crashes were armed as pre-existing state; their
        # execution clients must leave the pool the same way.
        if self.injector is not None:
            for node in sorted(self.injector.crashed_nodes()):
                for core in self.cluster.cores_of_node(node):
                    if self.server.is_registered(core):
                        self.server.unregister_client(core)
        for rec in state["runs"]:
            app_id = rec["app_id"]
            mapping = None
            if rec["placement"]:
                mapping = MappingResult(self.cluster)
                for rank, core in rec["placement"]:
                    mapping.assign((app_id, int(rank)), int(core))
            self.runs[app_id] = AppRun(
                app_id=app_id, start=rec["start"], finish=rec["finish"],
                mapping=mapping,
            )
            if rec["done"]:
                self._completed.add(app_id)
                continue
            # In flight at capture time: re-occupy its cores and re-schedule
            # the completion (the routine itself already ran pre-checkpoint).
            index = rec["bundle"]
            if mapping is not None:
                for rank, core in mapping.cores_of_app(app_id).items():
                    self.server.assign_task(core, app_id, rank)
            self.sim.schedule_at(
                max(rec["finish"], now), self._complete_app, index, app_id,
                self._gen.get(index, 0),
            )
        # Bundles whose parents completed but whose zero-delay launch event
        # was still queued at capture time never made it into the state:
        # launch anything unblocked and not yet launched.
        for i in range(len(self.dag.bundles)):
            if self._indeg[i] == 0 and i not in self._apps_pending:
                self.sim.schedule(0.0, self._launch_bundle, i)

    # -- fault handling -----------------------------------------------------------------

    def handle_node_crash(self, node: int) -> None:
        """Re-dispatch work hit by a node crash (public entry point).

        In resilience mode (``defer_crash_redispatch=True``) the failure
        detector — not the injector — decides *when* the workflow learns of
        a crash; the resilience manager calls this at detection time.
        """
        self._on_node_crash(node)

    def reenact_bundle(self, index: int, reason: str = "") -> None:
        """Re-enact one bundle, superseding any in-flight enactment.

        The last rung of the recovery ladder: when every replica of an
        object is gone, re-running the bundle that produced it regenerates
        the data. Completions of the superseded enactment are ignored via
        the generation counter; a completed bundle simply runs again (its
        puts are idempotent), without re-triggering its children.
        """
        if not 0 <= index < len(self.dag.bundles):
            raise WorkflowError(f"bundle index {index} out of range")
        if not hasattr(self, "_apps_pending"):
            raise WorkflowError("engine has not started enactment")
        old_gen = self._gen.get(index, 0)
        self._gen[index] = old_gen + 1
        self.reenactments[index] = self.reenactments.get(index, 0) + 1
        span = self._bundle_spans.pop((index, old_gen), None)
        if span is not None:
            self.tracer.end_async(span, aborted=True)
        for app_id in self.dag.bundles[index].app_ids:
            span = self._app_spans.pop((app_id, old_gen), None)
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            self.server.release_app(app_id)
        self.trace.append(TraceEvent(
            time=self.sim.now, event="bundle_reenacted", bundle=index,
            detail=reason,
        ))
        if self.provenance.enabled:
            self._prov_chain(
                "bundle.reenact", index, gen=old_gen + 1,
                rung="reenactment", reason=reason,
            )
        self.sim.schedule(0.0, self._launch_bundle, index)

    def _on_node_crash(self, node: int) -> None:
        """React to a node crash fired by the fault injector.

        The crashed node's execution clients leave the pool, and every
        bundle with an in-flight application that had tasks on the node is
        re-enacted: its mapper re-runs over the surviving idle cores (the
        paper's mapping machinery doubles as the re-dispatch policy) and all
        of its applications re-execute. Completions of the superseded
        enactment are ignored via a per-bundle generation counter.
        """
        now = self.sim.now
        crashed = set(self.cluster.cores_of_node(node))
        self.trace.append(TraceEvent(
            time=now, event="node_crashed", bundle=-1, detail=f"node={node}",
        ))
        for core in sorted(crashed):
            if self.server.is_registered(core):
                self.server.unregister_client(core)
        if not hasattr(self, "_apps_pending"):
            return  # crash before enactment started: clients are gone, no re-dispatch
        for index, pending in list(self._apps_pending.items()):
            if pending <= 0:
                continue
            bundle = self.dag.bundles[index]
            hit = False
            for app_id in bundle.app_ids:
                run = self.runs.get(app_id)
                if run is None or run.finish <= now or run.mapping is None:
                    continue
                if not crashed.isdisjoint(run.mapping.cores_of_app(app_id).values()):
                    hit = True
                    break
            if not hit:
                continue
            old_gen = self._gen.get(index, 0)
            self._gen[index] = old_gen + 1
            self.reenactments[index] = self.reenactments.get(index, 0) + 1
            span = self._bundle_spans.pop((index, old_gen), None)
            if span is not None:
                self.tracer.end_async(span, aborted=True)
            for app_id in bundle.app_ids:
                span = self._app_spans.pop((app_id, old_gen), None)
                if span is not None:
                    self.tracer.end_async(span, aborted=True)
                self.server.release_app(app_id)
            self.trace.append(TraceEvent(
                time=now, event="bundle_reenacted", bundle=index,
                detail=f"after crash of node {node}",
            ))
            if self.provenance.enabled:
                self._prov_chain(
                    "bundle.reenact", index, gen=old_gen + 1,
                    rung="redispatch", reason=f"crash of node {node}",
                )
            self.sim.schedule(0.0, self._launch_bundle, index)
