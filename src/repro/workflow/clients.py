"""Execution clients: dynamic grouping and communicator emulation (§IV-C).

One execution client runs per core. After mapping, "each execution client is
colored with the value of application id ... Execution clients with the same
color form a processes group at runtime", then ``MPI_Comm_split`` creates a
communicator per group with "the computation task's process rank value to
control rank assignment within the group".

:func:`comm_split` reproduces exactly the MPI semantics: clients supply a
(color, key) pair; one group forms per color; ranks are assigned by
ascending key (ties broken by the caller's id, as MPI does).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.mapping.base import MappingResult
from repro.core.task import AppSpec
from repro.errors import RegistrationError, WorkflowError

__all__ = ["ClientState", "ExecutionClient", "CommGroup", "comm_split", "form_groups"]


class ClientState(enum.Enum):
    IDLE = "idle"
    ASSIGNED = "assigned"
    RUNNING = "running"


@dataclass
class ExecutionClient:
    """One per core; tracks its color (app id) and assigned task."""

    core: int
    state: ClientState = ClientState.IDLE
    color: int | None = None
    task_rank: int | None = None

    def assign(self, app_id: int, rank: int) -> None:
        if self.state is not ClientState.IDLE:
            raise RegistrationError(
                f"client on core {self.core} is {self.state.value}, not idle"
            )
        self.color = app_id
        self.task_rank = rank
        self.state = ClientState.ASSIGNED

    def release(self) -> None:
        self.color = None
        self.task_rank = None
        self.state = ClientState.IDLE


@dataclass(frozen=True)
class CommGroup:
    """An MPI-communicator-like group: color + rank -> core table."""

    color: int
    core_of_rank: dict[int, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.core_of_rank)

    def core(self, rank: int) -> int:
        try:
            return self.core_of_rank[rank]
        except KeyError:
            raise WorkflowError(
                f"rank {rank} not in group of color {self.color}"
            ) from None

    def ranks(self) -> list[int]:
        return sorted(self.core_of_rank)


def comm_split(members: list[tuple[int, int, int]]) -> dict[int, CommGroup]:
    """``MPI_Comm_split`` semantics over ``(core, color, key)`` triples.

    Returns one :class:`CommGroup` per color with dense ranks ``0..size-1``
    ordered by (key, core).
    """
    by_color: dict[int, list[tuple[int, int]]] = {}
    seen_cores: set[int] = set()
    for core, color, key in members:
        if core in seen_cores:
            raise WorkflowError(f"core {core} appears twice in comm_split")
        seen_cores.add(core)
        by_color.setdefault(color, []).append((key, core))
    groups: dict[int, CommGroup] = {}
    for color, entries in by_color.items():
        entries.sort()
        groups[color] = CommGroup(
            color=color,
            core_of_rank={rank: core for rank, (_, core) in enumerate(entries)},
        )
    return groups


def form_groups(
    apps: list[AppSpec], mapping: MappingResult
) -> dict[int, CommGroup]:
    """Color the mapped execution clients and split them into app groups.

    Uses each task's process rank as the split key, so group rank ==
    task rank — the paper's rank-assignment control.
    """
    members: list[tuple[int, int, int]] = []
    for app in apps:
        for rank in range(app.ntasks):
            core = mapping.core_of(app.app_id, rank)
            members.append((core, app.app_id, rank))
    groups = comm_split(members)
    for app in apps:
        group = groups.get(app.app_id)
        if group is None or group.size != app.ntasks:
            raise WorkflowError(
                f"group for app {app.app_id} has wrong size"
            )
        for rank in range(app.ntasks):
            if group.core(rank) != mapping.core_of(app.app_id, rank):
                raise WorkflowError(
                    f"rank assignment mismatch for app {app.app_id} rank {rank}"
                )
    return groups
