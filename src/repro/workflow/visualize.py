"""ASCII rendering of workflow DAGs.

Gives the CLI ``dag`` command (and debugging sessions) a quick picture of
the enactment structure: bundles laid out in topological waves, apps inside
their bundles, and the dependency edges listed per wave.
"""

from __future__ import annotations

from repro.workflow.dag import WorkflowDAG

__all__ = ["render_dag"]


def render_dag(dag: WorkflowDAG) -> str:
    """Render the bundle-level schedule as topological waves.

    Output shape::

        wave 0:  [1:atmosphere]
        wave 1:  [2:land  3:sea-ice]        <- after: 1
    """
    order = dag.bundle_schedule()
    # Wave index = longest-path depth in the bundle graph.
    depth: dict[int, int] = {}
    for b in order:
        parents = dag.bundle_parents(b)
        depth[b] = 1 + max((depth[p] for p in parents), default=-1)
    waves: dict[int, list[int]] = {}
    for b, d in depth.items():
        waves.setdefault(d, []).append(b)

    lines = []
    for d in sorted(waves):
        cells = []
        after: set[int] = set()
        for b in sorted(waves[d]):
            bundle = dag.bundles[b]
            names = "  ".join(
                f"{a}:{dag.apps[a].name}" for a in bundle.app_ids
            )
            cells.append(f"[{names}]")
            for app_id in bundle.app_ids:
                after.update(dag.parents(app_id))
        line = f"wave {d}:  " + "  ".join(cells)
        if after:
            line += f"        <- after: {', '.join(str(a) for a in sorted(after))}"
        lines.append(line)
    return "\n".join(lines)
