"""Workflow management: DAG + bundles, description files, server, engine."""

from repro.workflow.clients import (
    ClientState,
    CommGroup,
    ExecutionClient,
    comm_split,
    form_groups,
)
from repro.workflow.dag import Bundle, WorkflowDAG
from repro.workflow.engine import AppContext, AppRun, WorkflowEngine
from repro.workflow.parser import ParsedDag, build_workflow, parse_dag, write_dag
from repro.workflow.server import WorkflowManagementServer
from repro.workflow.visualize import render_dag

__all__ = [
    "Bundle",
    "WorkflowDAG",
    "ParsedDag",
    "parse_dag",
    "write_dag",
    "build_workflow",
    "ClientState",
    "ExecutionClient",
    "CommGroup",
    "comm_split",
    "form_groups",
    "WorkflowManagementServer",
    "AppContext",
    "AppRun",
    "WorkflowEngine",
    "render_dag",
]
