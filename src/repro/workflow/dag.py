"""DAG-based workflow model with bundles (paper §III-B).

A workflow is a DAG whose vertices are parallel applications; edges are data
dependencies between *sequentially* coupled applications. The paper extends
the classic representation "with the concept of a 'bundle' which represents
a group of parallel applications that need to be scheduled simultaneously".

Every application belongs to exactly one bundle (singleton bundles for apps
that run alone); edges never connect two apps of the same bundle (they run
concurrently — ordering them would be contradictory); and the bundle-level
graph must be acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.task import AppSpec
from repro.errors import WorkflowError

__all__ = ["Bundle", "WorkflowDAG"]


@dataclass(frozen=True)
class Bundle:
    """A set of applications scheduled simultaneously."""

    app_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        ids = tuple(sorted(set(self.app_ids)))
        if not ids:
            raise WorkflowError("bundle must contain at least one application")
        object.__setattr__(self, "app_ids", ids)

    def __contains__(self, app_id: int) -> bool:
        return app_id in self.app_ids

    def __len__(self) -> int:
        return len(self.app_ids)


class WorkflowDAG:
    """Applications + dependency edges + bundles."""

    def __init__(
        self,
        apps: Iterable[AppSpec],
        edges: Iterable[tuple[int, int]] = (),
        bundles: Iterable[Bundle] = (),
    ) -> None:
        self.apps: dict[int, AppSpec] = {}
        for app in apps:
            if app.app_id in self.apps:
                raise WorkflowError(f"duplicate app id {app.app_id}")
            self.apps[app.app_id] = app
        if not self.apps:
            raise WorkflowError("workflow must contain at least one application")

        self.edges: list[tuple[int, int]] = []
        for parent, child in edges:
            if parent not in self.apps or child not in self.apps:
                raise WorkflowError(f"edge ({parent}, {child}) references unknown app")
            if parent == child:
                raise WorkflowError(f"self-edge on app {parent}")
            self.edges.append((parent, child))

        bundle_list = list(bundles)
        covered = [a for b in bundle_list for a in b.app_ids]
        if len(covered) != len(set(covered)):
            raise WorkflowError("an application appears in more than one bundle")
        unknown = set(covered) - set(self.apps)
        if unknown:
            raise WorkflowError(f"bundles reference unknown apps: {sorted(unknown)}")
        # Apps not in any explicit bundle get singleton bundles.
        missing = sorted(set(self.apps) - set(covered))
        bundle_list.extend(Bundle((a,)) for a in missing)
        self.bundles: list[Bundle] = bundle_list

        self._bundle_of: dict[int, int] = {}
        for i, b in enumerate(self.bundles):
            for a in b.app_ids:
                self._bundle_of[a] = i

        self._validate()

    # -- validation ------------------------------------------------------------------

    def _validate(self) -> None:
        for parent, child in self.edges:
            if self._bundle_of[parent] == self._bundle_of[child]:
                raise WorkflowError(
                    f"edge ({parent}, {child}) connects apps in the same bundle"
                )
        # Acyclicity at the bundle level.
        try:
            self.bundle_schedule()
        except WorkflowError:
            raise
        # Domain compatibility inside bundles (they will be mapped together).
        for b in self.bundles:
            domains = {self.apps[a].descriptor.domain_size for a in b.app_ids}
            if len(domains) > 1:
                raise WorkflowError(
                    f"bundle {b.app_ids} mixes domains {sorted(domains)}"
                )

    # -- structure queries ---------------------------------------------------------------

    def bundle_of(self, app_id: int) -> Bundle:
        try:
            return self.bundles[self._bundle_of[app_id]]
        except KeyError:
            raise WorkflowError(f"unknown app id {app_id}") from None

    def parents(self, app_id: int) -> list[int]:
        return sorted(p for p, c in self.edges if c == app_id)

    def children(self, app_id: int) -> list[int]:
        return sorted(c for p, c in self.edges if p == app_id)

    def roots(self) -> list[int]:
        have_parent = {c for _, c in self.edges}
        return sorted(a for a in self.apps if a not in have_parent)

    def bundle_parents(self, bundle_index: int) -> set[int]:
        """Indices of bundles that must complete before this one starts."""
        out = set()
        for app_id in self.bundles[bundle_index].app_ids:
            for p in self.parents(app_id):
                out.add(self._bundle_of[p])
        return out

    def bundle_schedule(self) -> list[int]:
        """Topological order of bundle indices (Kahn's algorithm).

        Raises :class:`WorkflowError` on a cycle.
        """
        n = len(self.bundles)
        indeg = [len(self.bundle_parents(i)) for i in range(n)]
        ready = sorted(i for i in range(n) if indeg[i] == 0)
        order: list[int] = []
        children: dict[int, set[int]] = {i: set() for i in range(n)}
        for i in range(n):
            for p in self.bundle_parents(i):
                children[p].add(i)
        while ready:
            i = ready.pop(0)
            order.append(i)
            for c in sorted(children[i]):
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != n:
            raise WorkflowError("workflow DAG contains a cycle")
        return order

    def __repr__(self) -> str:
        return (
            f"WorkflowDAG(apps={sorted(self.apps)}, edges={self.edges}, "
            f"bundles={[b.app_ids for b in self.bundles]})"
        )
