"""The workflow management server (paper §III-A, Fig 4).

Acts as the rendezvous point: execution clients register at bootstrap (the
Execution Client Management module keeps their "network addresses" — here,
core ids), and the server tracks availability and allocates clients to the
parallel applications of each bundle.
"""

from __future__ import annotations

from repro.errors import RegistrationError
from repro.hardware.cluster import Cluster
from repro.workflow.clients import ClientState, ExecutionClient

__all__ = ["WorkflowManagementServer"]


class WorkflowManagementServer:
    """Client registry + availability tracking."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._clients: dict[int, ExecutionClient] = {}
        #: optional :class:`~repro.obs.timeline.CoreUsage` — when set, task
        #: assignment and release keep its per-node busy counters current so
        #: the timeline collector can sample core occupancy in O(nodes)
        self.usage = None

    # -- registration (Execution Client Management) ---------------------------------

    def register_client(self, core: int) -> ExecutionClient:
        if not 0 <= core < self.cluster.total_cores:
            raise RegistrationError(f"core {core} out of range")
        if core in self._clients:
            raise RegistrationError(f"core {core} already registered")
        client = ExecutionClient(core=core)
        self._clients[core] = client
        return client

    def register_all(self) -> None:
        """Bootstrap one execution client per core of the cluster."""
        for core in self.cluster.cores():
            if core not in self._clients:
                self.register_client(core)

    def unregister_client(self, core: int) -> None:
        client = self._clients.pop(core, None)
        if client is None:
            raise RegistrationError(f"core {core} is not registered")
        if self.usage is not None and client.state is not ClientState.IDLE:
            # A busy client leaving the registry (node crash) frees its core.
            self.usage.release(self.cluster.node_of_core(core))

    def is_registered(self, core: int) -> bool:
        return core in self._clients

    def client(self, core: int) -> ExecutionClient:
        try:
            return self._clients[core]
        except KeyError:
            raise RegistrationError(f"core {core} is not registered") from None

    # -- availability / allocation ----------------------------------------------------

    @property
    def num_registered(self) -> int:
        return len(self._clients)

    def idle_cores(self) -> list[int]:
        return sorted(
            core
            for core, c in self._clients.items()
            if c.state is ClientState.IDLE
        )

    def allocate(self, num_cores: int) -> list[int]:
        """Reserve ``num_cores`` idle clients (lowest core ids first)."""
        idle = self.idle_cores()
        if len(idle) < num_cores:
            raise RegistrationError(
                f"requested {num_cores} clients, only {len(idle)} idle"
            )
        return idle[:num_cores]

    def assign_task(self, core: int, app_id: int, rank: int) -> None:
        self.client(core).assign(app_id, rank)
        if self.usage is not None:
            self.usage.acquire(self.cluster.node_of_core(core))

    def release_app(self, app_id: int) -> int:
        """Return every client colored ``app_id`` to the idle pool."""
        released = 0
        usage = self.usage
        for core, client in self._clients.items():
            if client.color == app_id:
                client.release()
                released += 1
                if usage is not None:
                    usage.release(self.cluster.node_of_core(core))
        return released
