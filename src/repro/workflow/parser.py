"""Parser/writer for the workflow description file (paper Listing 1).

The file format, verbatim from the paper::

    # Climate Modeling Workflow
    APP_ID 1
    APP_ID 2
    APP_ID 3
    PARENT_APPID 1 CHILD_APPID 2
    PARENT_APPID 1 CHILD_APPID 3
    BUNDLE 1
    BUNDLE 2 3

``#`` starts a comment; blank lines are ignored. We additionally allow an
optional ``DECOMP <app_id> <descriptor>`` line carrying the app's
decomposition descriptor in the :class:`DecompositionDescriptor` string
form, so a description file can be self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.task import AppSpec
from repro.domain.descriptor import DecompositionDescriptor
from repro.errors import DagParseError, DecompositionError
from repro.workflow.dag import Bundle, WorkflowDAG

__all__ = ["ParsedDag", "parse_dag", "write_dag", "build_workflow"]


@dataclass
class ParsedDag:
    """Raw structure read from a description file."""

    app_ids: list[int] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)
    bundles: list[tuple[int, ...]] = field(default_factory=list)
    decomps: dict[int, DecompositionDescriptor] = field(default_factory=dict)


def parse_dag(text: str) -> ParsedDag:
    """Parse a Listing-1 style description."""
    parsed = ParsedDag()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].upper()
        try:
            if keyword == "APP_ID":
                if len(tokens) != 2:
                    raise DagParseError("APP_ID takes exactly one id")
                app_id = int(tokens[1])
                if app_id in parsed.app_ids:
                    raise DagParseError(f"duplicate APP_ID {app_id}")
                parsed.app_ids.append(app_id)
            elif keyword == "PARENT_APPID":
                if len(tokens) != 4 or tokens[2].upper() != "CHILD_APPID":
                    raise DagParseError(
                        "expected 'PARENT_APPID <id> CHILD_APPID <id>'"
                    )
                parsed.edges.append((int(tokens[1]), int(tokens[3])))
            elif keyword == "BUNDLE":
                if len(tokens) < 2:
                    raise DagParseError("BUNDLE needs at least one app id")
                parsed.bundles.append(tuple(int(t) for t in tokens[1:]))
            elif keyword == "DECOMP":
                if len(tokens) < 3:
                    raise DagParseError("DECOMP needs an app id and a descriptor")
                try:
                    parsed.decomps[int(tokens[1])] = (
                        DecompositionDescriptor.from_string(" ".join(tokens[2:]))
                    )
                except DecompositionError as exc:
                    raise DagParseError(f"bad DECOMP descriptor: {exc}") from exc
            else:
                raise DagParseError(f"unknown keyword {tokens[0]!r}")
        except ValueError as exc:
            raise DagParseError(f"line {lineno}: non-integer id in {line!r}") from exc
        except DagParseError as exc:
            raise DagParseError(f"line {lineno}: {exc}") from None

    if not parsed.app_ids:
        raise DagParseError("description declares no applications")
    declared = set(parsed.app_ids)
    for p, c in parsed.edges:
        if p not in declared or c not in declared:
            raise DagParseError(f"edge ({p}, {c}) references undeclared app")
    for bundle in parsed.bundles:
        for a in bundle:
            if a not in declared:
                raise DagParseError(f"BUNDLE references undeclared app {a}")
    return parsed


def write_dag(dag: WorkflowDAG) -> str:
    """Render a workflow back to the description-file format."""
    lines = []
    for app_id in sorted(dag.apps):
        lines.append(f"APP_ID {app_id}")
    for parent, child in dag.edges:
        lines.append(f"PARENT_APPID {parent} CHILD_APPID {child}")
    for bundle in dag.bundles:
        lines.append("BUNDLE " + " ".join(str(a) for a in bundle.app_ids))
    for app_id in sorted(dag.apps):
        lines.append(f"DECOMP {app_id} {dag.apps[app_id].descriptor.to_string()}")
    return "\n".join(lines) + "\n"


def build_workflow(
    parsed: ParsedDag,
    specs: "dict[int, AppSpec] | None" = None,
    default_element_size: int = 8,
) -> WorkflowDAG:
    """Materialize a workflow from a parsed description.

    App specs come either from ``specs`` (keyed by app id) or from the
    file's own ``DECOMP`` lines; every declared app needs one or the other.
    """
    specs = dict(specs or {})
    apps: list[AppSpec] = []
    for app_id in parsed.app_ids:
        if app_id in specs:
            apps.append(specs[app_id])
        elif app_id in parsed.decomps:
            apps.append(
                AppSpec(
                    app_id=app_id,
                    name=f"app{app_id}",
                    descriptor=parsed.decomps[app_id],
                    element_size=default_element_size,
                )
            )
        else:
            raise DagParseError(
                f"no spec or DECOMP line for app {app_id}"
            )
    bundles = [Bundle(b) for b in parsed.bundles]
    return WorkflowDAG(apps=apps, edges=parsed.edges, bundles=bundles)
