"""A small discrete-event simulation engine.

The workflow engine runs DAG enactment on top of this: application launches,
completions, and coupling phases are events on a simulated clock. The engine
is deliberately minimal — a clock plus an event heap with deterministic
FIFO tie-breaking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.events import EventQueue

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

__all__ = ["SimEngine"]


class SimEngine:
    """Clock + event queue. Time is in seconds (floats).

    Passing a :class:`~repro.faults.injector.FaultInjector` arms its fault
    plan on this clock: node crashes and DHT-core failures become ordinary
    timed events, interleaved deterministically with workflow events.
    """

    def __init__(self, fault_injector: "FaultInjector | None" = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.arm(self)

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ----------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self._queue.push(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._queue.push(time, fn, *args)

    # -- execution ------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events (in time order) until the queue drains or the clock
        would pass ``until``. Returns the final clock value."""
        if self._running:
            raise SimulationError("engine is already running (no re-entrancy)")
        self._running = True
        try:
            while self._queue:
                t = self._queue.peek_time()
                assert t is not None
                if until is not None and t > until:
                    self._now = until
                    break
                ev = self._queue.pop()
                self._now = ev.time
                ev.fire()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        return len(self._queue)
