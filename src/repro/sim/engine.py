"""A small discrete-event simulation engine.

The workflow engine runs DAG enactment on top of this: application launches,
completions, and coupling phases are events on a simulated clock. The engine
is deliberately minimal — a clock plus a calendar event queue with
deterministic FIFO tie-breaking (see :mod:`repro.sim.events` for the
queue implementations and the ordering contract).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.obs.tracer import NULL_TRACER
from repro.sim.events import EventQueue

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.obs.tracer import NullTracer, Tracer

__all__ = ["SimEngine"]


class SimEngine:
    """Clock + event queue. Time is in seconds (floats).

    Passing a :class:`~repro.faults.injector.FaultInjector` arms its fault
    plan on this clock: node crashes and DHT-core failures become ordinary
    timed events, interleaved deterministically with workflow events.

    Passing a :class:`~repro.obs.tracer.Tracer` wraps each event dispatch in
    a ``sim.event`` span; the tracer's clock is bound to this engine's
    simulated time if it has not been bound elsewhere. The default is the
    shared no-op tracer, so the untraced dispatch loop pays one attribute
    check.
    """

    def __init__(
        self,
        fault_injector: "FaultInjector | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        start_time: float = 0.0,
        queue: Any = None,
    ) -> None:
        if start_time < 0:
            raise SimulationError(
                f"start time must be non-negative, got {start_time}"
            )
        #: ``queue`` swaps the scheduler implementation (any object with the
        #: EventQueue API) — the differential suite runs the same workload on
        #: the calendar queue and the reference heap this way.
        self._queue = EventQueue() if queue is None else queue
        self._now = float(start_time)
        self._running = False
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled and self.tracer.clock is None:
            self.tracer.clock = lambda: self._now
        #: events dispatched over this engine's lifetime (cheap diagnostics)
        self.events_fired = 0
        #: live view of the in-flight dispatch counter (set inside run();
        #: daemon probes — progress, timeline — read through dispatched())
        self._live_fired: "Callable[[], int] | None" = None
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.arm(self)

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ----------------------------------------------------------------

    def _note_origin(self, ev, category: "str | None") -> None:
        """Stamp the scheduling span on the event (tracing only).

        When the event later fires, the dispatch span links back to the
        span that scheduled it — the causal edge critical-path analysis
        follows across simulated delays. ``category`` names what the delay
        *is* (e.g. "compute" for an app's execution window) and rides on
        the link kind as ``sched.<category>``.
        """
        if self.tracer.enabled:
            ev.origin = self.tracer.current()
            ev.category = category

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        category: "str | None" = None,
    ) -> None:
        """Run ``fn(*args)`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self._note_origin(self._queue.push(self._now + delay, fn, *args), category)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        category: "str | None" = None,
    ) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._note_origin(self._queue.push(time, fn, *args), category)

    def schedule_daemon(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        category: "str | None" = None,
    ) -> None:
        """Like :meth:`schedule`, but the event never keeps the run alive.

        Periodic services (checkpoint ticks) reschedule themselves as
        daemon events; the run loop exits once only daemon events remain,
        so a self-rescheduling service cannot stall termination.
        """
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self._note_origin(
            self._queue.push(self._now + delay, fn, *args, daemon=True), category
        )

    # -- execution ------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events (in time order) until the queue drains or the clock
        would pass ``until``. Returns the final clock value."""
        if self._running:
            raise SimulationError("engine is already running (no re-entrancy)")
        self._running = True
        tracer = self.tracer
        queue = self._queue
        pop_if_before = queue.pop_if_before
        base = self.events_fired
        fired = 0
        self._live_fired = lambda: base + fired
        try:
            while queue.live_events:
                ev = pop_if_before(until)
                if ev is None:
                    # Head event lies strictly after the boundary: stop at it.
                    self._now = until  # type: ignore[assignment]
                    break
                self._now = ev.time
                fired += 1
                if tracer.enabled:
                    with tracer.span(
                        "sim.event",
                        fn=getattr(ev.fn, "__qualname__", repr(ev.fn)),
                    ) as span:
                        if ev.origin is not None:
                            tracer.link(
                                ev.origin, span,
                                "sched" if ev.category is None
                                else f"sched.{ev.category}",
                            )
                        ev.fire()
                else:
                    ev.fire()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self._live_fired = None
            self.events_fired += fired
        return self._now

    def pending(self) -> int:
        return len(self._queue)

    def dispatched(self) -> int:
        """Events dispatched so far — correct even mid-run.

        ``events_fired`` is folded in only when :meth:`run` returns (the
        hot loop counts in a local); daemon-event probes (the timeline
        collector, the progress reporter) fire *inside* the loop and need
        the live count, which this reads through a closure over the loop's
        counter.
        """
        return (self.events_fired if self._live_fired is None
                else self._live_fired())

    def publish_metrics(self, registry: Any) -> None:
        """Export engine/queue health into a metrics registry.

        Gauges (``sim.events_fired``, ``sim.queue.pending``, and — on the
        calendar queue — ``sim.queue.buckets``/``sim.queue.bucket_width``)
        are point-in-time and safe to publish repeatedly; the resize
        counter (``sim.queue.resizes{direction=...}``) transfers the
        queue's cumulative counts, so call this once per run (the scenario
        driver does, right after the engine drains).
        """
        registry.gauge("sim.events_fired").set(self.events_fired)
        registry.gauge("sim.queue.pending").set(len(self._queue))
        queue = self._queue
        if hasattr(queue, "num_buckets"):  # calendar-queue diagnostics
            registry.gauge("sim.queue.buckets").set(queue.num_buckets)
            registry.gauge("sim.queue.bucket_width").set(queue.bucket_width)
            resizes = registry.counter(
                "sim.queue.resizes", labelnames=("direction",)
            )
            resizes.inc(queue.resizes_grow, direction="grow")
            resizes.inc(queue.resizes_shrink, direction="shrink")
