"""Simulated MPI communication over execution-client groups.

The paper's applications are MPI codes: after ``comm_split`` builds one
communicator per application (:mod:`repro.workflow.clients`), their
intra-application traffic is point-to-point and collective MPI operations.
This module models the *data movement* of the common operations on a
:class:`~repro.workflow.clients.CommGroup`, issuing the constituent
transfers through HybridDART so shared-memory vs network accounting matches
the rest of the framework.

Collective algorithms follow the standard implementations (MPICH/OpenMPI
defaults): binomial-tree broadcast/reduce, ring allgather, pairwise
all-to-all, recursive-doubling allreduce — so the *byte volumes and who
talks to whom* are faithful even though no data is computed.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.transport.hybriddart import HybridDART
from repro.transport.message import TransferKind, TransferRecord
from repro.workflow.clients import CommGroup

__all__ = ["SimComm"]


class SimComm:
    """MPI-like operations on one communicator (CommGroup)."""

    def __init__(
        self,
        group: CommGroup,
        dart: HybridDART,
        app_id: int | None = None,
        kind: TransferKind = TransferKind.INTRA_APP,
    ) -> None:
        if group.size == 0:
            raise SimulationError("communicator must have at least one rank")
        self.group = group
        self.dart = dart
        self.app_id = group.color if app_id is None else app_id
        self.kind = kind

    @property
    def size(self) -> int:
        return self.group.size

    def _xfer(self, src_rank: int, dst_rank: int, nbytes: int) -> TransferRecord:
        return self.dart.transfer(
            src_core=self.group.core(src_rank),
            dst_core=self.group.core(dst_rank),
            nbytes=nbytes,
            kind=self.kind,
            app_id=self.app_id,
        )

    def _check_rank(self, rank: int) -> None:
        if rank not in self.group.core_of_rank:
            raise SimulationError(f"rank {rank} not in communicator")

    # -- point to point ------------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int) -> TransferRecord:
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise SimulationError("message size must be non-negative")
        return self._xfer(src, dst, nbytes)

    # -- collectives -----------------------------------------------------------------

    def bcast(self, root: int, nbytes: int) -> list[TransferRecord]:
        """Binomial-tree broadcast: ``ceil(log2 p)`` rounds."""
        self._check_rank(root)
        p = self.size
        recs = []
        # Virtual ranks relative to root.
        mask = 1
        while mask < p:
            for vrank in range(0, p, 2 * mask):
                peer = vrank + mask
                if peer < p:
                    src = (vrank + root) % p
                    dst = (peer + root) % p
                    recs.append(self._xfer(src, dst, nbytes))
            mask <<= 1
        return recs

    def reduce(self, root: int, nbytes: int) -> list[TransferRecord]:
        """Binomial-tree reduction (reverse of bcast)."""
        self._check_rank(root)
        p = self.size
        recs = []
        mask = 1
        rounds = []
        while mask < p:
            for vrank in range(0, p, 2 * mask):
                peer = vrank + mask
                if peer < p:
                    rounds.append((peer, vrank))
            mask <<= 1
        for src_v, dst_v in reversed(rounds):
            recs.append(self._xfer((src_v + root) % p, (dst_v + root) % p, nbytes))
        return recs

    def allreduce(self, nbytes: int) -> list[TransferRecord]:
        """Recursive doubling (power-of-two ranks exchange pairwise).

        Non-power-of-two sizes use the standard pre/post folding steps.
        """
        p = self.size
        recs = []
        pof2 = 1
        while pof2 * 2 <= p:
            pof2 *= 2
        rem = p - pof2
        # Fold the remainder into the power-of-two set.
        for i in range(rem):
            recs.append(self._xfer(pof2 + i, i, nbytes))
        mask = 1
        while mask < pof2:
            for rank in range(pof2):
                peer = rank ^ mask
                if rank < peer:
                    recs.append(self._xfer(rank, peer, nbytes))
                    recs.append(self._xfer(peer, rank, nbytes))
            mask <<= 1
        for i in range(rem):
            recs.append(self._xfer(i, pof2 + i, nbytes))
        return recs

    def allgather(self, nbytes_per_rank: int) -> list[TransferRecord]:
        """Ring allgather: p-1 rounds, each rank forwards one block."""
        p = self.size
        recs = []
        for step in range(p - 1):
            for rank in range(p):
                recs.append(self._xfer(rank, (rank + 1) % p, nbytes_per_rank))
        return recs

    def alltoall(self, nbytes_per_pair: int) -> list[TransferRecord]:
        """Pairwise exchange: every rank sends a block to every other."""
        p = self.size
        recs = []
        for src in range(p):
            for dst in range(p):
                if src != dst:
                    recs.append(self._xfer(src, dst, nbytes_per_pair))
        return recs

    def barrier(self) -> list[TransferRecord]:
        """Dissemination barrier: ``ceil(log2 p)`` zero-payload rounds."""
        from repro.transport.hybriddart import CONTROL_MSG_BYTES

        p = self.size
        recs = []
        mask = 1
        while mask < p:
            for rank in range(p):
                recs.append(
                    self.dart.transfer(
                        src_core=self.group.core(rank),
                        dst_core=self.group.core((rank + mask) % p),
                        nbytes=CONTROL_MSG_BYTES,
                        kind=TransferKind.CONTROL,
                        app_id=self.app_id,
                    )
                )
            mask <<= 1
        return recs
