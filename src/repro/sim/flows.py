"""Max-min fair rate allocation over a capacitated link set.

Concurrent transfers share links (NICs, torus hops, per-node memory
channels). We model each transfer as a *fluid flow* over its link path and
allocate rates by progressive filling: raise every active flow's rate
uniformly until some link saturates, freeze the flows crossing it, repeat.
The result is the unique max-min fair allocation, which is the standard
fluid abstraction for TCP-like fair sharing and is what produces the
contention effects of the paper's Fig 16.

The flow-link incidence is kept as a ``scipy.sparse`` CSR matrix so a fleet
of thousands of flows allocates in a handful of vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import SimulationError

__all__ = ["Flow", "FlowNetwork"]

_EPS = 1e-9


@dataclass(frozen=True)
class Flow:
    """One fluid flow: a byte volume moving over a fixed link path."""

    flow_id: int
    links: tuple[int, ...]
    nbytes: int
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise SimulationError(f"flow bytes must be non-negative, got {self.nbytes}")
        if self.start_time < 0:
            raise SimulationError("flow start time must be non-negative")


class FlowNetwork:
    """A fixed set of capacitated links shared by flows."""

    def __init__(self, capacities: "np.ndarray | list[float]") -> None:
        self.capacities = np.asarray(capacities, dtype=np.float64)
        if self.capacities.ndim != 1 or self.capacities.size == 0:
            raise SimulationError("capacities must be a non-empty 1-D array")
        if np.any(self.capacities <= 0):
            raise SimulationError("link capacities must be positive")

    @property
    def num_links(self) -> int:
        return self.capacities.size

    def incidence(self, flows: "list[Flow] | list[tuple[int, ...]]") -> sparse.csr_matrix:
        """Flow x link 0/1 incidence matrix."""
        paths = [f.links if isinstance(f, Flow) else tuple(f) for f in flows]
        rows, cols = [], []
        for i, path in enumerate(paths):
            for l in path:
                if not 0 <= l < self.num_links:
                    raise SimulationError(f"flow {i} uses unknown link {l}")
                rows.append(i)
                cols.append(l)
        data = np.ones(len(rows), dtype=np.float64)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(paths), self.num_links)
        )

    def maxmin_rates(
        self,
        incidence: sparse.csr_matrix,
        active: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Max-min fair rates (bytes/s) for the given flows.

        ``active`` masks which flows compete (others get rate 0). Flows with
        an empty link path are infinitely fast as far as the network is
        concerned — they get ``inf`` and the caller completes them at latency
        only.
        """
        nflows = incidence.shape[0]
        rates = np.zeros(nflows, dtype=np.float64)
        if nflows == 0:
            return rates
        if active is None:
            active = np.ones(nflows, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool).copy()
        path_lens = np.asarray(incidence.sum(axis=1)).ravel()
        empty = active & (path_lens == 0)
        rates[empty] = np.inf
        active &= path_lens > 0

        cap_rem = self.capacities.astype(np.float64).copy()
        inc_csc = incidence.tocsc()
        while np.any(active):
            counts = np.asarray(
                incidence.T @ active.astype(np.float64)
            ).ravel()
            used = counts > 0
            if not np.any(used):
                break
            inc = np.min(cap_rem[used] / counts[used])
            rates[active] += inc
            cap_rem[used] -= counts[used] * inc
            saturated = used & (cap_rem <= _EPS * self.capacities)
            if not np.any(saturated):
                # Numerical guard: saturate the tightest link explicitly.
                tight = np.argmin(np.where(used, cap_rem, np.inf))
                saturated = np.zeros_like(used)
                saturated[tight] = True
                cap_rem[tight] = 0.0
            frozen = np.asarray(
                (inc_csc[:, np.flatnonzero(saturated)] @
                 np.ones(int(saturated.sum()))) > 0
            ).ravel()
            active &= ~frozen
        return rates

    def validate_rates(
        self, incidence: sparse.csr_matrix, rates: np.ndarray
    ) -> None:
        """Assert no link is oversubscribed (tests / debugging)."""
        finite = np.where(np.isfinite(rates), rates, 0.0)
        loads = np.asarray(incidence.T @ finite).ravel()
        over = loads > self.capacities * (1 + 1e-6)
        if np.any(over):
            raise SimulationError(
                f"links oversubscribed: {np.flatnonzero(over).tolist()}"
            )
