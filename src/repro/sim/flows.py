"""Max-min fair rate allocation over a capacitated link set.

Concurrent transfers share links (NICs, torus hops, per-node memory
channels). We model each transfer as a *fluid flow* over its link path and
allocate rates by progressive filling: raise every active flow's rate
uniformly until some link saturates, freeze the flows crossing it, repeat.
The result is the unique max-min fair allocation, which is the standard
fluid abstraction for TCP-like fair sharing and is what produces the
contention effects of the paper's Fig 16.

The flow-link incidence is kept as a ``scipy.sparse`` CSR matrix so a fleet
of thousands of flows allocates in a handful of vectorized passes.

Two solver entry points:

* :meth:`FlowNetwork.maxmin_rates` — one-shot *joint* progressive filling
  over the whole flow set. Simple, and the reference the fluid model's
  small-batch path still uses.
* :class:`IncrementalMaxMin` — a stateful solver for workloads where flows
  enter and leave one at a time (the fluid simulation's event loop). It
  exploits that max-min allocations decompose exactly over connected
  components of the flow–link sharing graph: a flow arriving or departing
  can only change rates inside its own component, so only *dirty*
  components are re-solved. Incremental and from-scratch solves are
  bit-identical by construction, because both funnel through the same
  canonical per-component progressive filling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import SimulationError

__all__ = ["Flow", "FlowNetwork", "IncrementalMaxMin"]

_EPS = 1e-9

#: components smaller than this (flows x links) solve densely — below the
#: size where scipy's sparse machinery pays for its setup cost
_DENSE_CELLS = 1 << 14


@dataclass(frozen=True)
class Flow:
    """One fluid flow: a byte volume moving over a fixed link path."""

    flow_id: int
    links: tuple[int, ...]
    nbytes: int
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise SimulationError(f"flow bytes must be non-negative, got {self.nbytes}")
        if self.start_time < 0:
            raise SimulationError("flow start time must be non-negative")


class FlowNetwork:
    """A fixed set of capacitated links shared by flows."""

    def __init__(self, capacities: "np.ndarray | list[float]") -> None:
        self.capacities = np.asarray(capacities, dtype=np.float64)
        if self.capacities.ndim != 1 or self.capacities.size == 0:
            raise SimulationError("capacities must be a non-empty 1-D array")
        if np.any(self.capacities <= 0):
            raise SimulationError("link capacities must be positive")

    @property
    def num_links(self) -> int:
        return self.capacities.size

    def incidence(self, flows: "list[Flow] | list[tuple[int, ...]]") -> sparse.csr_matrix:
        """Flow x link 0/1 incidence matrix."""
        paths = [f.links if isinstance(f, Flow) else tuple(f) for f in flows]
        rows, cols = [], []
        for i, path in enumerate(paths):
            for l in path:
                if not 0 <= l < self.num_links:
                    raise SimulationError(f"flow {i} uses unknown link {l}")
                rows.append(i)
                cols.append(l)
        data = np.ones(len(rows), dtype=np.float64)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(paths), self.num_links)
        )

    def maxmin_rates(
        self,
        incidence: sparse.csr_matrix,
        active: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Max-min fair rates (bytes/s) for the given flows.

        ``active`` masks which flows compete (others get rate 0). Flows with
        an empty link path are infinitely fast as far as the network is
        concerned — they get ``inf`` and the caller completes them at latency
        only.
        """
        nflows = incidence.shape[0]
        rates = np.zeros(nflows, dtype=np.float64)
        if nflows == 0:
            return rates
        if active is None:
            active = np.ones(nflows, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool).copy()
        path_lens = np.asarray(incidence.sum(axis=1)).ravel()
        empty = active & (path_lens == 0)
        rates[empty] = np.inf
        active &= path_lens > 0

        cap_rem = self.capacities.astype(np.float64).copy()
        inc_csc = incidence.tocsc()
        while np.any(active):
            counts = np.asarray(
                incidence.T @ active.astype(np.float64)
            ).ravel()
            used = counts > 0
            if not np.any(used):
                break
            inc = np.min(cap_rem[used] / counts[used])
            rates[active] += inc
            cap_rem[used] -= counts[used] * inc
            saturated = used & (cap_rem <= _EPS * self.capacities)
            if not np.any(saturated):
                # Numerical guard: saturate the tightest link explicitly.
                tight = np.argmin(np.where(used, cap_rem, np.inf))
                saturated = np.zeros_like(used)
                saturated[tight] = True
                cap_rem[tight] = 0.0
            frozen = np.asarray(
                (inc_csc[:, np.flatnonzero(saturated)] @
                 np.ones(int(saturated.sum()))) > 0
            ).ravel()
            active &= ~frozen
        return rates

    def component_rates(self, paths: "list[tuple[int, ...]]") -> np.ndarray:
        """Canonical progressive filling for one connected component.

        ``paths`` must be non-empty link paths that all belong to a single
        component. This is *the* routine every solve — incremental or
        from-scratch — funnels through, which is what makes the two
        bit-identical. The arithmetic mirrors :meth:`maxmin_rates`
        restricted to the component's links (identical values: every
        intermediate count is a small exact integer and all other
        operations are elementwise).
        """
        nflows = len(paths)
        if nflows == 1:
            # Scalar fast path for the dominant case at scale: a flow alone
            # in its component rates min(cap/multiplicity) over its links.
            # Bit-identical to one dense filling pass — the same float64
            # divisions feed the same min, and the single flow freezes on
            # the first saturation.
            path = paths[0]
            caps = self.capacities
            if len(path) == len(set(path)):
                rate = min(caps[l] for l in path)
            else:
                mult: dict[int, int] = {}
                for l in path:
                    mult[l] = mult.get(l, 0) + 1
                rate = min(caps[l] / m for l, m in mult.items())
            return np.array([rate], dtype=np.float64)
        links = sorted({l for p in paths for l in p})
        link_pos = {l: j for j, l in enumerate(links)}
        caps = self.capacities[links]
        if nflows * len(links) <= _DENSE_CELLS:
            inc = np.zeros((nflows, len(links)), dtype=np.float64)
            for i, p in enumerate(paths):
                for l in p:
                    # += so a link repeated in a path weighs double, exactly
                    # as the CSR construction sums duplicate entries
                    inc[i, link_pos[l]] += 1.0
            return _fill_dense(caps, inc)
        rows, cols = [], []
        for i, p in enumerate(paths):
            for l in p:
                rows.append(i)
                cols.append(link_pos[l])
        inc_csr = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(nflows, len(links))
        )
        return _fill_sparse(caps, inc_csr)

    def validate_rates(
        self, incidence: sparse.csr_matrix, rates: np.ndarray
    ) -> None:
        """Assert no link is oversubscribed (tests / debugging)."""
        finite = np.where(np.isfinite(rates), rates, 0.0)
        loads = np.asarray(incidence.T @ finite).ravel()
        over = loads > self.capacities * (1 + 1e-6)
        if np.any(over):
            raise SimulationError(
                f"links oversubscribed: {np.flatnonzero(over).tolist()}"
            )


def _fill_dense(caps: np.ndarray, inc: np.ndarray) -> np.ndarray:
    """Progressive filling, dense incidence. Bit-identical to the sparse
    variant: link-usage counts are small exact integers, everything else is
    elementwise, so the representation cannot change a single ulp."""
    nflows = inc.shape[0]
    rates = np.zeros(nflows, dtype=np.float64)
    active = np.ones(nflows, dtype=bool)
    cap_rem = caps.astype(np.float64).copy()
    while np.any(active):
        counts = inc.T @ active.astype(np.float64)
        used = counts > 0
        if not np.any(used):
            break
        step = np.min(cap_rem[used] / counts[used])
        rates[active] += step
        cap_rem[used] -= counts[used] * step
        saturated = used & (cap_rem <= _EPS * caps)
        if not np.any(saturated):
            # Numerical guard: saturate the tightest link explicitly.
            tight = np.argmin(np.where(used, cap_rem, np.inf))
            saturated = np.zeros_like(used)
            saturated[tight] = True
            cap_rem[tight] = 0.0
        frozen = inc[:, saturated].sum(axis=1) > 0
        active &= ~frozen
    return rates


def _fill_sparse(caps: np.ndarray, inc_csr: sparse.csr_matrix) -> np.ndarray:
    """Progressive filling, sparse incidence (mirrors
    :meth:`FlowNetwork.maxmin_rates` with every flow active)."""
    nflows = inc_csr.shape[0]
    rates = np.zeros(nflows, dtype=np.float64)
    active = np.ones(nflows, dtype=bool)
    cap_rem = caps.astype(np.float64).copy()
    inc_csc = inc_csr.tocsc()
    while np.any(active):
        counts = np.asarray(inc_csr.T @ active.astype(np.float64)).ravel()
        used = counts > 0
        if not np.any(used):
            break
        step = np.min(cap_rem[used] / counts[used])
        rates[active] += step
        cap_rem[used] -= counts[used] * step
        saturated = used & (cap_rem <= _EPS * caps)
        if not np.any(saturated):
            tight = np.argmin(np.where(used, cap_rem, np.inf))
            saturated = np.zeros_like(used)
            saturated[tight] = True
            cap_rem[tight] = 0.0
        frozen = np.asarray(
            (inc_csc[:, np.flatnonzero(saturated)] @
             np.ones(int(saturated.sum()))) > 0
        ).ravel()
        active &= ~frozen
    return rates


class IncrementalMaxMin:
    """Stateful max-min solver re-solving only dirty components.

    Flows are added/removed by id with their link paths; :meth:`rates`
    returns the current allocation, re-solving only the connected
    components (of the flow–link sharing graph) touched since the last
    call. Empty-path flows rate ``inf`` and never dirty anything.

    Equivalence contract: after any add/remove sequence, :meth:`rates`
    equals — bitwise — what a fresh solver given the same surviving flows
    would produce, because both decompose into the same components and
    solve each through :meth:`FlowNetwork.component_rates`. The invariant
    suite (``tests/sim/test_flows_incremental``) exercises exactly this.
    """

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self._paths: dict[int, tuple[int, ...]] = {}
        self._rates: dict[int, float] = {}
        self._on_link: dict[int, set[int]] = {}
        self._dirty: set[int] = set()
        #: component re-solves performed (perf diagnostics)
        self.component_solves = 0
        #: flow rates recomputed across those re-solves
        self.flows_resolved = 0

    def __len__(self) -> int:
        return len(self._rates)

    def add(self, flow_id: int, links: "tuple[int, ...] | list[int]") -> None:
        """Admit a flow; marks its component dirty."""
        if flow_id in self._rates:
            raise SimulationError(f"flow {flow_id} already present")
        path = tuple(links)
        for l in path:
            if not 0 <= l < self.network.num_links:
                raise SimulationError(f"flow {flow_id} uses unknown link {l}")
        if not path:
            self._rates[flow_id] = np.inf
            return
        self._paths[flow_id] = path
        self._rates[flow_id] = 0.0
        for l in set(path):
            self._on_link.setdefault(l, set()).add(flow_id)
            self._dirty.add(l)

    def remove(self, flow_id: int) -> None:
        """Retire a flow; marks its (former) component dirty."""
        if flow_id not in self._rates:
            raise SimulationError(f"flow {flow_id} not present")
        del self._rates[flow_id]
        path = self._paths.pop(flow_id, ())
        for l in set(path):
            holders = self._on_link[l]
            holders.discard(flow_id)
            if not holders:
                del self._on_link[l]
            self._dirty.add(l)

    def rates(self) -> dict[int, float]:
        """Current allocation for every present flow (re-solving as needed)."""
        self._refresh()
        return dict(self._rates)

    @property
    def allocation(self) -> dict[int, float]:
        """The live rate mapping, refreshed, without the defensive copy of
        :meth:`rates` — for hot loops; treat as read-only."""
        self._refresh()
        return self._rates

    def rate(self, flow_id: int) -> float:
        self._refresh()
        return self._rates[flow_id]

    def _refresh(self) -> None:
        while self._dirty:
            seed = next(iter(self._dirty))
            comp_links = {seed}
            comp_flows: set[int] = set()
            frontier = [seed]
            while frontier:
                link = frontier.pop()
                for fid in self._on_link.get(link, ()):
                    if fid not in comp_flows:
                        comp_flows.add(fid)
                        for l in self._paths[fid]:
                            if l not in comp_links:
                                comp_links.add(l)
                                frontier.append(l)
            self._dirty -= comp_links
            if not comp_flows:
                continue
            # Canonical ordering: ascending flow id. Any solve of this
            # component — incremental or fresh — builds the same matrix.
            order = sorted(comp_flows)
            solved = self.network.component_rates(
                [self._paths[f] for f in order]
            )
            for fid, r in zip(order, solved):
                self._rates[fid] = float(r)
            self.component_solves += 1
            self.flows_resolved += len(order)
