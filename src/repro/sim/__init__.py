"""Simulation substrate: discrete events + fluid-flow network timing."""

from repro.sim.engine import SimEngine
from repro.sim.events import Event, EventQueue
from repro.sim.flows import Flow, FlowNetwork
from repro.sim.fluid import FluidSimulation, TransferTiming
from repro.sim.mpi import SimComm

__all__ = [
    "Event",
    "EventQueue",
    "SimEngine",
    "Flow",
    "FlowNetwork",
    "FluidSimulation",
    "TransferTiming",
    "SimComm",
]
