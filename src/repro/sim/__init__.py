"""Simulation substrate: discrete events + fluid-flow network timing."""

from repro.sim.engine import SimEngine
from repro.sim.events import (
    CalendarEventQueue,
    Event,
    EventQueue,
    HeapEventQueue,
)
from repro.sim.flows import Flow, FlowNetwork, IncrementalMaxMin
from repro.sim.fluid import FluidSimulation, TransferTiming
from repro.sim.mpi import SimComm

__all__ = [
    "Event",
    "EventQueue",
    "CalendarEventQueue",
    "HeapEventQueue",
    "SimEngine",
    "Flow",
    "FlowNetwork",
    "IncrementalMaxMin",
    "FluidSimulation",
    "TransferTiming",
    "SimComm",
]
