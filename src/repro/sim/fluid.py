"""Fluid transfer simulation: per-transfer completion times under contention.

Turns a batch of core-to-core transfers into fluid flows over the cluster's
resource graph and advances a virtual clock from one flow completion (or
arrival) to the next, reallocating max-min fair rates whenever the active
set changes.

Resources: the network model's links (NIC inject/eject + torus hops), plus
one *memory channel* per node so that concurrent intra-node shared-memory
transfers share the node's memory bandwidth rather than being free. This
uniform treatment lets a single simulation time both the in-situ (mostly
shm) and the network-heavy (round-robin) placements of the paper's Fig 11
and Fig 16.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.errors import SimulationError
from repro.hardware.network import NetworkModel
from repro.sim.flows import Flow, FlowNetwork, IncrementalMaxMin

if TYPE_CHECKING:
    from repro.obs.timeline import TimelineCollector

__all__ = ["FluidSimulation", "TransferTiming"]

#: batches at least this large use the incremental dirty-component solver;
#: smaller ones keep the joint re-solve, whose float behavior the golden
#: figure outputs (BENCH_4) were snapshotted under
INCREMENTAL_THRESHOLD = 1024


@dataclass(frozen=True)
class TransferTiming:
    """Completion record of one simulated transfer."""

    tag: Hashable
    start: float
    finish: float
    nbytes: int

    @property
    def duration(self) -> float:
        return self.finish - self.start


class FluidSimulation:
    """Times a batch of transfers on a cluster with fair link sharing."""

    def __init__(
        self,
        network: NetworkModel,
        incremental: "bool | None" = None,
        timeline: "TimelineCollector | None" = None,
        t0: float = 0.0,
    ) -> None:
        self.network = network
        cluster = network.cluster
        # Extended resource vector: network links then one memory channel/node.
        shm_bw = cluster.machine.node.shm_bandwidth
        caps = list(network.capacities) + [shm_bw] * cluster.num_nodes
        self._mem_base = network.num_links
        self.flow_network = FlowNetwork(caps)
        self._paths: list[tuple[int, ...]] = []
        self._nbytes: list[int] = []
        self._starts: list[float] = []
        self._tags: list[Hashable] = []
        #: ``None`` = auto (incremental solver for batches of at least
        #: INCREMENTAL_THRESHOLD flows); ``True``/``False`` force it
        self.incremental = incremental
        #: dirty-component solver statistics of the last incremental run
        self.last_solver_stats: dict[str, int] = {}
        #: optional telemetry collector: when set, the event loops emit
        #: per-link-class occupancy ("links") records at every sample-period
        #: boundary crossed by the fluid clock, with fluid-internal times
        #: offset by ``t0`` (the engine time the coupling phase started at)
        self.timeline = timeline
        self.t0 = float(t0)
        self._next_sample = math.inf

    # -- building the batch -----------------------------------------------------

    def _mem_link(self, node: int) -> int:
        return self._mem_base + node

    def add_transfer(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        start: float = 0.0,
        tag: Hashable = None,
    ) -> int:
        """Queue one transfer; returns its flow index.

        Intra-node transfers occupy the destination node's memory channel;
        inter-node transfers occupy their network path. Start times are
        shifted by the path's base latency.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        cluster = self.network.cluster
        src_node = cluster.node_of_core(src_core)
        dst_node = cluster.node_of_core(dst_core)
        if src_node == dst_node:
            path: tuple[int, ...] = (self._mem_link(dst_node),)
        else:
            path = self.network.node_path(src_node, dst_node)
        latency = self.network.path_latency(src_node, dst_node)
        idx = len(self._paths)
        self._paths.append(path)
        self._nbytes.append(int(nbytes))
        self._starts.append(start + latency)
        self._tags.append(tag if tag is not None else idx)
        return idx

    def __len__(self) -> int:
        return len(self._paths)

    # -- running ----------------------------------------------------------------------

    def run(self) -> list[TransferTiming]:
        """Advance the fluid model to completion of every queued transfer.

        Small batches re-solve the whole allocation on every active-set
        change (the original joint loop); large batches route through
        :class:`~repro.sim.flows.IncrementalMaxMin`, which re-solves only
        the connected components a completion or arrival actually touched.
        """
        n = len(self._paths)
        if n == 0:
            return []
        incremental = self.incremental
        if incremental is None:
            incremental = n >= INCREMENTAL_THRESHOLD
        if incremental:
            return self._run_incremental()
        return self._run_joint()

    # -- telemetry sampling -------------------------------------------------------

    def _arm_sampling(self, now: float) -> None:
        """Place the next sample boundary at or after ``t0 + now``,
        aligned to the collector's absolute sample grid."""
        tl = self.timeline
        if tl is None:
            return
        p = tl.sample_period
        self._next_sample = math.ceil((self.t0 + now) / p - 1e-9) * p - self.t0

    def _emit_link_samples(
        self, now: float, step: float, pairs: "list[tuple[int, float]]"
    ) -> None:
        """Emit one ``links`` record per sample boundary inside
        ``[now, now + step]`` from the current rate allocation.

        ``pairs`` is the active ``(flow index, rate)`` set; per-link load is
        rebuilt by walking only the active flows' paths, so a sample costs
        O(active flows x path length), independent of the cluster size. The
        allocation is constant across the step, so every boundary in the
        window shares one load computation.
        """
        tl = self.timeline
        wall0 = time.perf_counter()
        caps = self.flow_network.capacities
        mem_base = self._mem_base
        net: dict[int, float] = {}
        mem: dict[int, float] = {}
        active = 0
        for i, rate in pairs:
            if not rate > 0.0:
                continue
            active += 1
            if math.isinf(rate):
                continue  # empty-path flows occupy nothing
            for link in self._paths[i]:
                loads = mem if link >= mem_base else net
                loads[link] = loads.get(link, 0.0) + rate

        def util(loads: "dict[int, float]") -> float:
            # Mean utilization over the links that carry traffic; max-min
            # never over-fills a link, so this lands in [0, 1].
            if not loads:
                return 0.0
            frac = sum(float(r / caps[l]) for l, r in loads.items()) / len(loads)
            return min(1.0, frac)

        base = {
            "kind": "links",
            "active": active,
            "net_busy": len(net),
            "net_util": util(net),
            "mem_busy": len(mem),
            "mem_util": util(mem),
        }
        bound = now + step + 1e-15
        while self._next_sample <= bound:
            tl.emit(dict(base, t=self.t0 + self._next_sample))
            self._next_sample += tl.sample_period
        tl.add_overhead(time.perf_counter() - wall0)

    def _run_joint(self) -> list[TransferTiming]:
        n = len(self._paths)
        flows = [
            Flow(flow_id=i, links=self._paths[i], nbytes=self._nbytes[i],
                 start_time=self._starts[i])
            for i in range(n)
        ]
        incidence = self.flow_network.incidence(flows)
        starts = np.asarray(self._starts, dtype=np.float64)
        remaining = np.asarray(self._nbytes, dtype=np.float64)
        finish = np.full(n, np.nan)
        now = 0.0
        started = np.zeros(n, dtype=bool)
        done = remaining <= 0

        # Zero-byte transfers finish the moment they start.
        finish[done] = starts[done]

        pending_starts = sorted(
            {float(s) for s, d in zip(starts, done) if not d}
        )
        start_ptr = 0
        if pending_starts:
            now = pending_starts[0]
        self._arm_sampling(now)

        while True:
            started = starts <= now + 1e-15
            active = started & ~done
            while start_ptr < len(pending_starts) and pending_starts[start_ptr] <= now + 1e-15:
                start_ptr += 1
            if not np.any(active) and start_ptr >= len(pending_starts):
                break
            if not np.any(active):
                now = pending_starts[start_ptr]
                # Idle gap: nothing flows, so skip the boundaries inside it.
                self._arm_sampling(now)
                continue
            rates = self.flow_network.maxmin_rates(incidence, active)
            with np.errstate(divide="ignore", invalid="ignore"):
                ttf = np.where(active & (rates > 0), remaining / rates, np.inf)
            # Infinite-rate (empty-path) flows complete instantly.
            ttf = np.where(np.isinf(rates) & active, 0.0, ttf)
            next_finish = float(np.min(ttf[active])) if np.any(active) else np.inf
            next_start = (
                pending_starts[start_ptr] - now
                if start_ptr < len(pending_starts)
                else np.inf
            )
            step = min(next_finish, next_start)
            if not np.isfinite(step):
                raise SimulationError("fluid simulation stalled (no progress)")
            if self.timeline is not None and self._next_sample <= now + step + 1e-15:
                act_idx = np.flatnonzero(active)
                self._emit_link_samples(
                    now, step,
                    [(int(i), float(rates[i])) for i in act_idx],
                )
            # Progress the active flows.
            finite_rates = np.where(np.isfinite(rates), rates, 0.0)
            remaining[active] -= finite_rates[active] * step
            # Instant flows drain fully.
            remaining[active & np.isinf(rates)] = 0.0
            now += step
            newly_done = active & (remaining <= 1e-6)
            finish[newly_done] = now
            done |= newly_done

        return [
            TransferTiming(
                tag=self._tags[i],
                start=float(starts[i]),
                finish=float(finish[i]),
                nbytes=self._nbytes[i],
            )
            for i in range(n)
        ]

    def _run_incremental(self) -> list[TransferTiming]:
        """Event loop over flow arrivals/completions with dirty-component
        rate re-solves. Same epsilons and step logic as the joint loop; the
        only difference is how rates are obtained."""
        n = len(self._paths)
        solver = IncrementalMaxMin(self.flow_network)
        starts = np.asarray(self._starts, dtype=np.float64)
        remaining = np.asarray(self._nbytes, dtype=np.float64)
        finish = np.full(n, np.nan)
        done = remaining <= 0
        finish[done] = starts[done]

        arrivals = sorted(
            (int(i) for i in np.flatnonzero(~done)),
            key=lambda i: (starts[i], i),
        )
        ptr = 0
        active: set[int] = set()
        now = starts[arrivals[0]] if arrivals else 0.0
        self._arm_sampling(now)

        while True:
            while ptr < len(arrivals) and starts[arrivals[ptr]] <= now + 1e-15:
                i = arrivals[ptr]
                ptr += 1
                solver.add(i, self._paths[i])
                active.add(i)
            if not active:
                if ptr >= len(arrivals):
                    break
                now = starts[arrivals[ptr]]
                # Idle gap: nothing flows, so skip the boundaries inside it.
                self._arm_sampling(now)
                continue
            all_rates = solver.allocation
            act = np.fromiter(sorted(active), dtype=np.intp)
            rates = np.asarray([all_rates[i] for i in act])
            rem = remaining[act]
            with np.errstate(divide="ignore", invalid="ignore"):
                ttf = np.where(rates > 0, rem / rates, np.inf)
            ttf = np.where(np.isinf(rates), 0.0, ttf)
            next_finish = float(np.min(ttf))
            next_start = (
                starts[arrivals[ptr]] - now
                if ptr < len(arrivals)
                else np.inf
            )
            step = min(next_finish, next_start)
            if not np.isfinite(step):
                raise SimulationError("fluid simulation stalled (no progress)")
            if self.timeline is not None and self._next_sample <= now + step + 1e-15:
                self._emit_link_samples(
                    now, step,
                    [(int(i), float(r)) for i, r in zip(act, rates)],
                )
            finite_rates = np.where(np.isfinite(rates), rates, 0.0)
            remaining[act] = rem - finite_rates * step
            remaining[act[np.isinf(rates)]] = 0.0
            now += step
            newly_done = act[remaining[act] <= 1e-6]
            for i in newly_done:
                i = int(i)
                solver.remove(i)
                active.discard(i)
            finish[newly_done] = now
            done[newly_done] = True

        self.last_solver_stats = {
            "component_solves": solver.component_solves,
            "flows_resolved": solver.flows_resolved,
        }
        return [
            TransferTiming(
                tag=self._tags[i],
                start=float(starts[i]),
                finish=float(finish[i]),
                nbytes=self._nbytes[i],
            )
            for i in range(n)
        ]

    # -- aggregation helpers -------------------------------------------------------------

    @staticmethod
    def completion_by_group(
        timings: list[TransferTiming],
        group_of: "dict[Hashable, Hashable] | None" = None,
    ) -> dict[Hashable, float]:
        """Latest finish per group (group = tag by default).

        With ``group_of`` mapping tags to groups, returns each group's
        completion time — e.g. per-application retrieval time = max over its
        tasks' transfers.
        """
        out: dict[Hashable, float] = {}
        for t in timings:
            g = group_of.get(t.tag, t.tag) if group_of is not None else t.tag
            out[g] = max(out.get(g, 0.0), t.finish)
        return out
