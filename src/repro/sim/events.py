"""Event heap for the discrete-event engine."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, seq) so ties are FIFO."""

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    #: daemon events (periodic heartbeats, checkpoint ticks) never keep the
    #: simulation alive on their own — the run loop stops once only daemon
    #: events remain.
    daemon: bool = field(compare=False, default=False)
    #: span open at scheduling time (tracing only; None when untraced)
    origin: Any = field(compare=False, default=None)
    #: causal category of the scheduled delay (tracing only; e.g. "compute"
    #: for an app-completion event — rides on the sched flow link)
    category: "str | None" = field(compare=False, default=None)

    def fire(self) -> Any:
        return self.fn(*self.args)


class EventQueue:
    """A monotone priority queue of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    @property
    def live_events(self) -> int:
        """Pending non-daemon events."""
        return self._live

    def push(
        self, time: float, fn: Callable[..., Any], *args: Any,
        daemon: bool = False,
    ) -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        ev = Event(time=time, seq=next(self._seq), fn=fn, args=args, daemon=daemon)
        heapq.heappush(self._heap, ev)
        if not daemon:
            self._live += 1
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        if not ev.daemon:
            self._live -= 1
        return ev

    def pop_if_before(self, time: float | None) -> Event | None:
        """Pop the earliest event iff it is due at or before ``time``.

        ``None`` means no bound (pop whatever is next). Returns ``None``
        when the queue is empty or the head event lies strictly after the
        bound — the symmetric peek-then-pop the engine's ``until`` boundary
        needs, in one call: an event scheduled exactly at the bound fires,
        a later one never does.
        """
        if not self._heap:
            return None
        if time is not None and self._heap[0].time > time:
            return None
        ev = heapq.heappop(self._heap)
        if not ev.daemon:
            self._live -= 1
        return ev

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
