"""Event queues for the discrete-event engine.

Two implementations share one API and one ordering contract — events
dispatch in strict ``(time, seq)`` order, so equal-time events are FIFO:

* :class:`HeapEventQueue` — the original binary-heap queue. O(log n) per
  operation with a small constant; kept as the reference implementation
  for the differential test suite and as an ablation baseline.
* :class:`CalendarEventQueue` — a calendar queue (R. Brown, CACM 1988):
  events hash into time-bucketed "days" of a circular "year". With the
  bucket width adapted to the event-time density, enqueue and dequeue are
  amortized O(1), which is what keeps million-event Jaguar-scale runs
  cheap. This is the engine's default (:data:`EventQueue`).

The calendar queue is exact, not approximate: buckets keep their events
sorted, so the dispatch order is bit-identical to the heap's — a property
the hypothesis differential suite (``tests/sim/test_queue_differential``)
pins down.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Any, Callable

from repro.errors import SimulationError

_TIME_SEQ = attrgetter("time", "seq")

__all__ = ["Event", "EventQueue", "HeapEventQueue", "CalendarEventQueue"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback. Ordered by (time, seq) so ties are FIFO."""

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    #: daemon events (periodic heartbeats, checkpoint ticks) never keep the
    #: simulation alive on their own — the run loop stops once only daemon
    #: events remain.
    daemon: bool = field(compare=False, default=False)
    #: span open at scheduling time (tracing only; None when untraced)
    origin: Any = field(compare=False, default=None)
    #: causal category of the scheduled delay (tracing only; e.g. "compute"
    #: for an app-completion event — rides on the sched flow link)
    category: "str | None" = field(compare=False, default=None)

    def fire(self) -> Any:
        return self.fn(*self.args)


class HeapEventQueue:
    """A monotone priority queue of events over a binary heap."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    @property
    def live_events(self) -> int:
        """Pending non-daemon events."""
        return self._live

    def push(
        self, time: float, fn: Callable[..., Any], *args: Any,
        daemon: bool = False,
    ) -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        ev = Event(time=time, seq=next(self._seq), fn=fn, args=args, daemon=daemon)
        heapq.heappush(self._heap, ev)
        if not daemon:
            self._live += 1
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        if not ev.daemon:
            self._live -= 1
        return ev

    def pop_if_before(self, time: float | None) -> Event | None:
        """Pop the earliest event iff it is due at or before ``time``.

        ``None`` means no bound (pop whatever is next). Returns ``None``
        when the queue is empty or the head event lies strictly after the
        bound — the symmetric peek-then-pop the engine's ``until`` boundary
        needs, in one call: an event scheduled exactly at the bound fires,
        a later one never does.
        """
        if not self._heap:
            return None
        if time is not None and self._heap[0].time > time:
            return None
        ev = heapq.heappop(self._heap)
        if not ev.daemon:
            self._live -= 1
        return ev

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarEventQueue:
    """A calendar queue: events bucketed by time into a circular year.

    An event at time ``t`` lives in bucket ``int(t / width) % nbuckets``;
    a dequeue scans forward from the current day's bucket and takes the
    first event falling inside its bucket's current-year window. Buckets
    stay internally sorted by ``(time, seq)``, so ordering matches the
    heap exactly, ties included.

    The bucket count doubles (halves) when the population outgrows
    (undershoots) it, and the bucket width is re-fitted to the mean gap
    between pending event times — the classic adaptation that keeps the
    expected bucket occupancy O(1) whatever the time scale of the
    workload. A full fruitless year falls back to a direct min-scan over
    bucket heads, so sparse queues with huge time jumps stay O(nbuckets)
    instead of looping.
    """

    _MIN_BUCKETS = 8
    #: growth cap — beyond this, buckets get deeper instead of more
    #: numerous (bisect keeps deep buckets cheap; allocating hundreds of
    #: thousands of lists per resize does not stay cheap)
    _MAX_BUCKETS = 1 << 15
    #: events sampled (from the earliest pending) when re-fitting width
    _WIDTH_SAMPLE = 64

    def __init__(self, nbuckets: int = 16, width: float = 1.0) -> None:
        if nbuckets < 1:
            raise SimulationError("calendar queue needs at least one bucket")
        if width <= 0:
            raise SimulationError("bucket width must be positive")
        self._seq = itertools.count()
        self._live = 0
        self._count = 0
        self._nbuckets = nbuckets
        self._width = float(width)
        self._buckets: list[list[Event]] = [[] for _ in range(nbuckets)]
        #: lower bound on every pending event's time (last pop, lowered by
        #: an out-of-order push) — where the year scan starts
        self._floor = 0.0
        #: cached current minimum and its bucket (invalidated on mutation)
        self._head: Event | None = None
        self._head_bucket: "list[Event] | None" = None
        #: cumulative adaptation counts (queue-health diagnostics, exported
        #: through ``SimEngine.publish_metrics``)
        self.resizes_grow = 0
        self.resizes_shrink = 0

    @property
    def live_events(self) -> int:
        """Pending non-daemon events."""
        return self._live

    @property
    def num_buckets(self) -> int:
        """Current bucket count (resizing diagnostics)."""
        return self._nbuckets

    @property
    def bucket_width(self) -> float:
        """Current bucket width in seconds (resizing diagnostics)."""
        return self._width

    # -- mutation ---------------------------------------------------------------

    def push(
        self, time: float, fn: Callable[..., Any], *args: Any,
        daemon: bool = False,
    ) -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        ev = Event(time=time, seq=next(self._seq), fn=fn, args=args, daemon=daemon)
        nbuckets = self._nbuckets
        bucket = self._buckets[int(time / self._width) % nbuckets]
        if not bucket or bucket[-1] < ev:
            bucket.append(ev)  # common case: later than everything in-bucket
        else:
            insort(bucket, ev)
        self._count += 1
        if not daemon:
            self._live += 1
        if time < self._floor:
            self._floor = time
        if self._head is not None and ev < self._head:
            self._head, self._head_bucket = ev, bucket
        if self._count > 2 * nbuckets and nbuckets < self._MAX_BUCKETS:
            self._resize(nbuckets * 4)
        return ev

    def pop(self) -> Event:
        ev = self._min()
        if ev is None:
            raise SimulationError("pop from empty event queue")
        return self._remove_head(ev)

    def pop_if_before(self, time: float | None) -> Event | None:
        """Pop the earliest event iff it is due at or before ``time``.

        ``None`` means no bound (pop whatever is next). Returns ``None``
        when the queue is empty or the head event lies strictly after the
        bound — an event scheduled exactly at the bound fires, a later one
        never does.
        """
        ev = self._min()
        if ev is None or (time is not None and ev.time > time):
            return None
        return self._remove_head(ev)

    def _remove_head(self, ev: Event) -> Event:
        self._head_bucket.pop(0)
        self._head = self._head_bucket = None
        self._count -= 1
        if not ev.daemon:
            self._live -= 1
        self._floor = ev.time
        # Shrink lazily and in one jump (not halving per threshold) so a
        # full drain costs O(1) resizes, not O(log n) cascading ones.
        if (
            self._count
            and self._nbuckets > self._MIN_BUCKETS
            and self._count < self._nbuckets // 8
        ):
            self._resize(2 * self._count)
        return ev

    # -- search -----------------------------------------------------------------

    def _min(self) -> Event | None:
        """The earliest pending event (cached between mutations)."""
        if self._head is not None:
            return self._head
        if not self._count:
            return None
        width = self._width
        day = int(self._floor / width)
        top = (day + 1) * width
        for i in range(day, day + self._nbuckets):
            bucket = self._buckets[i % self._nbuckets]
            # Within one year the buckets partition the time axis, so the
            # first bucket whose head falls inside its window holds the
            # global minimum.
            if bucket and bucket[0].time < top:
                self._head, self._head_bucket = bucket[0], bucket
                return bucket[0]
            top += width
        # A whole year with nothing due: the next event is more than one
        # year ahead. Direct search over bucket heads.
        best: Event | None = None
        best_bucket: "list[Event] | None" = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best, best_bucket = bucket[0], bucket
        self._head, self._head_bucket = best, best_bucket
        return best

    def peek_time(self) -> float | None:
        ev = self._min()
        return ev.time if ev is not None else None

    # -- adaptation -------------------------------------------------------------

    def _resize(self, nbuckets: int) -> None:
        """Re-bucket every event into ``nbuckets`` buckets of a re-fitted
        width (the mean gap of a sample of the earliest pending events,
        tripled). No global sort: old buckets are already sorted, so new
        buckets are concatenations of sorted runs and Timsort re-sorts
        each one near-linearly."""
        nbuckets = min(max(nbuckets, self._MIN_BUCKETS), self._MAX_BUCKETS)
        if nbuckets > self._nbuckets:
            self.resizes_grow += 1
        elif nbuckets < self._nbuckets:
            self.resizes_shrink += 1
        old = self._buckets
        # Width sample: walk buckets in year order from the floor so the
        # sample skews toward the earliest (soonest-relevant) events.
        # Daemon heartbeats (progress/timeline ticks) are excluded — one
        # sparse periodic tick sitting ahead of a dense burst would blow
        # up the mean gap and collapse the burst into a handful of deep
        # buckets.
        sample: list[float] = []
        day = int(self._floor / self._width)
        for i in range(day, day + self._nbuckets):
            bucket = old[i % self._nbuckets]
            if bucket:
                sample.extend(ev.time for ev in bucket if not ev.daemon)
                if len(sample) >= self._WIDTH_SAMPLE:
                    break
        sample.sort()
        del sample[self._WIDTH_SAMPLE:]
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if gaps:
            self._width = 3.0 * (sum(gaps) / len(gaps))
        self._nbuckets = nbuckets
        self._buckets = new = [[] for _ in range(nbuckets)]
        width = self._width
        for bucket in old:
            for ev in bucket:
                new[int(ev.time / width) % nbuckets].append(ev)
        for bucket in new:
            if len(bucket) > 1:
                # key= computes each (time, seq) once instead of per
                # comparison; identical order to Event's __lt__.
                bucket.sort(key=_TIME_SEQ)
        self._head = self._head_bucket = None

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


#: the engine's default queue implementation
EventQueue = CalendarEventQueue
