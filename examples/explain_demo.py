#!/usr/bin/env python
"""Why did that bundle finish late? Walk a causal provenance ledger.

Runs the sequential coupled scenario once with a crash *and* a healed
partition in the plan — node 5 dies at t=0.35 while nodes {0,1,2} are
severed from {3,4,5} over [0.15, 0.25) — with a `ProvenanceLedger`
attached, then answers three questions straight from the ledger, no
tracer or timeline required:

* **why-chain**: the causal chain behind the consumer bundle's
  completion — submission, dispatch, partition wait, fault verdict,
  recovery-ladder rung, re-dispatch — with per-hop sim-time deltas
  that telescope exactly to the bundle's end-to-end latency,
* **object history**: every put/fence/failover an object saw,
* **slowest**: bundles ranked by end-to-end latency, each with its
  dominant stall category.

The same queries on the CLI:

    repro-insitu sequential --replication 2 --write-quorum 2 \\
        --compute-seconds 0.2 \\
        --partition 0,1,2/3,4,5@0.15:0.1 --partition-deadline 5 \\
        --fault-plan '{"seed": 1, "node_crashes": \\
                      [{"node": 5, "time": 0.35}]}' \\
        --provenance-out ledger.jsonl
    repro-insitu explain bundle 1 --ledger ledger.jsonl
    repro-insitu explain slowest --ledger ledger.jsonl

Run:  python examples/explain_demo.py
"""

from repro.analysis.experiments import DATA_CENTRIC, run_scenario
from repro.apps.scenarios import small_sequential
from repro.faults.plan import FaultPlan, NetworkPartition, NodeCrash
from repro.obs.explain import (
    Ledger,
    explain_bundle,
    explain_object,
    explain_slowest,
)
from repro.obs.provenance import ProvenanceLedger
from repro.resilience.manager import ResilienceConfig

#: crash node 5 mid-consumer, inside a cut that heals before the deadline
PLAN = FaultPlan(
    seed=1,
    node_crashes=(NodeCrash(node=5, time=0.35),),
    partitions=(NetworkPartition(
        start=0.15, duration=0.1, groups=((0, 1, 2), (3, 4, 5)),
    ),),
)


def main() -> None:
    scenario = small_sequential(consumer_tasks=(16, 32))
    print(scenario.describe())
    print("\nfaults: node 5 crashes at t=0.35; "
          "cut (0,1,2)/(3,4,5) over [0.15, 0.25)")

    ledger = ProvenanceLedger()
    result = run_scenario(
        scenario, DATA_CENTRIC, fault_plan=PLAN,
        resilience=ResilienceConfig(replication=2, partition_deadline=5.0),
        write_quorum=2, read_quorum=1,
        producer_compute=0.2, consumer_compute=0.3,
        provenance=ledger,
    )
    summary = ledger.summary()
    print(f"\nmakespan: {result.engine.sim.now:.3f} sim-seconds; "
          f"{sum(summary.values())} decision records "
          f"across {len(summary)} kinds")

    queries = Ledger({"version": 1}, ledger.records)

    # 1. The consumer bundle rode out the cut, lost a node, and was
    #    re-dispatched by the recovery ladder — the chain names each step.
    print("\n" + explain_bundle(queries, 1))

    # 2. Every put the first coupling variable saw, failovers included.
    var = next(
        r["var"] for r in ledger.records if r["kind"] == "object.put"
    )
    print("\n" + explain_object(queries, var))

    # 3. Rank by end-to-end latency; the faulty bundle comes out on top.
    print("\n" + explain_slowest(queries, n=2))


if __name__ == "__main__":
    main()
