#!/usr/bin/env python
"""Memory pressure: survive a shrinking in-situ store without crashing.

Runs the sequential coupled scenario three times and shows memory as a
first-class, survivable resource:

* **roomy budget** (enforcement on, default 16 GiB/node): the admission
  gate passes every put untouched — the run is byte-identical to the
  enforcement-off baseline and registers not a single ``mem.*`` counter,
* **tight budget** (k=3 replication against a budget that cannot hold
  all the copies): the reclaim ladder works the stores — replica copies
  that keep quorum are evicted first, cold primaries spill to the
  per-node deep-memory tier and restore on demand when the consumer's
  pulls route through them,
* **pressure windows** (a ``MemoryPressure`` fault halves node capacity
  mid-run): producers that cannot be admitted block on sim-clock
  backpressure (``mem.wait``) instead of crashing, and the engine's
  critical path accounts every stalled second — compute, ``mem.wait``,
  ``spill.write`` and ``spill.read`` tile the makespan exactly.

The same knobs on the CLI:

    repro-insitu sequential --compute-seconds 0.05 \\
        --enforce-memory --replication 3 \\
        --memory-per-node 6291456 \\
        --memory-pressure 0@0.01:0.1:0.4

Run:  python examples/memory_pressure_demo.py
"""

from repro.analysis.experiments import DATA_CENTRIC, run_scenario
from repro.apps.scenarios import small_sequential
from repro.faults.plan import FaultPlan, MemoryPressure
from repro.obs.critpath import SpanGraph, critical_path
from repro.obs.tracer import Tracer
from repro.resilience.manager import ResilienceConfig

#: per-node budget for the tight run: each of the 12 cores gets 512 KiB,
#: room for two 256 KiB objects — primaries plus *some* of the k=3 copies
TIGHT_BUDGET = 12 * 512 * 1024

#: node 0 loses 60% of its store capacity while produced data sits
#: resident waiting for the consumers' pulls
WINDOW = MemoryPressure(node=0, start=0.01, duration=0.1, factor=0.4)


def memory_counters(result) -> dict:
    reg = result.registry
    return {
        name: reg[name].total()
        for name in sorted(reg.names())
        if name.startswith(("mem.", "spill.", "workflow.memory."))
    }


def show(title: str, result) -> None:
    print(f"\n--- {title}")
    print(f"    makespan: {result.engine.makespan * 1e3:.2f} ms")
    counters = memory_counters(result)
    if not counters:
        print("    (no memory instruments registered)")
    for name, value in counters.items():
        print(f"    {name:40s} {value:g}")
    if result.resilience is not None:
        block = result.resilience.get("memory")
        if block:
            print(f"    summary: {block}")


def main() -> None:
    scenario = small_sequential()
    print(scenario.describe())

    # 1. Enforcement at the default (roomy) budget is pure policy: the
    #    reclaim ladder never fires and the outputs stay byte-identical.
    baseline = run_scenario(
        scenario, DATA_CENTRIC,
        producer_compute=0.02, consumer_compute=0.01,
    )
    roomy = run_scenario(
        scenario, DATA_CENTRIC,
        producer_compute=0.02, consumer_compute=0.01,
        enforce_memory=True,
    )
    assert roomy.engine.makespan == baseline.engine.makespan
    show("enforcement on, default budget: byte-identical", roomy)

    # 2. Three copies of every 256 KiB object against two slots per core:
    #    the ladder evicts quorum-safe replicas and spills cold primaries
    #    to the deep-memory tier; the consumer's reads restore them.
    tight = run_scenario(
        scenario, DATA_CENTRIC,
        producer_compute=0.02, consumer_compute=0.01,
        resilience=ResilienceConfig(replication=3),
        enforce_memory=True, memory_per_node=TIGHT_BUDGET,
    )
    show("k=3 vs a 2-object/core budget: the reclaim ladder", tight)

    # 3. A pressure window shrinks node 0 while its produced objects sit
    #    resident: the proactive ladder evicts the quorum-safe replicas,
    #    then spills the stranded primaries to the deep-memory tier. The
    #    consumers' restores defer (sim-clock backpressure) until the
    #    window closes; the critical path shows exactly where every lost
    #    millisecond went.
    tracer = Tracer()
    pressured = run_scenario(
        scenario, DATA_CENTRIC, tracer=tracer,
        fault_plan=FaultPlan(memory_pressure=(WINDOW,)),
        producer_compute=0.02, consumer_compute=0.01,
        resilience=ResilienceConfig(replication=3),
        enforce_memory=True, memory_per_node=TIGHT_BUDGET,
    )
    show(f"capacity x{WINDOW.factor} on node {WINDOW.node} over "
         f"[{WINDOW.start}, {WINDOW.end}): backpressure", pressured)

    cp = critical_path(SpanGraph.from_tracer(tracer))
    attribution = cp.attribution()
    print("\n    critical-path attribution (tiles the makespan):")
    for category, seconds in sorted(attribution.items()):
        print(f"      {category:12s} {seconds * 1e3:8.3f} ms")
    total = sum(attribution.values())
    print(f"      {'total':12s} {total * 1e3:8.3f} ms "
          f"(makespan {pressured.engine.makespan * 1e3:.3f} ms)")
    assert abs(total - pressured.engine.makespan) < 1e-12

    print("\nall three runs completed; no acknowledged put was lost.")


if __name__ == "__main__":
    main()
