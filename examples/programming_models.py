#!/usr/bin/env python
"""Other programming models over the shared space (paper §VII).

The paper's future work names PGAS and MapReduce as programming models to
support next to message passing. Both run here against the same CoDS data:

1. a producer stores a random integer field with real payloads;
2. a **MapReduce** job histograms the field — its map tasks placed in-situ
   next to their input partitions;
3. a **PGAS** global array view patches a region with one-sided writes and
   reads back the updated global state with numpy-slice syntax.

Run:  python examples/programming_models.py
"""

import numpy as np

from repro import AppSpec, Cluster, DecompositionDescriptor
from repro.apps.mapreduce import MapReduceJob
from repro.cods.pgas import GlobalArray
from repro.cods.space import CoDS
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.transport.message import TransferKind

DOMAIN = (32, 32)


def main() -> None:
    cluster = Cluster(4)
    space = CoDS(cluster, DOMAIN, use_schedule_cache=False)
    rng = np.random.default_rng(42)
    field = rng.integers(0, 5, size=DOMAIN)

    producer = AppSpec(
        1, "producer", DecompositionDescriptor.uniform(DOMAIN, (2, 2)),
        var="grid",
    )
    mapping = RoundRobinMapper().map_bundle([producer], cluster)
    for rank in range(producer.ntasks):
        box = producer.decomposition.task_bounding_box(rank)
        space.put_seq(
            mapping.core_of(1, rank), "grid", box,
            data=field[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1]].copy(),
        )

    # -- MapReduce: histogram of the field, map tasks placed in-situ --------
    job = MapReduceJob(
        space=space, var="grid",
        map_fn=lambda block: [
            (int(v), int(c))
            for v, c in zip(*np.unique(block, return_counts=True))
        ],
        reduce_fn=lambda key, values: sum(values),
        num_mappers=4, num_reducers=2,
    )
    result = job.run(cluster)
    print("MapReduce histogram of the field (in-situ map placement):")
    for value in sorted(result.output):
        print(f"  value {value}: {result.output[value]:4d} cells")
    print(f"  input pulled over network: "
          f"{result.input_network_bytes / 2**10:.0f} KiB; shuffle "
          f"{result.shuffle_bytes / 2**10:.1f} KiB")

    # -- PGAS: one-sided patch + global read -----------------------------------
    ga_spec = AppSpec(
        2, "array", DecompositionDescriptor.uniform(DOMAIN, (2, 2)), var="A"
    )
    ga_mapping = RoundRobinMapper().map_bundle(
        [ga_spec], cluster,
        available_cores=[c for c in cluster.cores()
                         if c not in mapping.placement.values()],
    )
    ga = GlobalArray(space, ga_spec, ga_mapping, fill=0.0)
    ga.write(0, (slice(8, 24), slice(8, 24)), 1.0)   # one-sided, any core
    patched = ga.read(5, (slice(0, 32), slice(0, 32)))
    print(f"\nPGAS global array: wrote a 16x16 patch one-sidedly; "
          f"global sum now {patched.sum():.0f} (expected 256)")
    m = space.dart.metrics
    print(f"total coupling traffic this session: "
          f"{m.bytes(kind=TransferKind.COUPLING) / 2**10:.0f} KiB "
          f"({m.network_fraction(TransferKind.COUPLING):.0%} over network)")


if __name__ == "__main__":
    main()
