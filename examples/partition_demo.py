#!/usr/bin/env python
"""Network partitions: survive an interconnect cut without losing a byte.

Runs the sequential coupled scenario three times against the same
two-island cut — nodes {0,1,2} severed from {3,4,5} while the producer's
puts are in flight — and shows the three postures the stack supports:

* **no tolerance** (replication=1): cross-island transfers stall
  against the cut and the engine sits it out until the heal; every
  stalled transfer is visible in the summary,
* **quorum + wait-out** (k=2, W=2, R=1): every put is acknowledged only
  once two copies land across reachable links — durable whatever the
  next cut looks like — and suspected-partitioned nodes are waited out
  rather than declared dead,
* **quorum + deadline**: on a staged workflow with spare capacity, a
  cut that outlives the deadline promotes the suspects to dead, fences
  their work by generation, and re-enacts it on the majority — the
  consumer is served from majority copies without waiting for the heal.
  (Escalation needs the survivors to fit the re-enacted tasks: on the
  fully packed sequential scenario above it would stop with a
  `MappingError`, exactly like crash recovery.)

The same knobs on the CLI:

    repro-insitu sequential --compute-seconds 0.2 \\
        --partition 0,1,2/3,4,5@0.05:0.4 \\
        --replication 2 --write-quorum 2 --read-quorum 1 \\
        --partition-deadline 5.0

Run:  python examples/partition_demo.py
"""

from repro.analysis.experiments import DATA_CENTRIC, run_scenario
from repro.apps.scenarios import layout_for, small_sequential
from repro.cods.space import CoDS
from repro.core.task import AppSpec
from repro.domain.box import Box
from repro.domain.descriptor import DecompositionDescriptor
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NetworkPartition
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.resilience.replication import ReplicaPlacer
from repro.sim.engine import SimEngine
from repro.transport.hybriddart import HybridDART
from repro.workflow.dag import Bundle, WorkflowDAG
from repro.workflow.engine import WorkflowEngine

#: the 6-node interconnect splits into two 3-node islands over [0.05, 0.45)
CUT = NetworkPartition(
    start=0.05, duration=0.4, groups=((0, 1, 2), (3, 4, 5))
)


def partition_counters(result) -> dict:
    reg = result.registry
    return {
        name: reg[name].total()
        for name in sorted(reg.names())
        if name.startswith((
            "partition.", "quorum.", "resilience.partition.",
            "transport.partitioned",
        ))
    }


def show(title: str, result) -> None:
    print(f"\n--- {title}")
    print(f"    makespan: {result.engine.makespan * 1e3:.2f} ms")
    for name, value in partition_counters(result).items():
        print(f"    {name:45s} {value:g}")
    if result.resilience is not None:
        block = result.resilience.get("partition")
        if block:
            print(f"    summary: {block}")


def main() -> None:
    scenario = small_sequential()
    print(scenario.describe())
    print(f"\ncut: nodes {CUT.groups[0]} / {CUT.groups[1]} "
          f"over [{CUT.start}, {CUT.end}) sim-seconds")

    plan = FaultPlan(partitions=(CUT,))

    # 1. Single copies: every cross-island read must wait for the heal.
    waiting = run_scenario(
        scenario, DATA_CENTRIC, fault_plan=plan,
        producer_compute=0.2, consumer_compute=0.05,
        resilience=ResilienceConfig(replication=1),
    )
    show("replication=1: stall and wait for the heal", waiting)

    # 2. Quorum writes: a put is acknowledged only once W=2 of its k=2
    #    copies landed across reachable links, so acknowledged data
    #    survives any single later cut; suspects are waited out.
    quorum = run_scenario(
        scenario, DATA_CENTRIC, fault_plan=plan,
        producer_compute=0.2, consumer_compute=0.05,
        resilience=ResilienceConfig(replication=2),
        write_quorum=2, read_quorum=1,
    )
    show("k=2, W=2, R=1: quorum-acked writes + wait-out", quorum)

    # 3. A deadline turns waiting into escalation. The staged workflow
    #    below keeps half the cluster free, so the minority's tasks can
    #    be generation-fenced and re-enacted on the majority; the
    #    consumer completes from majority copies while the cut is still
    #    open, and a post-heal minority replay bounces off the fence.
    escalation_demo()

    print("\nall three runs completed; no acknowledged write was lost.")


def escalation_demo() -> None:
    """Producer -> filler -> consumer under a cut that outlives its
    0.5 s deadline (the same shape `chaos_soak.py --partition` runs)."""
    domain = (8, 8, 8)
    cluster = Cluster(num_nodes=4, machine=generic_multicore(4))
    injector = FaultInjector(FaultPlan(partitions=(NetworkPartition(
        start=1.5, duration=60.0, groups=((0, 1), (2, 3)),
    ),)))

    def app(app_id, name, ntasks):
        return AppSpec(
            app_id=app_id, name=name,
            descriptor=DecompositionDescriptor.uniform(
                domain, layout_for(ntasks), "blocked", 4
            ),
            element_size=8, var="u",
        )

    producer = app(1, "P", 8)
    dag = WorkflowDAG(
        [producer, app(2, "F", 1), app(3, "C", 1)],
        edges=[(1, 2), (2, 3)],
        bundles=[Bundle((1,)), Bundle((2,)), Bundle((3,))],
    )
    config = ResilienceConfig(replication=2, partition_deadline=0.5)
    space = CoDS(
        cluster, domain,
        dart=HybridDART(cluster, injector=injector),
        replication=2, placer=ReplicaPlacer(cluster, 0),
        write_quorum=2, read_quorum=1,
    )
    sim = SimEngine()
    engine = WorkflowEngine(
        dag, cluster, sim=sim, injector=injector,
        defer_crash_redispatch=True, registry=space.dart.registry,
    )
    manager = ResilienceManager(
        config, sim, space, engine, space.dart.registry, injector=injector,
    )
    manager.install()
    reads = []

    def produce(ctx):
        for rank in range(producer.ntasks):
            space.put_seq(
                ctx.group.core(rank), "u",
                producer.decomposition.task_intervals(rank),
                element_size=8, version=0, app_id=1,
                generation=ctx.generation,  # the fence token
            )
        return 1.0

    def consume(ctx):
        sched, records = space.get_seq(
            ctx.group.core(0), "u", Box.from_extents(domain),
            version=0, app_id=3,
        )
        reads.append(sched)
        return 0.0

    engine.set_routine(1, produce)
    engine.set_routine(2, lambda ctx: 1.0)
    engine.set_routine(3, consume)
    engine.run()

    print("\n--- staged run, 60 s cut vs 0.5 s deadline: fence + re-enact")
    print(f"    consumer reads completed: {len(reads)}")
    served = {cluster.node_of_core(p.src_core) for p in reads[0].plans}
    print(f"    served from nodes {sorted(served)} (majority island)")
    print(f"    summary: {manager.summary()['partition']}")


if __name__ == "__main__":
    main()
