#!/usr/bin/env python
"""In-situ mapping on a heterogeneous platform (paper §VII future work).

The paper's future-work direction: task mapping on heterogeneous multicore
platforms. Because every mapper here reasons about per-node free-core lists
rather than a fixed cores-per-node constant, they run unchanged on a
cluster mixing fat and thin nodes. This example couples a simulation with
an analysis code on a cluster of 24-core "fat" nodes and 8-core "thin"
nodes and shows the server-side partitioner packing coupled task groups
into the heterogeneous capacities.

Run:  python examples/heterogeneous_nodes.py
"""

from repro import AppSpec, Coupling, DecompositionDescriptor
from repro.cods.space import CoDS
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.mapping.serverside import ServerSideMapper
from repro.hardware.hetero import HeterogeneousCluster
from repro.transport.message import TransferKind

# 2 fat nodes (24 cores) + 6 thin nodes (8 cores) = 96 cores.
CORE_COUNTS = [24, 24, 8, 8, 8, 8, 8, 8]
DOMAIN = (128, 128, 128)


def run(mapper_name: str) -> None:
    cluster = HeterogeneousCluster(CORE_COUNTS)
    sim = AppSpec(1, "sim",
                  DecompositionDescriptor.uniform(DOMAIN, (4, 4, 4)), var="u")
    ana = AppSpec(2, "ana",
                  DecompositionDescriptor.uniform(DOMAIN, (4, 2, 2)), var="u")
    if mapper_name == "data-centric":
        mapping = ServerSideMapper(seed=0).map_bundle(
            [sim, ana], cluster, couplings=[Coupling(sim, ana)]
        )
    else:
        mapping = RoundRobinMapper().map_bundle([sim, ana], cluster)

    space = CoDS(cluster, DOMAIN)
    for rank in range(sim.ntasks):
        space.put_cont(mapping.core_of(1, rank), "u",
                       sim.decomposition.task_intervals(rank))
    for task in ana.tasks():
        space.get_cont(mapping.core_of(2, task.rank), "u",
                       task.requested_region, app_id=2)

    m = space.dart.metrics
    net = m.network_bytes(TransferKind.COUPLING)
    shm = m.shm_bytes(TransferKind.COUPLING)
    # How many tasks landed on the fat nodes?
    fat = sum(
        1 for core in mapping.placement.values()
        if cluster.node_of_core(core) < 2
    )
    print(f"{mapper_name:>13}: network {net / 2**20:6.1f} MiB | "
          f"shm {shm / 2**20:6.1f} MiB | tasks on fat nodes: {fat}/80")


def main() -> None:
    fat_share = (24 + 24) / 96
    print(f"heterogeneous cluster {CORE_COUNTS} "
          f"({fat_share:.0%} of cores on 2 fat nodes)\n")
    for name in ("round-robin", "data-centric"):
        run(name)
    print("\nThe partitioner fills each node to its own capacity — fat nodes "
          "hold bigger\nco-located producer/consumer groups, thin nodes "
          "smaller ones.")


if __name__ == "__main__":
    main()
