#!/usr/bin/env python
"""End-to-end online data processing workflow (paper scenario 1, Figs 2/5).

A simulation streams a 3-D field to a concurrently running analysis code
every iteration. The workflow is described in the paper's Listing-1 file
format, enacted by the workflow engine, coupled through ``put_cont`` /
``get_cont``, and timed with the fluid network simulation — comparing the
round-robin and data-centric mappings.

Run:  python examples/online_data_processing.py
"""

from repro.analysis.experiments import DATA_CENTRIC, ROUND_ROBIN, run_scenario
from repro.analysis.report import format_table, mib, ms
from repro.apps.scenarios import concurrent_scenario
from repro.transport.message import TransferKind
from repro.workflow.parser import build_workflow, parse_dag

WORKFLOW_DESCRIPTION = """
# Online Data Processing Workflow
# Simulation code has appid=1, analysis code appid=2.
APP_ID 1
APP_ID 2
BUNDLE 1 2
DECOMP 1 size=256,256,256 layout=8,4,4 dist=blocked block=1
DECOMP 2 size=256,256,256 layout=4,2,2 dist=blocked block=1
"""


def main() -> None:
    # The description file alone is enough to build the workflow DAG.
    dag = build_workflow(parse_dag(WORKFLOW_DESCRIPTION))
    print(f"workflow: {len(dag.apps)} apps in {len(dag.bundles)} bundle(s); "
          f"schedule {dag.bundle_schedule()}")

    # The same workload expressed as a scenario for the experiment driver.
    scenario = concurrent_scenario(
        producer_tasks=128, consumer_tasks=16, task_side=32,
        name="online-data-processing",
    )
    print(scenario.describe())
    print()

    rows = []
    for mapper in (ROUND_ROBIN, DATA_CENTRIC):
        result = run_scenario(
            scenario if mapper == ROUND_ROBIN else concurrent_scenario(
                producer_tasks=128, consumer_tasks=16, task_side=32
            ),
            mapper, stencil_iterations=2, time_transfers=True,
        )
        m = result.metrics
        rows.append([
            mapper,
            mib(m.network_bytes(TransferKind.COUPLING)),
            mib(m.shm_bytes(TransferKind.COUPLING)),
            mib(m.network_bytes(TransferKind.INTRA_APP)),
            ms(result.retrieval_times[2]),
        ])

    print(format_table(
        ["mapper", "coupling net MiB", "coupling shm MiB",
         "stencil net MiB", "analysis retrieval ms"],
        rows,
        title="simulation -> analysis coupling, 128+16 tasks",
    ))
    speedup = rows[0][4] / rows[1][4]
    print(f"\nanalysis ingests its data {speedup:.1f}x faster in-situ")


if __name__ == "__main__":
    main()
