#!/usr/bin/env python
"""Quickstart: in-situ placement of a concurrently coupled app pair.

Builds a simulation (producer) + analysis (consumer) pair over a shared 3-D
domain, maps it onto a simulated 12-core-per-node cluster with the
data-centric (server-side) strategy and the round-robin baseline, runs the
coupling through CoDS, and prints where the bytes moved.

Run:  python examples/quickstart.py
"""

from repro import (
    AppSpec,
    Coupling,
    DecompositionDescriptor,
    InSituFramework,
)
from repro.transport.message import TransferKind


def run(strategy: str) -> None:
    # One framework instance per machine allocation: 6 nodes x 12 cores.
    fw = InSituFramework(num_nodes=6)

    # Step 1+2 of the paper's programming model: declare the coupled apps
    # and expose their data decompositions. The simulation runs 64 tasks
    # over a 128^3 domain; the analysis code runs 8 tasks over the same
    # domain.
    domain = (128, 128, 128)
    sim = AppSpec(
        app_id=1, name="simulation",
        descriptor=DecompositionDescriptor.uniform(domain, (4, 4, 4)),
        var="temperature",
    )
    viz = AppSpec(
        app_id=2, name="analysis",
        descriptor=DecompositionDescriptor.uniform(domain, (2, 2, 2)),
        var="temperature",
    )

    # Map the bundle: data-centric placement co-locates each analysis task
    # with the 8 simulation tasks whose data it consumes.
    mapping = fw.map_concurrent([sim, viz], [Coupling(sim, viz)], strategy=strategy)

    # Step 3: express the data exchange with the CoDS operators.
    space = fw.create_space(domain)
    for rank in range(sim.ntasks):
        space.put_cont(
            mapping.core_of(sim.app_id, rank), "temperature",
            sim.decomposition.task_intervals(rank),
            element_size=sim.element_size,
        )
    for task in viz.tasks():
        space.get_cont(
            mapping.core_of(viz.app_id, task.rank), "temperature",
            task.requested_region, app_id=viz.app_id,
        )

    net = fw.metrics.network_bytes(TransferKind.COUPLING)
    shm = fw.metrics.shm_bytes(TransferKind.COUPLING)
    print(f"{strategy:>13}: network {net / 2**20:6.1f} MiB | "
          f"shared-memory {shm / 2**20:6.1f} MiB | "
          f"in-situ fraction {shm / (net + shm):.0%}")


def main() -> None:
    print("Coupled simulation/analysis pair, 64+8 tasks on 6x12 cores\n")
    run("round-robin")
    run("data-centric")
    print("\nThe data-centric mapping turns most coupling traffic into "
          "intra-node shared-memory transfers - the paper's in-situ effect.")


if __name__ == "__main__":
    main()
