#!/usr/bin/env python
"""In-situ CoDS vs DataSpaces-style staging (paper §VI).

Shares the same coupled dataset two ways: staged through dedicated staging
nodes (producer -> staging -> consumer: two movements, all over the network)
and in-situ through CoDS with client-side data-centric consumer placement
(one movement, mostly through node-local shared memory). Prints the volume
comparison as bar charts.

Run:  python examples/staging_vs_insitu.py
"""

from repro import AppSpec, Cluster, DecompositionDescriptor
from repro.analysis.ascii import bar_chart
from repro.cods.space import CoDS
from repro.cods.staging import StagingArea
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.transport.message import TransferKind

DOMAIN = (96, 96, 96)


def apps():
    producer = AppSpec(1, "producer",
                       DecompositionDescriptor.uniform(DOMAIN, (4, 4, 4)),
                       var="field")
    consumer = AppSpec(2, "consumer",
                       DecompositionDescriptor.uniform(DOMAIN, (2, 2, 2)),
                       var="field")
    return producer, consumer


def run_staging():
    producer, consumer = apps()
    # Compute nodes + one dedicated staging node.
    cluster = Cluster.for_cores(producer.ntasks)
    cluster = Cluster(cluster.num_nodes + 1, machine=cluster.machine)
    area = StagingArea(cluster, DOMAIN, [cluster.num_nodes - 1])
    pmap = RoundRobinMapper().map_bundle([producer], cluster)
    for rank in range(producer.ntasks):
        area.put(pmap.core_of(1, rank), "field",
                 producer.decomposition.task_intervals(rank))
    cmap = RoundRobinMapper().map_bundle([consumer], cluster)
    for task in consumer.tasks():
        area.get(cmap.core_of(2, task.rank), "field",
                 task.requested_region, app_id=2)
    return area.dart.metrics


def run_insitu():
    producer, consumer = apps()
    cluster = Cluster.for_cores(producer.ntasks)
    space = CoDS(cluster, DOMAIN)
    pmap = RoundRobinMapper().map_bundle([producer], cluster)
    for rank in range(producer.ntasks):
        space.put_seq(pmap.core_of(1, rank), "field",
                      producer.decomposition.task_intervals(rank))
    cmap = ClientSideMapper().map_bundle([consumer], cluster,
                                         lookup=space.lookup)
    for task in consumer.tasks():
        space.get_seq(cmap.core_of(2, task.rank), "field",
                      task.requested_region, app_id=2)
    return space.dart.metrics


def main() -> None:
    staging = run_staging()
    insitu = run_insitu()
    print(f"coupling one {DOMAIN} field from 64 producers to 8 consumers\n")
    print("total bytes moved:")
    print(bar_chart(
        ["staging", "in-situ"],
        [staging.bytes(kind=TransferKind.COUPLING) / 2**20,
         insitu.bytes(kind=TransferKind.COUPLING) / 2**20],
        unit=" MiB",
    ))
    print("\nbytes over the network:")
    print(bar_chart(
        ["staging", "in-situ"],
        [staging.network_bytes(TransferKind.COUPLING) / 2**20,
         insitu.network_bytes(TransferKind.COUPLING) / 2**20],
        unit=" MiB",
    ))
    print("\nStaging shares data *indirectly*: every byte crosses the "
          "network twice.\nIn-situ CoDS leaves data in producer memory and "
          "moves consumers to it instead.")


if __name__ == "__main__":
    main()
