#!/usr/bin/env python
"""Live telemetry: watch a coupled-workflow run while it executes.

Attaches the streaming timeline collector and a progress reporter to the
concurrent scenario, entirely in memory (ring-buffer sink, progress
callback — no files), then renders what the collector saw:

* progress snapshots as they arrived (sim time, events/sec, ETA),
* per-node-group busy-fraction heat strips on the sample grid,
* the overhead self-account (what sampling itself cost).

The same machinery streams to disk on the CLI:

    repro-insitu concurrent --timeline-out tl.jsonl --sample-period 0.002 \\
        --progress
    repro-insitu timeline tl.jsonl

Run:  python examples/live_monitoring.py
"""

from repro.analysis.ascii import heat_strip
from repro.analysis.experiments import run_scenario
from repro.apps.scenarios import small_concurrent
from repro.obs.timeline import (
    ProgressReporter,
    RingBufferSink,
    TimelineCollector,
)


def main() -> None:
    scenario = small_concurrent()
    print(scenario.describe())

    # The collector samples on the *simulated* clock, as a daemon event —
    # it can never keep the run alive or move its makespan. The ring sink
    # bounds memory to the newest 4096 records whatever the run length.
    ring = RingBufferSink(4096)
    timeline = TimelineCollector(
        scenario.cluster,
        sample_period=2.5e-4,
        node_groups=scenario.cluster.num_nodes,
        sinks=(ring,),
    )

    # Progress callbacks fire on the same daemon-tick pattern; in a real
    # monitor this would update a dashboard (the CLI's --progress flag
    # renders a \r-rewritten stderr line instead).
    snapshots = []
    progress = ProgressReporter(period=1e-3, callback=snapshots.append)

    # Give the apps actual execution windows so there is utilization to
    # watch (pure redistribution finishes in simulated microseconds).
    result = run_scenario(
        scenario, time_transfers=True,
        producer_compute=5e-3, consumer_compute=3e-3,
        timeline=timeline, progress=progress,
    )

    print(f"\nlive progress ({len(snapshots)} snapshots)")
    for snap in snapshots[:5]:
        print(f"  {snap.format()}")
    if len(snapshots) > 5:
        print(f"  ... {len(snapshots) - 5} more")

    samples = [r for r in ring.records if r["kind"] == "sample"]
    print(f"\nutilization ({len(samples)} samples in the ring, "
          f"{ring.evicted} evicted)")
    groups = timeline.node_groups
    for g in range(groups):
        series = [
            min(1.0, r["busy"][g] / timeline.cores.cores_per_node)
            for r in samples
        ]
        print(f"  node {g:>2} |{heat_strip(series)}|")

    print(f"\nqueue depth peaked at "
          f"{max(r['queue'] for r in samples)} pending events; "
          f"{samples[-1]['transfers']} transfers completed")

    # The collector accounts for its own cost — the disabled path costs
    # nothing (a run without a collector registers no obs.* metrics).
    overhead = result.registry["obs.overhead.wall_seconds"].value()
    print(f"sampling overhead: {overhead * 1e3:.2f} ms host wall clock "
          f"({timeline.samples} samples, {timeline.link_samples} link "
          f"samples)")


if __name__ == "__main__":
    main()
