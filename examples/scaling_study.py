#!/usr/bin/env python
"""Weak-scaling study of the data sharing substrate (paper §V-C, Fig 16).

Scales the concurrent and sequential workloads up while keeping per-task
data constant, and fluid-simulates retrieval time on the 3-D-torus network
model — showing the contention-driven growth the paper reports, and how the
sequential scenario (twice the simultaneous requests) degrades faster.

Run:  python examples/scaling_study.py [--full]
"""

import argparse

from repro.analysis.experiments import DATA_CENTRIC, run_scenario
from repro.analysis.report import format_table, ms, series
from repro.apps.scenarios import concurrent_scenario, sequential_scenario


def measure(producer_tasks: int, task_side: int) -> tuple[float, float, float]:
    conc = concurrent_scenario(
        producer_tasks=producer_tasks,
        consumer_tasks=max(producer_tasks // 8, 1),
        task_side=task_side,
    )
    r_conc = run_scenario(conc, DATA_CENTRIC, time_transfers=True)
    seq = sequential_scenario(
        producer_tasks=producer_tasks,
        consumer_tasks=(producer_tasks // 4, 3 * producer_tasks // 4),
        task_side=task_side,
    )
    r_seq = run_scenario(seq, DATA_CENTRIC, time_transfers=True)
    return (
        r_conc.retrieval_times[2],
        r_seq.retrieval_times[2],
        r_seq.retrieval_times[3],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run paper-scale points (512..4096 tasks, slow)")
    args = parser.parse_args()

    scales = [512, 1024, 2048, 4096] if args.full else [32, 64, 128, 256]
    task_side = 128 if args.full else 16

    rows = []
    cap2, sap2, sap3 = [], [], []
    for p in scales:
        a, b, c = measure(p, task_side)
        cap2.append(a)
        sap2.append(b)
        sap3.append(c)
        rows.append([p, ms(a), ms(b), ms(c)])

    print(format_table(
        ["producer tasks", "CAP2 ms", "SAP2 ms", "SAP3 ms"],
        rows,
        title="weak scaling of coupled-data retrieval time (data-centric mapping)",
    ))
    print()
    print(series("CAP2", scales, [ms(t) for t in cap2]))
    print(series("SAP2", scales, [ms(t) for t in sap2]))
    print(series("SAP3", scales, [ms(t) for t in sap3]))
    growth_c = cap2[-1] - cap2[0]
    growth_s = max(sap2[-1] - sap2[0], sap3[-1] - sap3[0])
    print(f"\nretrieval-time growth over a {scales[-1] // scales[0]}x scale-up: "
          f"concurrent {ms(growth_c):.2f} ms, sequential {ms(growth_s):.2f} ms "
          "(paper: both small; sequential grows faster)")


if __name__ == "__main__":
    main()
