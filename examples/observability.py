#!/usr/bin/env python
"""Observability: trace and profile a coupled-workflow run.

Runs the sequential climate-modeling scenario with a :class:`Tracer` and a
:class:`MetricsRegistry` attached, then shows the three ways to look at the
result:

* the in-memory span tree (hierarchical, sim-time-stamped),
* the metrics registry snapshot (counters / gauges / histograms),
* the ``trace-report`` profile (timeline, hot spans, DHT hops, transfers).

It also writes ``trace.json`` — open it in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing`` to browse the run visually.

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

from repro.analysis.experiments import run_scenario
from repro.apps.scenarios import small_sequential
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import TraceReport
from repro.obs.tracer import Tracer


def main() -> None:
    tracer = Tracer()
    registry = MetricsRegistry()

    scenario = small_sequential()
    print(scenario.describe())
    result = run_scenario(scenario, tracer=tracer, registry=registry)

    # 1. The span tree: every layer's work, nested, on the simulated clock.
    spans = list(tracer.all_spans())
    queries = tracer.find("dht.query")
    print(f"\ntraced {len(spans)} spans "
          f"({result.sim_events} engine events dispatched)")
    print(f"  dht.query spans: {len(queries)}, "
          f"first touched {queries[0].attrs['hops']} DHT core(s)")

    # 2. The metrics registry: exact counters behind the trace.
    print("\nmetrics registry snapshot")
    print(registry.format_summary())

    # 3. The profile: write trace + metrics, then report on the files —
    #    the same path `repro-insitu <scenario> --trace-out --metrics-out`
    #    and `repro-insitu trace-report` use.
    out = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "trace.json"
    metrics_out = out.with_name("metrics.json")
    tracer.write_chrome(str(out))
    registry.write_json(str(metrics_out))

    report = TraceReport.from_files(str(out), str(metrics_out))
    print("\ntrace-report profile")
    print(report.format(top=6))
    print(f"\ntrace written to {out} - open it in Perfetto to browse the run")


if __name__ == "__main__":
    main()
