#!/usr/bin/env python
"""When does in-situ placement stop working? (paper Fig 10)

Sweeps producer/consumer distribution pairs and shows two linked effects:
the consumer-task fan-out (how many producers each consumer must pull from)
and the network fraction of the coupled data that survives data-centric
mapping. Matching distributions keep the fan-out within a node's core count;
mixed ones explode it, and no placement can keep the traffic on-node.

Run:  python examples/mixed_distributions.py
"""

from repro.analysis.experiments import DATA_CENTRIC, run_scenario
from repro.analysis.report import format_table
from repro.apps.scenarios import concurrent_scenario
from repro.core.commgraph import Coupling, build_comm_graph
from repro.transport.message import TransferKind

PAIRS = [
    ("blocked", "blocked"),
    ("cyclic", "cyclic"),
    ("block_cyclic", "block_cyclic"),
    ("blocked", "cyclic"),
    ("blocked", "block_cyclic"),
    ("cyclic", "block_cyclic"),
]


def analyze(producer_dist: str, consumer_dist: str):
    scenario = concurrent_scenario(
        producer_tasks=64, consumer_tasks=8, task_side=32,
        producer_dist=producer_dist, consumer_dist=consumer_dist,
    )
    producer, consumer = scenario.producer, scenario.consumers[0]
    cg = build_comm_graph([producer, consumer], [Coupling(producer, consumer)])
    max_fanout = max(
        cg.graph.degree(cg.vertex_of[(consumer.app_id, r)])
        for r in range(consumer.ntasks)
    )
    result = run_scenario(scenario, DATA_CENTRIC)
    net = result.metrics.network_bytes(TransferKind.COUPLING)
    shm = result.metrics.shm_bytes(TransferKind.COUPLING)
    return max_fanout, net / (net + shm), scenario.cluster.cores_per_node


def main() -> None:
    rows = []
    cpn = None
    for pd, cd in PAIRS:
        fanout, net_frac, cpn = analyze(pd, cd)
        verdict = "in-situ works" if fanout <= cpn else "fan-out too wide"
        rows.append([f"{pd}/{cd}", fanout, f"{net_frac:.0%}", verdict])

    print(format_table(
        ["distributions", "max sources/task", "network fraction", "verdict"],
        rows,
        title=f"distribution-pattern sweep, 64 producers -> 8 consumers "
        f"({cpn} cores/node)",
    ))
    print("\nA consumer task can only be co-located with its sources while "
          "they fit on one node;\nmixed distributions scatter each request "
          "across the whole producer grid (paper Fig 10).")


if __name__ == "__main__":
    main()
