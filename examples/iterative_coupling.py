#!/usr/bin/env python
"""Iterative coupling: schedule-cache amortization over simulation steps.

Runs 10 coupling iterations of a producer/consumer pair under the in-situ
(client-side data-centric) placement and shows (a) the per-iteration
transfer volume staying constant, (b) the DHT control traffic collapsing
after the first iteration thanks to communication-schedule reuse, and
(c) version eviction bounding the space's resident memory.

Run:  python examples/iterative_coupling.py
"""

from repro import AppSpec, Cluster, DecompositionDescriptor
from repro.analysis.report import format_table
from repro.apps.iterative import IterativeCoupling
from repro.cods.space import CoDS
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper

ITERATIONS = 10
DOMAIN = (64, 64, 64)


def main() -> None:
    cluster = Cluster(6)  # 6 x 12-core nodes
    producer = AppSpec(
        1, "solver", DecompositionDescriptor.uniform(DOMAIN, (4, 4, 4)),
        var="pressure",
    )
    consumer = AppSpec(
        2, "monitor", DecompositionDescriptor.uniform(DOMAIN, (2, 2, 2)),
        var="pressure",
    )
    space = CoDS(cluster, DOMAIN)

    producer_mapping = RoundRobinMapper().map_bundle([producer], cluster)
    # Warm-up put so the client-side mapper can see where data will live.
    for rank in range(producer.ntasks):
        space.put_seq(
            producer_mapping.core_of(1, rank), "pressure",
            producer.decomposition.task_intervals(rank), version=0,
        )
    consumer_mapping = ClientSideMapper().map_bundle(
        [consumer], cluster, lookup=space.lookup,
        available_cores=[c for c in cluster.cores()
                         if c not in producer_mapping.placement.values()],
    )
    # Reset and rerun the warm-up version through the iterative driver.
    for rank in range(producer.ntasks):
        space.evict(producer_mapping.core_of(1, rank), "pressure", 0)
    space.dart.metrics.clear()

    run = IterativeCoupling(
        producer=producer, consumer=consumer, space=space,
        producer_mapping=producer_mapping, consumer_mapping=consumer_mapping,
        keep_versions=2,
    )
    run.run(ITERATIONS)

    rows = [
        [h.iteration, h.coupled_bytes / 2**20, h.network_bytes / 2**20,
         h.control_msgs, h.cache_hits]
        for h in run.history
    ]
    print(format_table(
        ["iter", "coupled MiB", "network MiB", "control msgs", "cache hits"],
        rows,
        title=f"{ITERATIONS} coupling iterations, solver(64) -> monitor(8)",
    ))
    print(f"\ncontrol messages: {run.warmup_control_msgs} on iteration 0, "
          f"{run.steady_state_control_msgs} at steady state "
          "(schedule reuse skips the DHT queries)")
    print(f"resident coupled data bounded at "
          f"{run.resident_bytes() / 2**20:.0f} MiB by version eviction")


if __name__ == "__main__":
    main()
