#!/usr/bin/env python
"""Coupled climate-modeling workflow (paper scenario 2, Figs 3/5).

The atmosphere model runs first and stores boundary fields in CoDS; the
land and sea-ice models then launch concurrently *on the same nodes* and
pull their inputs. The client-side data-centric mapping dispatches each
land/sea-ice task to the node already holding its data.

This example drives the full workflow engine explicitly (rather than the
experiment driver) to show the user-facing API: DAG with bundles, per-bundle
mappers, app routines, CoDS operators.

Run:  python examples/climate_modeling.py
"""

from repro import AppSpec, Bundle, DecompositionDescriptor, WorkflowDAG
from repro.apps.consumer import ConsumerApp
from repro.apps.producer import ProducerApp
from repro.cods.space import CoDS
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.hardware.cluster import Cluster
from repro.transport.message import TransferKind
from repro.workflow.engine import WorkflowEngine

DOMAIN = (192, 96, 64)  # lon x lat x levels


def build_apps():
    atmosphere = AppSpec(
        app_id=1, name="atmosphere",
        descriptor=DecompositionDescriptor.uniform(DOMAIN, (4, 4, 4)),
        var="boundary-fields",
    )
    land = AppSpec(
        app_id=2, name="land",
        descriptor=DecompositionDescriptor.uniform(DOMAIN, (4, 2, 2)),
        var="boundary-fields",
    )
    sea_ice = AppSpec(
        app_id=3, name="sea-ice",
        descriptor=DecompositionDescriptor.uniform(DOMAIN, (4, 4, 3)),
        var="boundary-fields",
    )
    return atmosphere, land, sea_ice


def run(strategy: str) -> dict:
    atmosphere, land, sea_ice = build_apps()
    cluster = Cluster.for_cores(atmosphere.ntasks)  # 64 tasks -> 6 nodes
    space = CoDS(cluster, DOMAIN)

    # The science defines the order: land and sea-ice run concurrently,
    # after the atmosphere model has completed (paper §II-A).
    dag = WorkflowDAG(
        [atmosphere, land, sea_ice],
        edges=[(1, 2), (1, 3)],
        bundles=[Bundle((1,)), Bundle((2, 3))],
    )
    engine = WorkflowEngine(dag, cluster)
    engine.set_routine(1, ProducerApp(
        spec=atmosphere, space=space, mode="seq", compute_seconds=30.0,
    ))
    engine.set_routine(2, ConsumerApp(spec=land, space=space, mode="seq"))
    engine.set_routine(3, ConsumerApp(spec=sea_ice, space=space, mode="seq"))

    consumer_bundle = engine.bundle_index_of(2)
    if strategy == "data-centric":
        # Lookup resolves lazily: the DHT has content only after the
        # atmosphere app ran.
        engine.set_bundle_mapper(
            consumer_bundle, ClientSideMapper(), lookup=lambda: space.lookup
        )
    else:
        engine.set_bundle_mapper(consumer_bundle, RoundRobinMapper())

    runs = engine.run()
    return {
        "makespan": engine.makespan,
        "net": space.dart.metrics.network_bytes(TransferKind.COUPLING),
        "shm": space.dart.metrics.shm_bytes(TransferKind.COUPLING),
        "land_start": runs[2].start,
    }


def main() -> None:
    print(f"climate workflow on domain {DOMAIN}: atmosphere(64) -> "
          "land(16) + sea-ice(48)\n")
    for strategy in ("round-robin", "data-centric"):
        r = run(strategy)
        print(f"{strategy:>13}: boundary data over network "
              f"{r['net'] / 2**20:6.1f} MiB, via shared memory "
              f"{r['shm'] / 2**20:6.1f} MiB "
              f"(land/sea-ice launched at t={r['land_start']:.0f}s)")
    print("\nclient-side mapping moved each land/sea-ice task to the node "
          "where the atmosphere model left its input fields.")


if __name__ == "__main__":
    main()
