#!/usr/bin/env python
"""Real data end-to-end: heat simulation + in-situ monitoring.

Unlike the accounting-only scenarios, this pipeline pushes actual numpy
field data through every layer: a domain-decomposed Jacobi heat solver
steps a hot plate, accounts its halo exchanges through HybridDART,
publishes per-task blocks (with payloads) into CoDS, and a monitoring app
mapped next to the data assembles subfields and prints the temperature
statistics it measured — values bit-identical to the solver's state.

Run:  python examples/heat_pipeline.py
"""

import numpy as np

from repro import AppSpec, Cluster, DecompositionDescriptor
from repro.analysis.ascii import sparkline
from repro.apps.heat import HeatMonitor, HeatSolver
from repro.cods.space import CoDS
from repro.core.mapping.clientside import ClientSideMapper
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.domain.box import Box
from repro.transport.message import TransferKind

DOMAIN = (64, 64)
STEPS_PER_SNAPSHOT = 20
SNAPSHOTS = 8


def main() -> None:
    cluster = Cluster(3, machine=None)  # 3 x 12-core Jaguar-like nodes
    solver_spec = AppSpec(
        1, "heat-solver", DecompositionDescriptor.uniform(DOMAIN, (4, 4)),
        var="temperature",
    )
    monitor_spec = AppSpec(
        2, "monitor", DecompositionDescriptor.uniform(DOMAIN, (2, 2)),
        var="temperature",
    )

    # A hot square in a cold plate with cold boundaries.
    field = np.zeros(DOMAIN)
    field[24:40, 24:40] = 100.0
    solver = HeatSolver(solver_spec, initial=field, boundary=0.0)

    space = CoDS(cluster, DOMAIN)
    solver_mapping = RoundRobinMapper().map_bundle([solver_spec], cluster)

    peaks, means = [], []
    for version in range(SNAPSHOTS):
        solver.step(STEPS_PER_SNAPSHOT, mapping=solver_mapping, dart=space.dart)
        solver.publish(space, solver_mapping, version=version)
        peaks.append(solver.peak)
        means.append(float(solver.field.mean()))

    # Map the monitor next to the published data and scan the last snapshot.
    free = [c for c in cluster.cores()
            if c not in solver_mapping.placement.values()]
    monitor_mapping = ClientSideMapper().map_bundle(
        [monitor_spec], cluster, lookup=space.lookup, available_cores=free,
    )
    monitor = HeatMonitor(monitor_spec, space)
    stats = monitor.probe(
        monitor_mapping.core_of(2, 0), Box(lo=(0, 0), hi=DOMAIN),
        version=SNAPSHOTS - 1,
    )

    print(f"heat pipeline: {SNAPSHOTS} snapshots x {STEPS_PER_SNAPSHOT} Jacobi steps "
          f"on a {DOMAIN} plate\n")
    print(f"peak temperature per snapshot: {sparkline(peaks)}  "
          f"({peaks[0]:.1f} -> {peaks[-1]:.1f})")
    print(f"mean temperature per snapshot: {sparkline(means)}  "
          f"({means[0]:.3f} -> {means[-1]:.3f})")
    print(f"\nmonitor measured (assembled from CoDS payloads): "
          f"max={stats['max']:.2f} mean={stats['mean']:.3f}")
    assert abs(stats["max"] - solver.peak) < 1e-12  # end-to-end integrity
    m = space.dart.metrics
    print(f"traffic: coupling {m.bytes(kind=TransferKind.COUPLING) / 2**10:.0f} KiB, "
          f"halos {m.bytes(kind=TransferKind.INTRA_APP) / 2**10:.0f} KiB "
          f"({m.network_fraction(TransferKind.COUPLING):.0%} of coupling over network)")


if __name__ == "__main__":
    main()
