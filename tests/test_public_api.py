"""Public-API surface checks: everything exported must exist and import."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.domain",
    "repro.sfc",
    "repro.partition",
    "repro.hardware",
    "repro.transport",
    "repro.sim",
    "repro.cods",
    "repro.core",
    "repro.core.mapping",
    "repro.workflow",
    "repro.apps",
    "repro.analysis",
    "repro.cli",
    "repro.errors",
]


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_members_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_top_level_all_resolves(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_errors_hierarchy(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if exc is not errors.ReproError:
                assert issubclass(exc, errors.ReproError)

    def test_key_classes_reachable_from_top(self):
        # The objects a downstream user needs for the quickstart.
        for symbol in (
            "InSituFramework", "AppSpec", "Coupling",
            "DecompositionDescriptor", "CoDS", "Cluster",
            "WorkflowDAG", "WorkflowEngine", "Box",
        ):
            assert hasattr(repro, symbol)

    def test_docstrings_on_public_classes(self):
        """Every public class/function at top level carries a docstring."""
        import inspect

        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{symbol} lacks a docstring"
