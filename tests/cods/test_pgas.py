"""Tests for the PGAS global-array view."""

import numpy as np
import pytest

from repro.cods.pgas import GlobalArray
from repro.cods.space import CoDS
from repro.core.mapping.roundrobin import RoundRobinMapper
from repro.core.task import AppSpec
from repro.domain.descriptor import DecompositionDescriptor
from repro.errors import SpaceError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.transport.message import TransferKind, Transport


def make_array(domain=(16, 16), layout=(2, 2), fill=0.0, dtype=np.float64):
    cluster = Cluster(4, machine=generic_multicore(4))
    space = CoDS(cluster, domain, use_schedule_cache=False)
    spec = AppSpec(
        1, "ga", DecompositionDescriptor.uniform(domain, layout), var="A"
    )
    mapping = RoundRobinMapper().map_bundle([spec], cluster)
    return GlobalArray(space, spec, mapping, dtype=dtype, fill=fill), space


class TestSlicing:
    def test_full_read(self):
        ga, _ = make_array(fill=7.0)
        out = ga.read(0, (slice(None), slice(None)))
        assert out.shape == (16, 16)
        assert np.all(out == 7.0)

    def test_section_read(self):
        ga, _ = make_array(fill=1.0)
        out = ga.read(0, (slice(2, 6), slice(3, 9)))
        assert out.shape == (4, 6)

    def test_integer_index(self):
        ga, _ = make_array(fill=2.0)
        out = ga.read(0, (5, slice(0, 16)))
        assert out.shape == (1, 16)

    def test_negative_indices(self):
        ga, _ = make_array()
        out = ga.read(0, (slice(-4, None), slice(None, -8)))
        assert out.shape == (4, 8)

    def test_bad_keys(self):
        ga, _ = make_array()
        with pytest.raises(SpaceError):
            ga.read(0, (slice(0, 4),))  # rank mismatch
        with pytest.raises(SpaceError):
            ga.read(0, (slice(0, 20), slice(0, 4)))  # out of range
        with pytest.raises(SpaceError):
            ga.read(0, (slice(0, 8, 2), slice(0, 4)))  # strided


class TestOneSidedSemantics:
    def test_write_then_read(self):
        ga, _ = make_array()
        ga.write(0, (slice(4, 8), slice(4, 8)), 9.0)
        out = ga.read(1, (slice(None), slice(None)))
        assert np.all(out[4:8, 4:8] == 9.0)
        assert out.sum() == 9.0 * 16

    def test_write_spanning_partitions(self):
        """A section crossing all four partitions updates each owner."""
        ga, _ = make_array()
        values = np.arange(64, dtype=np.float64).reshape(8, 8)
        ga.write(0, (slice(4, 12), slice(4, 12)), values)
        out = ga.read(0, (slice(4, 12), slice(4, 12)))
        assert np.array_equal(out, values)

    def test_writes_accounted_to_owners(self):
        ga, space = make_array()
        before = space.dart.metrics.bytes(kind=TransferKind.COUPLING)
        ga.write(15, (slice(0, 4), slice(0, 4)), 1.0)  # core 15 -> owner core 0
        moved = space.dart.metrics.bytes(kind=TransferKind.COUPLING) - before
        assert moved == 16 * 8
        assert space.dart.metrics.network_bytes(TransferKind.COUPLING) > 0

    def test_local_write_is_shm(self):
        ga, space = make_array()
        ga.write(1, (slice(0, 4), slice(0, 4)), 1.0)  # core 1, owner core 0
        # Same node -> shm
        recs_net = space.dart.metrics.network_bytes(TransferKind.COUPLING)
        assert recs_net == 0

    def test_to_numpy(self):
        ga, _ = make_array(fill=3.5)
        arr = ga.to_numpy(2)
        assert arr.shape == (16, 16)
        assert np.all(arr == 3.5)

    def test_dtype_respected(self):
        ga, _ = make_array(dtype=np.float32, fill=1.0)
        out = ga.read(0, (slice(0, 2), slice(0, 2)))
        assert out.dtype == np.float32

    def test_matches_numpy_reference(self):
        """Random writes against a plain numpy oracle."""
        ga, _ = make_array()
        ref = np.zeros((16, 16))
        rng = np.random.default_rng(3)
        for _ in range(10):
            r0, c0 = rng.integers(0, 12, size=2)
            h, w = rng.integers(1, 5, size=2)
            val = float(rng.random())
            ga.write(0, (slice(int(r0), int(r0 + h)), slice(int(c0), int(c0 + w))), val)
            ref[r0:r0 + h, c0:c0 + w] = val
        assert np.array_equal(ga.to_numpy(0), ref)
