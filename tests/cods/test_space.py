"""Tests for the CoDS shared-space facade (Table I operators)."""

import pytest

from repro.cods.space import CoDS
from repro.domain.box import Box
from repro.errors import ScheduleError, SpaceError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.transport.message import TransferKind, Transport


def make_space(nodes=4, cpn=4, extents=(16, 16), **kw):
    cluster = Cluster(nodes, machine=generic_multicore(cpn))
    return CoDS(cluster, extents, **kw)


class TestPutGetSeq:
    def test_roundtrip(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(8, 16)))
        space.put_seq(4, "T", Box(lo=(8, 0), hi=(16, 16)))
        sched, recs = space.get_seq(5, "T", Box(lo=(4, 0), hi=(12, 16)))
        assert sched.total_cells == 8 * 16
        assert len(recs) == 2
        # Pull from core 4 (same node as 5) is shm; from core 0 is network.
        transports = {r.src_core: r.transport for r in recs}
        assert transports[4] is Transport.SHM
        assert transports[0] is Transport.NETWORK

    def test_get_missing_data_raises(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(8, 16)))
        with pytest.raises(ScheduleError):
            space.get_seq(1, "T", Box(lo=(0, 0), hi=(16, 16)))

    def test_put_outside_domain(self):
        space = make_space()
        with pytest.raises(SpaceError):
            space.put_seq(0, "T", Box(lo=(10, 10), hi=(20, 20)))

    def test_get_outside_domain(self):
        space = make_space()
        with pytest.raises(SpaceError):
            space.get_seq(0, "T", Box(lo=(0, 0), hi=(17, 17)))

    def test_bytes_recorded_as_coupling(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        _, recs = space.get_seq(12, "T", Box(lo=(0, 0), hi=(16, 16)), app_id=2)
        assert space.dart.metrics.bytes(
            kind=TransferKind.COUPLING, app_id=2
        ) == sum(r.nbytes for r in recs) == 16 * 16 * 8

    def test_stored_bytes(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(4, 4)), element_size=8)
        assert space.stored_bytes() == 16 * 8

    def test_evict(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        space.evict(0, "T")
        assert space.stored_bytes() == 0
        with pytest.raises(ScheduleError):
            space.get_seq(1, "T", Box(lo=(0, 0), hi=(4, 4)))

    def test_get_after_evict_raises_despite_cached_schedule(self):
        """Regression: evict used to leave the schedule cache pointing at
        the evicted store, so a later get_seq silently served a stale plan
        pulling from an empty store. The cached schedule must be rejected
        and the miss path must raise cleanly."""
        space = make_space()
        box = Box(lo=(0, 0), hi=(16, 16))
        space.put_seq(0, "T", box)
        space.get_seq(5, "T", box)  # populates the schedule cache
        space.evict(0, "T")
        with pytest.raises(ScheduleError):
            space.get_seq(5, "T", box)  # same key -> would hit the cache
        # Also via a different reader that never cached.
        with pytest.raises(ScheduleError):
            space.get_seq(9, "T", Box(lo=(0, 0), hi=(4, 4)))

    def test_evict_replicated_object_drops_every_copy(self):
        from repro.resilience.replication import ReplicaPlacer

        cluster = Cluster(4, machine=generic_multicore(4))
        space = CoDS(cluster, (16, 16), replication=2,
                     placer=ReplicaPlacer(cluster, 0))
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert space.stored_bytes() == 2 * 16 * 16 * 8
        space.evict(0, "T")
        assert space.stored_bytes() == 0
        with pytest.raises(ScheduleError):
            space.get_seq(1, "T", Box(lo=(0, 0), hi=(4, 4)))

    def test_memory_capacity_enforced(self):
        cluster = Cluster(1, machine=generic_multicore(2))
        space = CoDS(cluster, (1024, 1024), enforce_memory=True)
        # One core's share of 16 GiB is 8 GiB; a 1024x1024 region at a huge
        # element size overflows it.
        with pytest.raises(SpaceError):
            space.put_seq(
                0, "T", Box(lo=(0, 0), hi=(1024, 1024)), element_size=2 ** 20
            )

    def test_unknown_core(self):
        space = make_space()
        with pytest.raises(SpaceError):
            space.put_seq(999, "T", Box(lo=(0, 0), hi=(4, 4)))


class TestScheduleCaching:
    def test_second_get_uses_cache(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        box = Box(lo=(0, 0), hi=(8, 8))
        space.get_seq(5, "T", box)
        control_after_first = space.dart.metrics.count(kind=TransferKind.CONTROL)
        sched2, recs2 = space.get_seq(5, "T", box)
        # No new DHT control messages, but data still transferred.
        assert space.dart.metrics.count(kind=TransferKind.CONTROL) == control_after_first
        assert len(recs2) == 1
        assert space.schedule_cache.hits == 1

    def test_cache_disabled(self):
        space = make_space(use_schedule_cache=False)
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        box = Box(lo=(0, 0), hi=(8, 8))
        space.get_seq(5, "T", box)
        c1 = space.dart.metrics.count(kind=TransferKind.CONTROL)
        space.get_seq(5, "T", box)
        assert space.dart.metrics.count(kind=TransferKind.CONTROL) > c1


class TestConcurrentCoupling:
    def test_put_get_cont(self):
        space = make_space()
        space.put_cont(0, "U", Box(lo=(0, 0), hi=(8, 16)), element_size=4)
        space.put_cont(4, "U", Box(lo=(8, 0), hi=(16, 16)), element_size=4)
        sched, recs = space.get_cont(5, "U", Box(lo=(0, 0), hi=(16, 16)), app_id=3)
        assert sched.total_bytes == 16 * 16 * 4
        assert len(recs) == 2
        assert space.dart.metrics.bytes(
            kind=TransferKind.COUPLING, app_id=3
        ) == 16 * 16 * 4

    def test_get_cont_without_producer(self):
        space = make_space()
        with pytest.raises(SpaceError):
            space.get_cont(0, "U", Box(lo=(0, 0), hi=(4, 4)))

    def test_element_size_mismatch(self):
        space = make_space()
        space.put_cont(0, "U", Box(lo=(0, 0), hi=(8, 8)), element_size=4)
        with pytest.raises(SpaceError):
            space.put_cont(1, "U", Box(lo=(8, 8), hi=(16, 16)), element_size=8)

    def test_incomplete_producers(self):
        space = make_space()
        space.put_cont(0, "U", Box(lo=(0, 0), hi=(8, 8)), element_size=4)
        with pytest.raises(ScheduleError):
            space.get_cont(1, "U", Box(lo=(0, 0), hi=(16, 16)))

    def test_reset_concurrent(self):
        space = make_space()
        space.put_cont(0, "U", Box(lo=(0, 0), hi=(16, 16)), element_size=4)
        space.reset_concurrent("U")
        with pytest.raises(SpaceError):
            space.get_cont(1, "U", Box(lo=(0, 0), hi=(4, 4)))

    def test_no_staging_for_concurrent(self):
        """Concurrent coupling must not store anything in the space."""
        space = make_space()
        space.put_cont(0, "U", Box(lo=(0, 0), hi=(16, 16)), element_size=4)
        assert space.stored_bytes() == 0


class TestInSituPlacementEffect:
    def test_colocated_consumer_all_shm(self):
        """A consumer placed on the producer's node pulls via shared memory
        only — the in-situ scenario of the paper's Fig 2."""
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        _, recs = space.get_seq(1, "T", Box(lo=(0, 0), hi=(16, 16)))  # same node
        assert all(r.transport is Transport.SHM for r in recs)
        assert space.dart.metrics.network_bytes(TransferKind.COUPLING) == 0

    def test_remote_consumer_all_network(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        _, recs = space.get_seq(12, "T", Box(lo=(0, 0), hi=(16, 16)))  # node 3
        assert all(r.transport is Transport.NETWORK for r in recs)
