"""Tests for the spatial DHT and the data lookup service."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cods.dht import SpatialDHT
from repro.cods.lookup import DataLookupService
from repro.cods.objects import DataObject, region_from_box
from repro.domain.box import Box
from repro.errors import LookupError_, SpaceError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.sfc.linearize import DomainLinearizer
from repro.transport.hybriddart import HybridDART
from repro.transport.message import TransferKind


def make_setup(num_nodes=4, cpn=4, extents=(16, 16)):
    cluster = Cluster(num_nodes, machine=generic_multicore(cpn))
    dart = HybridDART(cluster)
    lin = DomainLinearizer(extents)
    dht_cores = [cluster.cores_of_node(n)[0] for n in cluster.nodes()]
    dht = SpatialDHT(lin, dht_cores, dart)
    return cluster, dart, dht


def make_obj(core, box, var="T", version=0, esize=8):
    return DataObject(
        var=var, version=version, region=region_from_box(box),
        owner_core=core, element_size=esize,
    )


class TestConstruction:
    def test_intervals_cover_index_space(self):
        _, _, dht = make_setup()
        assert dht.intervals[0][0] == 0
        assert dht.intervals[-1][1] == dht.linearizer.index_cells
        for (l1, h1), (l2, h2) in zip(dht.intervals, dht.intervals[1:]):
            assert h1 == l2

    def test_no_dht_cores(self):
        lin = DomainLinearizer((8, 8))
        with pytest.raises(SpaceError):
            SpatialDHT(lin, [])

    def test_duplicate_dht_cores(self):
        lin = DomainLinearizer((8, 8))
        with pytest.raises(SpaceError):
            SpatialDHT(lin, [0, 0])


class TestRegisterQuery:
    def test_roundtrip(self):
        _, _, dht = make_setup()
        obj = make_obj(core=5, box=Box(lo=(0, 0), hi=(8, 8)))
        dht.register(obj)
        locs = dht.query(0, "T", Box(lo=(2, 2), hi=(6, 6)))
        assert len(locs) == 1
        assert locs[0].owner_core == 5

    def test_query_filters_nonoverlapping(self):
        _, _, dht = make_setup()
        dht.register(make_obj(core=1, box=Box(lo=(0, 0), hi=(4, 4))))
        dht.register(make_obj(core=2, box=Box(lo=(8, 8), hi=(12, 12))))
        locs = dht.query(0, "T", Box(lo=(0, 0), hi=(2, 2)))
        assert [l.owner_core for l in locs] == [1]

    def test_query_unknown_var(self):
        _, _, dht = make_setup()
        assert dht.query(0, "nope", Box(lo=(0, 0), hi=(4, 4))) == []

    def test_query_version_filter(self):
        _, _, dht = make_setup()
        dht.register(make_obj(core=1, box=Box(lo=(0, 0), hi=(4, 4)), version=0))
        dht.register(make_obj(core=1, box=Box(lo=(0, 0), hi=(4, 4)), version=1))
        locs = dht.query(0, "T", Box(lo=(0, 0), hi=(4, 4)), version=1)
        assert len(locs) == 1 and locs[0].version == 1

    def test_dedup_across_dht_cores(self):
        # An object spanning the whole domain registers at every DHT core
        # but must appear once in a whole-domain query.
        _, _, dht = make_setup()
        dht.register(make_obj(core=3, box=Box(lo=(0, 0), hi=(16, 16))))
        locs = dht.query(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert len(locs) == 1

    def test_register_empty_region_noop(self):
        _, _, dht = make_setup()
        obj = DataObject(
            var="T", version=0,
            region=region_from_box(Box(lo=(0, 0), hi=(0, 0))),
            owner_core=0, element_size=8,
        )
        assert dht.register(obj) == 0

    def test_control_traffic_recorded(self):
        _, dart, dht = make_setup()
        dht.register(make_obj(core=5, box=Box(lo=(0, 0), hi=(16, 16))))
        n_reg = dart.metrics.count(kind=TransferKind.CONTROL)
        assert n_reg > 0
        dht.query(5, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert dart.metrics.count(kind=TransferKind.CONTROL) > n_reg

    def test_unregister(self):
        _, _, dht = make_setup()
        dht.register(make_obj(core=5, box=Box(lo=(0, 0), hi=(16, 16))))
        removed = dht.unregister("T", 0, 5)
        assert removed > 0
        assert dht.query(0, "T", Box(lo=(0, 0), hi=(16, 16))) == []
        assert dht.table_sizes() == [0] * 4

    def test_multiple_owners_found(self):
        _, _, dht = make_setup()
        dht.register(make_obj(core=0, box=Box(lo=(0, 0), hi=(8, 16))))
        dht.register(make_obj(core=4, box=Box(lo=(8, 0), hi=(16, 16))))
        locs = dht.query(0, "T", Box(lo=(4, 0), hi=(12, 16)))
        assert sorted(l.owner_core for l in locs) == [0, 4]

    def test_table_sizes_balanced_for_uniform_puts(self):
        _, _, dht = make_setup()
        # 16 blocked tiles, uniformly covering the domain.
        for i in range(4):
            for j in range(4):
                dht.register(
                    make_obj(
                        core=i * 4 + j,
                        box=Box(lo=(4 * i, 4 * j), hi=(4 * i + 4, 4 * j + 4)),
                    )
                )
        sizes = dht.table_sizes()
        assert sum(sizes) >= 16
        assert all(s > 0 for s in sizes)


class TestLookupService:
    def test_bytes_by_node(self):
        cluster, _, dht = make_setup()
        lookup = DataLookupService(dht, cluster)
        # Core 0 (node 0) holds the left half; core 4 (node 1) the right.
        dht.register(make_obj(core=0, box=Box(lo=(0, 0), hi=(8, 16))))
        dht.register(make_obj(core=4, box=Box(lo=(8, 0), hi=(16, 16))))
        per_node = lookup.bytes_by_node(0, "T", Box(lo=(4, 0), hi=(12, 16)))
        assert per_node == {0: 4 * 16 * 8, 1: 4 * 16 * 8}

    def test_best_node(self):
        cluster, _, dht = make_setup()
        lookup = DataLookupService(dht, cluster)
        dht.register(make_obj(core=0, box=Box(lo=(0, 0), hi=(12, 16))))
        dht.register(make_obj(core=4, box=Box(lo=(12, 0), hi=(16, 16))))
        node, nbytes = lookup.best_node(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert node == 0
        assert nbytes == 12 * 16 * 8

    def test_best_node_none(self):
        cluster, _, dht = make_setup()
        lookup = DataLookupService(dht, cluster)
        assert lookup.best_node(0, "T", Box(lo=(0, 0), hi=(4, 4))) is None

    def test_best_node_tie_breaks_low(self):
        cluster, _, dht = make_setup()
        lookup = DataLookupService(dht, cluster)
        dht.register(make_obj(core=4, box=Box(lo=(0, 0), hi=(8, 16))))
        dht.register(make_obj(core=0, box=Box(lo=(8, 0), hi=(16, 16))))
        node, _ = lookup.best_node(0, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert node == 0


# -- property-based --------------------------------------------------------------

boxes_16 = st.tuples(
    st.integers(0, 15), st.integers(0, 15), st.integers(1, 8), st.integers(1, 8)
).map(lambda t: Box(lo=(t[0], t[1]), hi=(min(t[0] + t[2], 16), min(t[1] + t[3], 16))))


@given(st.lists(boxes_16, min_size=1, max_size=8), boxes_16)
@settings(max_examples=40, deadline=None)
def test_query_finds_exactly_overlapping_objects(put_boxes, query_box):
    _, _, dht = make_setup()
    for i, b in enumerate(put_boxes):
        dht.register(make_obj(core=i % 16, box=b, version=i))
    locs = dht.query(0, "T", query_box)
    got = {(l.version) for l in locs}
    expect = {
        i for i, b in enumerate(put_boxes) if b.intersection_volume(query_box) > 0
    }
    assert got == expect
