"""Tests for payload-carrying objects and array assembly (fetch_seq)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cods.objects import DataObject, region_from_box
from repro.cods.space import CoDS
from repro.domain.box import Box
from repro.domain.decomposition import Decomposition
from repro.errors import SpaceError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore


def make_space(extents=(16, 16), nodes=4, cpn=4, **kw):
    return CoDS(Cluster(nodes, machine=generic_multicore(cpn)), extents, **kw)


class TestPayloadValidation:
    def region(self, box=Box(lo=(0, 0), hi=(4, 4))):
        return region_from_box(box)

    def test_shape_mismatch(self):
        with pytest.raises(SpaceError):
            DataObject(var="T", version=0, region=self.region(),
                       owner_core=0, element_size=8,
                       payload=np.zeros((3, 4)))

    def test_itemsize_mismatch(self):
        with pytest.raises(SpaceError):
            DataObject(var="T", version=0, region=self.region(),
                       owner_core=0, element_size=8,
                       payload=np.zeros((4, 4), dtype=np.float32))

    def test_valid_payload(self):
        obj = DataObject(var="T", version=0, region=self.region(),
                         owner_core=0, element_size=8,
                         payload=np.ones((4, 4)))
        assert obj.nbytes == 128

    def test_put_seq_infers_element_size(self):
        space = make_space()
        obj = space.put_seq(0, "T", Box(lo=(0, 0), hi=(4, 4)),
                            data=np.zeros((4, 4), dtype=np.float32))
        assert obj.element_size == 4


class TestFetchSeq:
    def test_single_owner_roundtrip(self):
        space = make_space()
        field = np.arange(256, dtype=np.float64).reshape(16, 16)
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)), data=field)
        out, sched, recs = space.fetch_seq(5, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert np.array_equal(out, field)
        assert sched.total_bytes == 256 * 8

    def test_subregion_fetch(self):
        space = make_space()
        field = np.arange(256, dtype=np.float64).reshape(16, 16)
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)), data=field)
        out, _, _ = space.fetch_seq(1, "T", Box(lo=(2, 3), hi=(6, 9)))
        assert np.array_equal(out, field[2:6, 3:9])

    def test_multi_owner_assembly(self):
        """A domain tiled by four producers reassembles exactly."""
        space = make_space()
        field = np.random.default_rng(0).random((16, 16))
        decomp = Decomposition((16, 16), (2, 2), "blocked")
        for rank in range(4):
            box = decomp.task_bounding_box(rank)
            space.put_seq(
                rank, "T", box,
                data=field[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1]].copy(),
            )
        out, sched, _ = space.fetch_seq(8, "T", Box(lo=(0, 0), hi=(16, 16)))
        assert np.array_equal(out, field)
        assert sched.num_sources == 4

    def test_cyclic_producer_assembly(self):
        """Strided (cyclic) contributions land in the right cells."""
        space = make_space()
        field = np.random.default_rng(1).random((8, 8))
        decomp = Decomposition((8, 8), (2, 2), "cyclic")
        for rank in range(4):
            region = decomp.task_intervals(rank)
            rows = region[0].to_array()
            cols = region[1].to_array()
            space.put_seq(rank, "T", region,
                          data=field[np.ix_(rows, cols)].copy())
        out, _, _ = space.fetch_seq(5, "T", Box(lo=(0, 0), hi=(8, 8)))
        assert np.array_equal(out, field)

    def test_version_selection(self):
        space = make_space(use_schedule_cache=False)
        box = Box(lo=(0, 0), hi=(4, 4))
        space.put_seq(0, "T", box, data=np.zeros((4, 4)), version=0)
        space.put_seq(0, "T", box, data=np.ones((4, 4)), version=1)
        out0, _, _ = space.fetch_seq(1, "T", box, version=0)
        out1, _, _ = space.fetch_seq(1, "T", box, version=1)
        outn, _, _ = space.fetch_seq(2, "T", box)  # newest
        assert out0.sum() == 0 and out1.sum() == 16 and outn.sum() == 16

    def test_missing_payload_raises(self):
        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)))  # descriptor only
        with pytest.raises(SpaceError):
            space.fetch_seq(1, "T", Box(lo=(0, 0), hi=(4, 4)))

    def test_metrics_still_recorded(self):
        from repro.transport.message import TransferKind

        space = make_space()
        space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)),
                      data=np.zeros((16, 16)))
        space.fetch_seq(12, "T", Box(lo=(0, 0), hi=(16, 16)), app_id=3)
        assert space.dart.metrics.bytes(
            kind=TransferKind.COUPLING, app_id=3
        ) == 256 * 8


@given(
    st.integers(0, 10), st.integers(0, 10), st.integers(1, 6), st.integers(1, 6),
)
@settings(max_examples=30, deadline=None)
def test_fetch_matches_numpy_slice(r0, c0, h, w):
    space = make_space()
    field = np.arange(256, dtype=np.float64).reshape(16, 16)
    space.put_seq(0, "T", Box(lo=(0, 0), hi=(16, 16)), data=field)
    box = Box(lo=(r0, c0), hi=(min(r0 + h, 16), min(c0 + w, 16)))
    out, _, _ = space.fetch_seq(1, "T", box)
    assert np.array_equal(out, field[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1]])


class TestFetch3D:
    def test_3d_multi_owner_assembly(self):
        space = make_space(extents=(8, 8, 8))
        field = np.random.default_rng(2).random((8, 8, 8))
        decomp = Decomposition((8, 8, 8), (2, 2, 2), "blocked")
        for rank in range(8):
            box = decomp.task_bounding_box(rank)
            space.put_seq(
                rank, "T", box,
                data=field[box.lo[0]:box.hi[0],
                           box.lo[1]:box.hi[1],
                           box.lo[2]:box.hi[2]].copy(),
            )
        out, sched, _ = space.fetch_seq(9, "T", Box(lo=(0, 0, 0), hi=(8, 8, 8)))
        assert np.array_equal(out, field)
        assert sched.num_sources == 8

    def test_3d_cross_partition_slab(self):
        space = make_space(extents=(8, 8, 8))
        field = np.arange(512, dtype=np.float64).reshape(8, 8, 8)
        decomp = Decomposition((8, 8, 8), (2, 1, 1), "blocked")
        for rank in range(2):
            box = decomp.task_bounding_box(rank)
            space.put_seq(rank, "T", box,
                          data=field[box.lo[0]:box.hi[0]].copy())
        out, _, _ = space.fetch_seq(5, "T", Box(lo=(2, 1, 0), hi=(6, 7, 8)))
        assert np.array_equal(out, field[2:6, 1:7, 0:8])
