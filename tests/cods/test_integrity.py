"""End-to-end data integrity and hedged pulls in the shared space.

Every object carries a content checksum from put time; deliveries are
verified at the consumer and a mismatch — wire corruption or a poisoned
at-rest copy — transparently re-fetches from a surviving replica. Slowed
sources race a hedged backup pull against the deadline budget. All of it
is deterministic per fault-plan seed.
"""

import pytest

from repro.cods.space import CoDS
from repro.domain.box import Box
from repro.errors import DataIntegrityError, SpaceError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DataCorruption,
    DuplicateDelivery,
    FaultPlan,
    SlowNode,
)
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.resilience.replication import ReplicaPlacer
from repro.transport.hybriddart import HybridDART

DOMAIN = (8, 8, 8)
VAR = "u"


def make_cluster():
    return Cluster(num_nodes=4, machine=generic_multicore(4))


def make_space(plan=None, replication=2, hedge_factor=None):
    cluster = make_cluster()
    injector = FaultInjector(plan) if plan is not None else None
    return CoDS(
        cluster, DOMAIN,
        dart=HybridDART(cluster, injector=injector),
        replication=replication,
        placer=ReplicaPlacer(cluster, 0) if replication > 1 else None,
        hedge_factor=hedge_factor,
    )


def put_domain(space, core=0, app_id=1):
    return space.put_seq(
        core, VAR, Box.from_extents(DOMAIN), element_size=8,
        version=0, app_id=app_id,
    )


def replica_of(space, primary=0):
    """The (single) replica copy of the primary's logical object."""
    (rc,) = space._replicas[(VAR, 0, primary)]
    return space._stores[rc].get(VAR, 0, of=primary)


def count(space, name):
    reg = space.dart.registry
    return int(reg[name].total()) if name in reg else 0


class TestChecksums:
    def test_put_attaches_verifiable_checksum(self):
        space = make_space()
        obj = put_domain(space)
        assert obj.checksum is not None
        assert obj.verify_checksum()

    def test_replica_shares_primary_checksum(self):
        space = make_space()
        obj = put_domain(space)
        rep = replica_of(space)
        assert rep.checksum == obj.checksum
        assert rep.verify_checksum()

    def test_hedge_factor_validated(self):
        with pytest.raises(SpaceError):
            make_space(hedge_factor=1.0)
        with pytest.raises(SpaceError):
            make_space(hedge_factor=-2.0)


class TestCorruptedPulls:
    def plan_corrupting_link(self, node_a, node_b):
        return FaultPlan(
            seed=11,
            corruptions=(
                DataCorruption(
                    src_node=node_a, dst_node=node_b, probability=0.99
                ),
            ),
        )

    def test_corrupted_delivery_refetched_from_replica(self):
        # Only the primary->consumer link corrupts; the replica (placed on
        # a third node) serves the re-fetch cleanly.
        space = make_space(plan=self.plan_corrupting_link(0, 2))
        put_domain(space)
        sched, records = space.get_seq(
            8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2
        )
        assert len(records) == 1
        assert not records[0].corrupted
        assert count(space, "integrity.refetches") >= 1
        assert count(space, "integrity.unrecoverable") == 0
        # The winning record came from the replica, not core 0.
        assert records[0].src_core != 0

    def test_every_copy_corrupt_raises(self):
        # Wildcard corruption poisons the replica at put time AND corrupts
        # the pull plus its re-fetch: nothing clean is reachable.
        plan = FaultPlan(
            seed=11, corruptions=(DataCorruption(probability=0.99),)
        )
        space = make_space(plan=plan)
        put_domain(space)
        with pytest.raises(DataIntegrityError):
            space.get_seq(8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2)
        assert count(space, "integrity.unrecoverable") == 1

    def test_poisoned_replica_detected_on_delivery(self):
        """An at-rest poisoned copy served over a clean wire still fails
        delivery verification and triggers a re-fetch."""
        plan = FaultPlan(
            seed=11,
            # Probability 0 keeps gray mode on without wire corruption.
            slow_nodes=(SlowNode(node=3, start=5.0, duration=1.0),),
        )
        space = make_space(plan=plan)
        put_domain(space)
        space._poison_copy(replica_of(space))
        rc = replica_of(space).owner_core
        # Pull directly from the poisoned replica's core.
        from repro.cods.schedule import TransferPlan

        plan_ = TransferPlan(
            src_core=rc, dst_core=8, cells=64, nbytes=512, var=VAR
        )
        rec = space._pull(plan_, app_id=2)
        assert rec.src_core != rc
        assert count(space, "integrity.refetches") == 1


class TestDuplicateDeliveries:
    def test_duplicates_dropped_and_bytes_invariant(self):
        plan = FaultPlan(
            seed=12, duplications=(DuplicateDelivery(probability=0.99),)
        )
        dirty = make_space(plan=plan)
        clean = make_space()
        for space in (dirty, clean):
            put_domain(space)
            space.get_seq(8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2)
        assert count(dirty, "integrity.duplicates_dropped") >= 1
        # Each logical transfer is accounted exactly once.
        assert dirty.dart.metrics.as_dict() == clean.dart.metrics.as_dict()


class TestHedgedPulls:
    def slow_plan(self, factor=5.0):
        return FaultPlan(
            seed=13,
            slow_nodes=(
                SlowNode(node=0, start=0.0, duration=100.0, factor=factor),
            ),
        )

    def test_hedge_wins_against_badly_slowed_primary(self):
        space = make_space(plan=self.slow_plan(5.0), hedge_factor=2.0)
        put_domain(space)
        sched, records = space.get_seq(
            8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2
        )
        assert count(space, "hedge.issued") == 1
        assert count(space, "hedge.wins") == 1
        assert count(space, "hedge.redundant_bytes") == records[0].nbytes
        assert records[0].src_core != 0  # the backup replica served it

    def test_hedge_loses_when_deadline_barely_blown(self):
        # factor 2.5 blows the 2x deadline but the backup path (deadline +
        # one clean transfer = 3x) cannot beat the 2.5x primary.
        space = make_space(plan=self.slow_plan(2.5), hedge_factor=2.0)
        put_domain(space)
        sched, records = space.get_seq(
            8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2
        )
        assert count(space, "hedge.issued") == 1
        assert count(space, "hedge.wins") == 0
        assert records[0].src_core == 0

    def test_no_hedge_without_slowdown(self):
        plan = FaultPlan(
            seed=13,
            slow_nodes=(SlowNode(node=3, start=50.0, duration=1.0),),
        )
        space = make_space(plan=plan, hedge_factor=2.0)
        put_domain(space)
        space.get_seq(8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2)
        assert count(space, "hedge.issued") == 0

    def test_hedge_counts_deterministic(self):
        def run():
            space = make_space(plan=self.slow_plan(5.0), hedge_factor=2.0)
            put_domain(space)
            space.get_seq(8, VAR, Box.from_extents(DOMAIN), version=0, app_id=2)
            return {
                n: count(space, n)
                for n in ("hedge.issued", "hedge.wins", "hedge.redundant_bytes")
            }

        assert run() == run()


class TestScrub:
    def test_scrub_finds_and_repairs_poisoned_replica(self):
        space = make_space()
        put_domain(space)
        space._poison_copy(replica_of(space))
        assert not replica_of(space).verify_checksum()
        checked, corrupt, repaired = space.scrub(repair=True)
        assert checked >= 2
        assert corrupt == 1
        assert repaired == 1
        assert replica_of(space).verify_checksum()
        assert count(space, "integrity.scrub.corrupt_found") == 1
        assert count(space, "integrity.scrub.repaired") == 1

    def test_scrub_without_repair_only_reports(self):
        space = make_space()
        put_domain(space)
        space._poison_copy(replica_of(space))
        checked, corrupt, repaired = space.scrub(repair=False)
        assert corrupt == 1 and repaired == 0
        assert not replica_of(space).verify_checksum()

    def test_clean_space_scrubs_clean(self):
        space = make_space()
        put_domain(space)
        checked, corrupt, repaired = space.scrub()
        assert checked >= 2 and corrupt == 0 and repaired == 0
