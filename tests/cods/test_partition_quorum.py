"""Quorum data plane under network partitions: writes, reads, fencing,
and heal-time reconciliation on the CoDS space.

Each scenario arms the injector on a sim clock and schedules the puts and
gets inside/outside the declared cut windows, so reachability is evaluated
at the instants the paper's protocol cares about.
"""

import numpy as np
import pytest

from repro.cods.space import CoDS
from repro.domain.box import Box
from repro.errors import NetworkPartitionError, QuorumError, StaleWriteError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NetworkPartition
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.resilience.replication import ReplicaPlacer
from repro.sim.engine import SimEngine
from repro.transport.hybriddart import HybridDART

DOMAIN = (8, 8, 8)
VAR = "u"
BOX = Box.from_extents(DOMAIN)

#: node 0 cut off from nodes {1, 2, 3} over [1.0, 3.0)
LONELY_ZERO = NetworkPartition(start=1.0, duration=2.0, groups=((0,), (1, 2, 3)))


def make_space(partition=LONELY_ZERO, replication=2, write_quorum=None,
               read_quorum=None, placer_seed=0):
    cluster = Cluster(num_nodes=4, machine=generic_multicore(4))
    plan = (
        FaultPlan(partitions=(partition,)) if partition is not None
        else FaultPlan()
    )
    injector = FaultInjector(plan)
    sim = SimEngine()
    injector.arm(sim)
    space = CoDS(
        cluster, DOMAIN,
        dart=HybridDART(cluster, injector=injector),
        replication=replication,
        placer=(
            ReplicaPlacer(cluster, placer_seed) if replication > 1 else None
        ),
        write_quorum=write_quorum,
        read_quorum=read_quorum,
    )
    return space, sim, injector


def run_staged(sim, *timed_calls):
    """Schedule ``(time, fn)`` pairs and drain the sim; exceptions from a
    step are captured (the sim loop must not unwind) and returned in order."""
    outcomes = []

    def wrap(fn):
        def step():
            try:
                outcomes.append(("ok", fn()))
            except Exception as exc:  # noqa: BLE001 - recorded for asserts
                outcomes.append(("err", exc))
        return step

    for t, fn in timed_calls:
        sim.schedule_at(t, wrap(fn))
    sim.run()
    return outcomes


def partition_counters(space):
    reg = space.dart.registry
    return {
        n: reg[n].total()
        for n in reg.names()
        if n.startswith(("partition.", "quorum.", "transport.partitioned"))
    }


class TestQuorumWrites:
    def test_isolated_writer_fails_write_quorum(self):
        """W=2 with every replica target across the cut: acks stop at the
        primary, the put raises, and no half-written copy is left behind."""
        space, sim, _ = make_space(write_quorum=2)
        outcomes = run_staged(sim, (1.5, lambda: space.put_seq(
            0, VAR, BOX, element_size=8, version=0, app_id=1,
        )))
        status, err = outcomes[0]
        assert status == "err" and isinstance(err, QuorumError)
        counters = partition_counters(space)
        assert counters["quorum.failed_writes"] == 1
        assert counters["quorum.replicas_skipped"] >= 1

    def test_isolated_writer_with_w1_degrades_instead(self):
        """W=1 is satisfiable by the primary alone: the put succeeds but is
        accounted as degraded (it landed short of full replication)."""
        space, sim, _ = make_space(write_quorum=1)
        outcomes = run_staged(sim, (1.5, lambda: space.put_seq(
            0, VAR, BOX, element_size=8, version=0, app_id=1,
        )))
        assert outcomes[0][0] == "ok"
        counters = partition_counters(space)
        assert counters["quorum.degraded_writes"] == 1
        assert counters["quorum.replicas_skipped"] >= 1

    def test_connected_writer_meets_quorum_cleanly(self):
        space, sim, _ = make_space(write_quorum=2)
        outcomes = run_staged(sim, (0.5, lambda: space.put_seq(
            0, VAR, BOX, element_size=8, version=0, app_id=1,
        )))
        assert outcomes[0][0] == "ok"
        counters = partition_counters(space)
        assert counters.get("quorum.failed_writes", 0) == 0
        assert counters.get("quorum.degraded_writes", 0) == 0


class TestQuorumReads:
    def put_then_read(self, reader_core, read_quorum=1, replication=2,
                      writer_core=0):
        space, sim, _ = make_space(
            replication=replication, read_quorum=read_quorum,
        )
        outcomes = run_staged(
            sim,
            (0.5, lambda: space.put_seq(
                writer_core, VAR, BOX, element_size=8, version=0, app_id=1,
            )),
            (1.5, lambda: space.get_seq(
                reader_core, VAR, BOX, version=0, app_id=2,
            )),
        )
        assert outcomes[0][0] == "ok", "pre-cut put must succeed"
        return space, outcomes[1]

    def test_reader_cut_from_every_copy_stalls(self):
        """Node 0's reader vs copies all on {1,2,3}: not a data-loss error —
        the copies exist, the reader just cannot reach any of them."""
        space, (status, err) = self.put_then_read(
            reader_core=0, writer_core=4,  # writer on node 1
        )
        assert status == "err" and isinstance(err, NetworkPartitionError)
        assert partition_counters(space)["partition.stalled_reads"] == 1

    def test_read_fails_over_to_reachable_replica(self):
        """Primary on the isolated node, replica in the majority: a
        majority-side reader is served by the replica and the failover is
        accounted as partition (not crash) failover."""
        space, (status, result) = self.put_then_read(
            reader_core=4, writer_core=0,  # primary on node 0, reader node 1
        )
        assert status == "ok"
        sched, _records = result
        counters = partition_counters(space)
        assert counters["partition.failover_reads"] >= 1
        # Every serving copy lives in the majority island.
        for plan in sched.plans:
            assert space.cluster.node_of_core(plan.src_core) != 0

    def test_read_quorum_unmet_raises(self):
        """R=2 but only one copy reachable from the majority side."""
        space, (status, err) = self.put_then_read(
            reader_core=4, writer_core=0, read_quorum=2,
        )
        assert status == "err" and isinstance(err, QuorumError)
        assert partition_counters(space)["quorum.failed_reads"] == 1

    def test_read_quorum_met_but_degraded_is_counted(self):
        space, (status, _) = self.put_then_read(
            reader_core=4, writer_core=0, read_quorum=1,
        )
        assert status == "ok"
        assert partition_counters(space)["quorum.degraded_reads"] >= 1


class TestGenerationFencing:
    def test_stale_generation_is_fenced(self):
        """A healed minority writer replaying generation g after the
        majority committed g+1 must bounce off the fence."""
        space, sim, _ = make_space(partition=None)
        space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1,
                      generation=2)
        with pytest.raises(StaleWriteError):
            space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1,
                          generation=1)
        assert partition_counters(space)["partition.fenced_writes"] == 1

    def test_equal_and_newer_generations_pass(self):
        space, sim, _ = make_space(partition=None)
        space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1,
                      generation=1)
        space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1,
                      generation=1)  # idempotent re-put, same generation
        space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1,
                      generation=3)
        assert "partition.fenced_writes" not in partition_counters(space)

    def test_generation_zero_everywhere_never_fences(self):
        """The partitions-off path: no caller passes generations, so the
        fence bookkeeping must stay completely empty."""
        space, sim, _ = make_space(partition=None)
        space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1)
        space.put_seq(0, VAR, BOX, element_size=8, version=0, app_id=1)
        assert space._object_gen == {}


class TestHealReconciliation:
    def test_divergent_replica_repaired_at_heal(self):
        """Primary re-puts fresh payload during the cut; the unreachable
        replica keeps the stale bytes until reconcile rewrites it."""
        space, sim, _ = make_space(replication=2)
        a = np.zeros(DOMAIN)
        b = np.ones(DOMAIN)

        def reput():
            space.put_seq(0, VAR, BOX, version=0, app_id=1, data=b)

        outcomes = run_staged(
            sim,
            (0.5, lambda: space.put_seq(
                0, VAR, BOX, version=0, app_id=1, data=a,
            )),
            (1.5, reput),
        )
        assert [s for s, _ in outcomes] == ["ok", "ok"]
        counters = partition_counters(space)
        assert counters["partition.stale_replicas"] >= 1

        (var, version, owner), reps = next(iter(space._replicas.items()))
        prim = space.store_of(owner).get(var, version)
        stale = space.store_of(reps[0]).get(var, version, of=owner)
        assert stale.checksum != prim.checksum

        repaired, created = space.reconcile_partition()
        assert repaired == 1
        fresh = space.store_of(reps[0]).get(var, version, of=owner)
        assert fresh.checksum == prim.checksum
        assert partition_counters(space)["partition.reconciled"] == 1

    def test_reconcile_is_idempotent(self):
        space, sim, _ = make_space(replication=2)
        run_staged(sim, (0.5, lambda: space.put_seq(
            0, VAR, BOX, element_size=8, version=0, app_id=1,
        )))
        assert space.reconcile_partition() == (0, 0)
        assert space.reconcile_partition() == (0, 0)

    def test_acknowledged_write_survives_the_cut(self):
        """The no-split-brain core: a W=2-acknowledged write stays readable
        from the majority while the primary's island is dark, and nothing
        is reported lost."""
        space, sim, _ = make_space(write_quorum=2, read_quorum=1)
        outcomes = run_staged(
            sim,
            (0.5, lambda: space.put_seq(
                0, VAR, BOX, element_size=8, version=0, app_id=1,
            )),
            (1.5, lambda: space.get_seq(4, VAR, BOX, version=0, app_id=2)),
            (3.5, lambda: space.get_seq(0, VAR, BOX, version=0, app_id=2)),
        )
        assert [s for s, _ in outcomes] == ["ok", "ok", "ok"]
        assert not space.lost_objects()
