"""Tests for data objects, region products, and the per-core object store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cods.objects import (
    DataObject,
    ObjectStore,
    region_bounding_box,
    region_cells,
    region_from_box,
    region_overlap_cells,
    region_restrict,
)
from repro.domain.box import Box
from repro.domain.intervals import IntervalSet
from repro.errors import SpaceError


def obj(core=0, var="T", version=0, box=Box(lo=(0, 0), hi=(4, 4)), esize=8):
    return DataObject(
        var=var, version=version, region=region_from_box(box),
        owner_core=core, element_size=esize,
    )


class TestRegionHelpers:
    def test_from_box_roundtrip(self):
        box = Box(lo=(1, 2), hi=(5, 9))
        region = region_from_box(box)
        assert region_bounding_box(region) == box
        assert region_cells(region) == box.volume

    def test_empty_region_bbox(self):
        region = (IntervalSet.empty(), IntervalSet.single(0, 4))
        assert region_bounding_box(region).is_empty
        assert region_cells(region) == 0

    def test_overlap_cells(self):
        a = region_from_box(Box(lo=(0, 0), hi=(4, 4)))
        b = region_from_box(Box(lo=(2, 2), hi=(6, 6)))
        assert region_overlap_cells(a, b) == 4

    def test_overlap_strided(self):
        a = (IntervalSet.strided(0, 1, 2, 8),)  # 0,2,4,6
        b = (IntervalSet.single(0, 5),)
        assert region_overlap_cells(a, b) == 3

    def test_overlap_rank_mismatch(self):
        with pytest.raises(SpaceError):
            region_overlap_cells(
                region_from_box(Box(lo=(0,), hi=(2,))),
                region_from_box(Box(lo=(0, 0), hi=(2, 2))),
            )

    def test_restrict(self):
        region = region_from_box(Box(lo=(0, 0), hi=(8, 8)))
        clipped = region_restrict(region, Box(lo=(2, 3), hi=(5, 6)))
        assert region_cells(clipped) == 9

    def test_restrict_rank_mismatch(self):
        with pytest.raises(SpaceError):
            region_restrict(
                region_from_box(Box(lo=(0,), hi=(2,))), Box(lo=(0, 0), hi=(1, 1))
            )


class TestDataObject:
    def test_nbytes(self):
        o = obj(box=Box(lo=(0, 0), hi=(4, 4)), esize=8)
        assert o.cells == 16
        assert o.nbytes == 128

    def test_validation(self):
        with pytest.raises(SpaceError):
            obj(var="")
        with pytest.raises(SpaceError):
            obj(version=-1)
        with pytest.raises(SpaceError):
            obj(esize=0)
        with pytest.raises(SpaceError):
            DataObject(var="T", version=0, region=(), owner_core=0, element_size=8)

    def test_overlap_with_box(self):
        o = obj(box=Box(lo=(0, 0), hi=(4, 4)))
        assert o.overlap_cells_with_box(Box(lo=(3, 3), hi=(8, 8))) == 1

    def test_key(self):
        assert obj(core=5, var="v", version=2).key() == ("v", 2, 5)


class TestObjectStore:
    def test_insert_get(self):
        s = ObjectStore(core=0)
        o = obj()
        s.insert(o)
        assert s.get("T", 0) is o
        assert s.used_bytes == o.nbytes
        assert len(s) == 1

    def test_wrong_owner_rejected(self):
        s = ObjectStore(core=1)
        with pytest.raises(SpaceError):
            s.insert(obj(core=0))

    def test_duplicate_rejected(self):
        s = ObjectStore(core=0)
        s.insert(obj())
        with pytest.raises(SpaceError):
            s.insert(obj())

    def test_capacity_enforced(self):
        s = ObjectStore(core=0, capacity_bytes=100)
        with pytest.raises(SpaceError):
            s.insert(obj())  # 128 bytes

    def test_evict(self):
        s = ObjectStore(core=0)
        s.insert(obj())
        evicted = s.evict("T", 0)
        assert evicted.var == "T"
        assert s.used_bytes == 0
        with pytest.raises(SpaceError):
            s.evict("T", 0)

    def test_get_missing(self):
        assert ObjectStore(core=0).get("x", 0) is None

    def test_multiple_versions(self):
        s = ObjectStore(core=0)
        s.insert(obj(version=0))
        s.insert(obj(version=1))
        assert len(s) == 2

    def test_clear(self):
        s = ObjectStore(core=0)
        s.insert(obj())
        s.clear()
        assert len(s) == 0 and s.used_bytes == 0


@given(
    st.integers(0, 10), st.integers(0, 10), st.integers(1, 8), st.integers(1, 8),
    st.integers(0, 10), st.integers(0, 10), st.integers(1, 8), st.integers(1, 8),
)
@settings(max_examples=50)
def test_region_overlap_matches_box_overlap(ax, ay, aw, ah, bx, by, bw, bh):
    a = Box(lo=(ax, ay), hi=(ax + aw, ay + ah))
    b = Box(lo=(bx, by), hi=(bx + bw, by + bh))
    assert (
        region_overlap_cells(region_from_box(a), region_from_box(b))
        == a.intersection_volume(b)
    )
