"""Tests for the staging-area baseline (related-work comparison)."""

import pytest

from repro.cods.staging import StagingArea
from repro.cods.space import CoDS
from repro.domain.box import Box
from repro.errors import ScheduleError, SpaceError
from repro.hardware.cluster import Cluster
from repro.hardware.spec import generic_multicore
from repro.transport.message import TransferKind


def make_staging(nodes=4, cpn=4, staging=(3,), extents=(16, 16)):
    cluster = Cluster(nodes, machine=generic_multicore(cpn))
    return StagingArea(cluster, extents, list(staging))


class TestConstruction:
    def test_basic(self):
        area = make_staging()
        assert area.staging_cores == [12, 13, 14, 15]
        assert area.staged_bytes() == 0

    def test_no_nodes(self):
        cluster = Cluster(2, machine=generic_multicore(2))
        with pytest.raises(SpaceError):
            StagingArea(cluster, (8, 8), [])

    def test_node_out_of_range(self):
        cluster = Cluster(2, machine=generic_multicore(2))
        with pytest.raises(SpaceError):
            StagingArea(cluster, (8, 8), [5])


class TestTwoHopPath:
    def test_put_get_roundtrip(self):
        area = make_staging()
        box = Box(lo=(0, 0), hi=(16, 16))
        obj, put_rec = area.put(0, "T", box, app_id=1)
        assert obj.owner_core in area.staging_cores
        assert area.staged_bytes() == 16 * 16 * 8
        sched, recs = area.get(1, "T", box, app_id=2)
        assert sched.total_cells == 256
        # Two movements: put bytes + get bytes.
        total = area.dart.metrics.bytes(kind=TransferKind.COUPLING)
        assert total == 2 * 16 * 16 * 8

    def test_get_missing_raises(self):
        area = make_staging()
        with pytest.raises(ScheduleError):
            area.get(0, "nope", Box(lo=(0, 0), hi=(4, 4)))

    def test_version_filter(self):
        area = make_staging()
        box = Box(lo=(0, 0), hi=(16, 16))
        area.put(0, "T", box, version=0)
        area.put(1, "T", box, version=1)
        sched, _ = area.get(2, "T", box, version=0)
        assert sched.total_cells == 256

    def test_partitioned_puts_balance(self):
        area = make_staging(nodes=4, cpn=4, staging=(2, 3))
        # 16 blocked tiles spread over the staging cores.
        for i in range(4):
            for j in range(4):
                area.put(
                    i * 4 + j, "T",
                    Box(lo=(4 * i, 4 * j), hi=(4 * i + 4, 4 * j + 4)),
                )
        loads = area.store_loads()
        assert sum(loads.values()) == 16 * 16 * 8
        assert sum(1 for v in loads.values() if v > 0) >= 4

    def test_empty_region_rejected(self):
        area = make_staging()
        with pytest.raises(SpaceError):
            area.put(0, "T", Box(lo=(0, 0), hi=(0, 0)))


class TestStagingVsInSitu:
    def test_staging_moves_twice_the_bytes(self):
        """The §VI claim: indirect sharing doubles the data movement."""
        cluster = Cluster(4, machine=generic_multicore(4))
        box = Box(lo=(0, 0), hi=(16, 16))

        staging = StagingArea(cluster, (16, 16), [3])
        staging.put(0, "T", box)
        staging.get(1, "T", box)
        staging_bytes = staging.dart.metrics.bytes(kind=TransferKind.COUPLING)

        space = CoDS(cluster, (16, 16))
        space.put_seq(0, "T", box)          # stays in producer memory
        space.get_seq(1, "T", box)          # one movement
        insitu_bytes = space.dart.metrics.bytes(kind=TransferKind.COUPLING)

        assert staging_bytes == 2 * insitu_bytes

    def test_staging_always_crosses_network(self):
        """Consumer co-located with the producer: in-situ is pure shm, the
        staging path still crosses the network twice."""
        cluster = Cluster(4, machine=generic_multicore(4))
        box = Box(lo=(0, 0), hi=(16, 16))

        staging = StagingArea(cluster, (16, 16), [3])
        staging.put(0, "T", box)
        staging.get(1, "T", box)  # same node as producer
        assert staging.dart.metrics.network_bytes(TransferKind.COUPLING) > 0

        space = CoDS(cluster, (16, 16))
        space.put_seq(0, "T", box)
        space.get_seq(1, "T", box)
        assert space.dart.metrics.network_bytes(TransferKind.COUPLING) == 0
