"""Tests for communication schedules and the schedule cache."""

import pytest

from repro.cods.dht import ObjectLocation
from repro.cods.objects import region_from_box
from repro.cods.schedule import (
    CommSchedule,
    ScheduleCache,
    TransferPlan,
    compute_schedule,
    producer_schedule,
)
from repro.domain.box import Box
from repro.errors import ScheduleError


def loc(core, box, var="T", version=0, esize=8):
    return ObjectLocation(
        var=var, version=version, owner_core=core,
        region=region_from_box(box), element_size=esize,
    )


class TestTransferPlan:
    def test_positive_volume_required(self):
        with pytest.raises(ScheduleError):
            TransferPlan(0, 1, 0, 0, "T")


class TestComputeSchedule:
    def test_single_source(self):
        box = Box(lo=(0, 0), hi=(4, 4))
        sched = compute_schedule("T", 9, box, [loc(3, Box(lo=(0, 0), hi=(8, 8)))])
        assert sched.total_cells == 16
        assert sched.total_bytes == 128
        assert sched.num_sources == 1
        assert sched.plans[0].src_core == 3
        assert sched.plans[0].dst_core == 9

    def test_multiple_sources_partition(self):
        box = Box(lo=(0, 0), hi=(8, 8))
        locs = [
            loc(0, Box(lo=(0, 0), hi=(4, 8))),
            loc(1, Box(lo=(4, 0), hi=(8, 8))),
        ]
        sched = compute_schedule("T", 5, box, locs)
        assert sched.total_cells == 64
        assert {p.src_core for p in sched.plans} == {0, 1}

    def test_incomplete_coverage_raises(self):
        box = Box(lo=(0, 0), hi=(8, 8))
        with pytest.raises(ScheduleError):
            compute_schedule("T", 5, box, [loc(0, Box(lo=(0, 0), hi=(4, 8)))])

    def test_incomplete_allowed(self):
        box = Box(lo=(0, 0), hi=(8, 8))
        sched = compute_schedule(
            "T", 5, box, [loc(0, Box(lo=(0, 0), hi=(4, 8)))], require_complete=False
        )
        assert sched.total_cells == 32

    def test_newest_version_per_owner(self):
        box = Box(lo=(0, 0), hi=(4, 4))
        locs = [
            loc(0, Box(lo=(0, 0), hi=(4, 4)), version=0),
            loc(0, Box(lo=(0, 0), hi=(4, 4)), version=3),
        ]
        sched = compute_schedule("T", 5, box, locs)
        assert len(sched.plans) == 1
        assert sched.total_cells == 16

    def test_local_bytes(self):
        box = Box(lo=(0, 0), hi=(8, 8))
        locs = [
            loc(0, Box(lo=(0, 0), hi=(4, 8))),   # core 0 -> node 0
            loc(12, Box(lo=(4, 0), hi=(8, 8))),  # core 12 -> node 1 (cpn=12)
        ]
        sched = compute_schedule("T", 1, box, locs)  # dst core 1 -> node 0
        assert sched.local_bytes(lambda c: c // 12) == 32 * 8

    def test_empty_locations_raise_when_complete_required(self):
        with pytest.raises(ScheduleError):
            compute_schedule("T", 0, Box(lo=(0,), hi=(4,)), [])


class TestProducerSchedule:
    def test_direct_sources(self):
        box = Box(lo=(0, 0), hi=(8, 8))
        producers = [
            (2, region_from_box(Box(lo=(0, 0), hi=(8, 4)))),
            (7, region_from_box(Box(lo=(0, 4), hi=(8, 8)))),
        ]
        sched = producer_schedule("T", 11, box, producers, element_size=4)
        assert sched.total_bytes == 64 * 4
        assert {p.src_core for p in sched.plans} == {2, 7}

    def test_incomplete_producers_raise(self):
        box = Box(lo=(0, 0), hi=(8, 8))
        with pytest.raises(ScheduleError):
            producer_schedule(
                "T", 1, box,
                [(0, region_from_box(Box(lo=(0, 0), hi=(4, 4))))],
                element_size=8,
            )


class TestScheduleCache:
    def sched(self, var="T", core=0, box=Box(lo=(0,), hi=(4,))):
        return CommSchedule(var=var, dst_core=core, region=region_from_box(box))

    def test_miss_then_hit(self):
        cache = ScheduleCache()
        assert cache.get("T", 0, Box(lo=(0,), hi=(4,))) is None
        cache.put(self.sched())
        assert cache.get("T", 0, Box(lo=(0,), hi=(4,))) is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_key_includes_core_and_box(self):
        cache = ScheduleCache()
        cache.put(self.sched(core=0))
        assert cache.get("T", 1, Box(lo=(0,), hi=(4,))) is None
        assert cache.get("T", 0, Box(lo=(0,), hi=(5,))) is None

    def test_fifo_eviction(self):
        cache = ScheduleCache(max_entries=2)
        cache.put(self.sched(var="a"))
        cache.put(self.sched(var="b"))
        cache.put(self.sched(var="c"))
        assert len(cache) == 2
        assert cache.get("a", 0, Box(lo=(0,), hi=(4,))) is None
        assert cache.get("c", 0, Box(lo=(0,), hi=(4,))) is not None

    def test_clear(self):
        cache = ScheduleCache()
        cache.put(self.sched())
        cache.get("T", 0, Box(lo=(0,), hi=(4,)))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.hit_rate == 0.0

    def test_invalid_size(self):
        with pytest.raises(ScheduleError):
            ScheduleCache(max_entries=0)
